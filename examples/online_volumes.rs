//! Online volume construction and persistence across "server restarts".
//!
//! Day 1: a server learns probability volumes online from live traffic
//! (Section 3.3.1's online estimation), then persists them to disk at a
//! maintenance window. Day 2: a fresh server process loads the volumes and
//! piggybacks from the first request — no cold start.
//!
//! ```text
//! cargo run --release --example online_volumes
//! ```

use piggyback::core::filter::ProxyFilter;
use piggyback::core::metrics::{replay, ReplayConfig};
use piggyback::core::types::DurationMs;
use piggyback::core::volume::{
    read_volumes, write_volumes, OnlineProbabilityVolumes, SamplingMode, VolumeProvider,
};
use piggyback::trace::profiles;
use std::io::BufReader;

fn main() {
    let log = profiles::aiusa(0.08).generate();
    println!(
        "synthetic AIUSA log: {} requests, {} resources",
        log.entries.len(),
        log.table.len()
    );

    // ---- Day 1: learn online while serving --------------------------------
    let mut table = log.table.clone();
    for e in &log.entries {
        table.count_access(e.resource);
    }
    let mut online = OnlineProbabilityVolumes::new(
        DurationMs::from_secs(300),
        0.2,
        SamplingMode::Sampled { factor: 4.0 },
        5_000, // rebuild the serving snapshot every 5k requests
    );
    let report = replay(
        log.requests(),
        &mut table,
        &mut online,
        &ReplayConfig {
            base_filter: ProxyFilter::builder().max_piggy(10).build(),
            ..Default::default()
        },
    );
    println!(
        "\nday 1 (learning online): {} snapshot rebuilds, {} piggybacks, \
         {:.1}% of requests predicted",
        online.rebuild_count(),
        report.piggyback_messages,
        100.0 * report.fraction_predicted()
    );
    online.rebuild_now();
    println!(
        "final volumes: {} implications over {} resources (counters: {})",
        online.snapshot().implication_count(),
        online.snapshot().volume_count(),
        online.builder().counter_count()
    );

    // ---- Maintenance window: persist to disk -------------------------------
    let path = std::env::temp_dir().join("piggyback-volumes.txt");
    let mut file = std::fs::File::create(&path).expect("create volumes file");
    write_volumes(online.snapshot(), &table, &mut file).expect("persist volumes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("\npersisted to {} ({bytes} bytes)", path.display());

    // ---- Day 2: a fresh process loads and serves immediately ---------------
    let mut fresh_table = piggyback::core::table::ResourceTable::new();
    let mut file = BufReader::new(std::fs::File::open(&path).expect("open volumes file"));
    let mut loaded = read_volumes(&mut file, &mut fresh_table).expect("load volumes");
    // Restore access counts from the log (a real server would recount or
    // persist them too).
    for e in &log.entries {
        if let Some(p) = log.table.path(e.resource) {
            if let Some(r) = fresh_table.lookup(p) {
                fresh_table.count_access(r);
            }
        }
    }
    // Re-map the trace into the fresh table's id space.
    let remapped: Vec<piggyback::core::metrics::Request> = log
        .entries
        .iter()
        .filter_map(|e| {
            let p = log.table.path(e.resource)?;
            let r = fresh_table.lookup(p)?;
            Some(piggyback::core::metrics::Request {
                time: e.time,
                source: e.client,
                resource: r,
            })
        })
        .collect();
    println!(
        "day 2 (loaded volumes, fresh process): replaying {} requests...",
        remapped.len()
    );
    let report2 = replay(
        remapped,
        &mut fresh_table,
        &mut loaded,
        &ReplayConfig {
            base_filter: ProxyFilter::builder().max_piggy(10).build(),
            ..Default::default()
        },
    );
    println!(
        "day 2: {:.1}% predicted from the first request (avg piggyback {:.2})",
        100.0 * report2.fraction_predicted(),
        report2.avg_piggyback_size()
    );
    assert!(report2.fraction_predicted() >= report.fraction_predicted());
    let _ = std::fs::remove_file(&path);
    println!("\ndone: warm volumes survive restarts via the portable text format.");
}
