//! Prefetching tradeoffs driven by probability-based volumes.
//!
//! Builds probability volumes (Section 3.3) from a synthetic Sun-style
//! log, thins them by effective probability, and sweeps the probability
//! threshold to show the paper's recall / futile-fetch / bandwidth
//! tradeoff (Section 4, "Prefetching").
//!
//! ```text
//! cargo run --release --example prefetch_sim
//! ```

use piggyback::core::filter::ProxyFilter;
use piggyback::core::metrics::{replay, ReplayConfig};
use piggyback::core::types::DurationMs;
use piggyback::core::volume::effective::thin_with_trace;
use piggyback::core::volume::{ProbabilityVolumesBuilder, SamplingMode};
use piggyback::trace::profiles;

fn main() {
    let log = profiles::sun(0.002).generate();
    println!(
        "synthetic Sun log: {} requests, {} resources",
        log.entries.len(),
        log.table.len()
    );

    // Train pairwise implication counters on the trace.
    let mut builder =
        ProbabilityVolumesBuilder::new(DurationMs::from_secs(300), 0.02, SamplingMode::Exact);
    for (t, src, r) in log.triples() {
        builder.observe(src, r, t);
    }
    let base = builder.build(0.02);
    let thinned = thin_with_trace(&base, DurationMs::from_secs(300), log.triples(), 0.2);
    println!(
        "implications: {} raw -> {} after effectiveness thinning\n",
        base.implication_count(),
        thinned.implication_count()
    );

    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>16}",
        "p_t", "avg piggyback", "prefetch recall", "futile fetches", "bandwidth overhead"
    );
    for pt in [0.05, 0.1, 0.2, 0.3, 0.5] {
        let mut table = log.table.clone();
        for e in &log.entries {
            table.count_access(e.resource);
        }
        let mut vols = thinned.rethreshold(pt);
        let report = replay(
            log.requests(),
            &mut table,
            &mut vols,
            &ReplayConfig {
                base_filter: ProxyFilter::default(),
                ..Default::default()
            },
        );
        let recall = report.fraction_predicted();
        let precision = report.true_prediction_fraction();
        let futile = 1.0 - precision;
        let overhead = report
            .prediction_events
            .saturating_sub(report.true_predictions) as f64
            / report.requests.max(1) as f64;
        println!(
            "{:>6.2} {:>12.2} {:>13.1}% {:>13.1}% {:>15.1}%",
            pt,
            report.avg_piggyback_size(),
            100.0 * recall,
            100.0 * futile,
            100.0 * overhead
        );
    }

    println!(
        "\nreading: lower thresholds prefetch more (higher recall) at the cost \
         of more futile fetches — the paper's Sun numbers were 30% recall at \
         15% futile, 70% recall at 50% futile."
    );
}
