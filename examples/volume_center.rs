//! The transparent volume center: piggybacking for servers that have never
//! heard of the protocol.
//!
//! Topology:  client driver -> caching proxy -> volume center -> dumb origin
//!
//! The origin speaks plain HTTP/1.1 with no volumes. The on-path volume
//! center learns volumes from the traffic it relays and injects `P-volume`
//! trailers, so the proxy still gets coherency/prefetch hints.
//!
//! ```text
//! cargo run --example volume_center
//! ```

use piggyback::httpwire::{Request, Response};
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::proxy::{start_proxy, ProxyConfig};
use piggyback::proxyd::util::{serve, synth_body};
use piggyback::proxyd::volume_center::{start_volume_center, VolumeCenterConfig};
use std::io::{BufReader, BufWriter};

fn main() {
    // 1. A piggyback-oblivious origin: serves any path, no volumes.
    let origin = serve(0, "dumb-origin", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        loop {
            let req = match Request::read(&mut r) {
                Ok(q) => q,
                Err(_) => return,
            };
            let keep = req.keep_alive();
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = synth_body(&req.target, 800).into();
            if resp.write(&mut w).is_err() || !keep {
                return;
            }
        }
    })
    .expect("origin");
    println!("dumb origin  : {} (no piggyback support)", origin.addr);

    // 2. The volume center interposes.
    let center = start_volume_center(VolumeCenterConfig {
        port: 0,
        origin: origin.addr,
        volume_level: 1,
        shim: None,
        transparent: false,
    })
    .expect("center");
    println!("volume center: {} -> {}", center.addr(), origin.addr);

    // 3. A piggyback-aware proxy points at the *center*, not the origin.
    let proxy = start_proxy(ProxyConfig::new(center.addr())).expect("proxy");
    println!("proxy        : {} -> {}\n", proxy.addr(), center.addr());

    // 4. Browse a directory through the whole chain.
    let mut client = HttpClient::connect(proxy.addr()).expect("client");
    let paths = [
        "/docs/intro.html",
        "/docs/api.html",
        "/docs/faq.html",
        "/img/logo.gif",
        "/docs/intro.html",
    ];
    for p in paths {
        let resp = client.get(p, &[]).expect("request");
        println!(
            "GET {p:22} -> {} [{}]",
            resp.status,
            resp.headers.get("X-Cache").unwrap_or("-")
        );
    }

    let center_stats = center.stats();
    let proxy_stats = proxy.stats();
    println!(
        "\nvolume center learned {} resources,",
        center.learned_resources()
    );
    println!(
        "sent {} piggybacks ({} elements) on the origin's behalf;",
        center_stats.piggybacks_sent, center_stats.elements_sent
    );
    println!(
        "proxy received {} piggyback messages and freshened {} entries.",
        proxy_stats.piggyback_messages, proxy_stats.piggyback_freshens
    );
    assert!(center_stats.piggybacks_sent > 0);
    assert!(proxy_stats.piggyback_messages > 0);

    proxy.stop();
    center.stop();
    origin.stop();
    println!("\ndone: a stock server gained piggybacking with zero modification.");
}
