//! Quickstart: the full piggyback protocol end-to-end, over real TCP on
//! loopback.
//!
//! Starts a piggybacking origin serving a synthetic site, a caching proxy
//! in front of it, and drives a browsing session through the proxy. Watch
//! the proxy's cache get freshened and invalidated by `P-volume` trailers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::origin::{start_origin, OriginConfig};
use piggyback::proxyd::proxy::{start_proxy, ProxyConfig};

fn main() {
    // 1. Origin: a synthetic 40-page site with 1-level directory volumes.
    let mut origin_cfg = OriginConfig::default();
    origin_cfg.site.n_pages = 40;
    let origin = start_origin(origin_cfg).expect("origin");
    println!(
        "origin   : {} ({} resources, 1-level directory volumes)",
        origin.addr(),
        origin.paths.len()
    );

    // 2. Proxy: 60 s freshness interval, RPV pacing, maxpiggy=10.
    let proxy = start_proxy(ProxyConfig::new(origin.addr())).expect("proxy");
    println!("proxy    : {} -> {}\n", proxy.addr(), origin.addr());

    // 3. A browsing session: walk a directory of the site twice.
    let mut client = HttpClient::connect(proxy.addr()).expect("client");
    let pages: Vec<String> = origin.paths.iter().take(8).cloned().collect();

    println!("first pass (cold cache):");
    for p in &pages {
        let resp = client.get(p, &[]).expect("request");
        println!(
            "  GET {p:40} -> {} [{}] {} bytes",
            resp.status,
            resp.headers.get("X-Cache").unwrap_or("-"),
            resp.body.len()
        );
    }

    println!("\nsecond pass (cache + piggyback freshening):");
    for p in &pages {
        let resp = client.get(p, &[]).expect("request");
        println!(
            "  GET {p:40} -> {} [{}]",
            resp.status,
            resp.headers.get("X-Cache").unwrap_or("-")
        );
    }

    // 4. Modify a resource at the origin, touch a volume-mate, and watch
    //    the piggyback invalidate the stale copy.
    let victim = &pages[0];
    let neighbour = &pages[1];
    println!("\nmodifying {victim} at the origin...");
    let resp = client
        .get(&format!("/_pb/modify{victim}"), &[])
        .expect("modify");
    assert_eq!(resp.status, 204);

    // Wait out the proxy's freshness interval is not needed: ask for the
    // *neighbour* with an expired entry... simplest demonstration: force
    // re-validation by requesting the neighbour after its Δ. Here we just
    // re-request the neighbour — if its entry is still fresh the piggyback
    // arrives with the next validation; to make the demo deterministic we
    // request a brand-new resource in the same volume, whose response
    // piggybacks the *new* Last-Modified of the victim.
    let fresh_path = origin
        .paths
        .iter()
        .find(|p| {
            piggyback::core::intern::directory_prefix(p, 1)
                == piggyback::core::intern::directory_prefix(victim, 1)
                && !pages.contains(p)
        })
        .cloned()
        .unwrap_or_else(|| neighbour.clone());
    println!("requesting {fresh_path} (same volume) to pick up the piggyback...");
    client.get(&fresh_path, &[]).expect("request");

    let stats = proxy.stats();
    println!("\nproxy statistics:");
    println!("  requests               {}", stats.requests);
    println!("  fresh cache hits       {}", stats.fresh_hits);
    println!("  validations sent       {}", stats.validations);
    println!("  piggyback messages     {}", stats.piggyback_messages);
    println!("  piggybacked elements   {}", stats.piggybacked_elements);
    println!("  entries freshened      {}", stats.piggyback_freshens);
    println!("  entries invalidated    {}", stats.piggyback_invalidations);
    assert!(stats.piggyback_messages > 0, "piggybacks must flow");

    let origin_stats = origin.stats();
    println!("\norigin statistics:");
    println!("  requests               {}", origin_stats.requests);
    println!("  piggybacks sent        {}", origin_stats.piggybacks_sent);
    println!(
        "  avg piggyback size     {:.2}",
        origin_stats.avg_piggyback_size()
    );

    proxy.stop();
    origin.stop();
    println!("\ndone.");
}
