//! Cache-coherency simulation: how much does piggybacking improve a proxy
//! cache's freshness and validation traffic?
//!
//! Replays a synthetic AIUSA-scale server log with a resource-modification
//! stream through the end-to-end proxy simulator, with and without
//! piggybacking — the paper's Section 4 "cache coherency" application.
//!
//! ```text
//! cargo run --release --example coherency_sim
//! ```

use piggyback::core::filter::ProxyFilter;
use piggyback::core::types::DurationMs;
use piggyback::core::volume::DirectoryVolumes;
use piggyback::trace::profiles;
use piggyback::trace::synth::changes::ChangeModel;
use piggyback::webcache::{
    build_server, simulate_proxy, FreshnessPolicy, PolicyKind, ProxySimConfig,
};

fn main() {
    let log = profiles::aiusa(0.1).generate();
    let changes = ChangeModel::default().generate(&log.table, log.duration());
    println!(
        "synthetic AIUSA log: {} requests, {} resources, {} modifications\n",
        log.entries.len(),
        log.table.len(),
        changes.len()
    );

    let base_cfg = ProxySimConfig {
        capacity_bytes: 256 * 1024 * 1024, // ample: isolate coherency effects
        policy: PolicyKind::Lru,
        freshness: FreshnessPolicy::Fixed(DurationMs::from_secs(3600)),
        piggyback: false,
        filter: ProxyFilter::builder().max_piggy(10).build(),
        rpv: Some((16, DurationMs::from_secs(60))),
        prefetch: None,
        delta_encoding: None,
    };

    println!(
        "{:<28} {:>9} {:>9} {:>10} {:>12} {:>11}",
        "configuration", "hit rate", "stale", "validations", "saved valid.", "invalidated"
    );
    for (name, piggyback, adaptive) in [
        ("no piggyback, fixed Δ=1h", false, false),
        ("piggyback, fixed Δ=1h", true, false),
        ("piggyback, adaptive Δ", true, true),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.piggyback = piggyback;
        if adaptive {
            cfg.freshness = FreshnessPolicy::adaptive_default();
        }
        let mut server = build_server(&log, DirectoryVolumes::new(1));
        let r = simulate_proxy(&log, &changes, &mut server, &cfg);
        println!(
            "{:<28} {:>8.1}% {:>8.2}% {:>10} {:>12} {:>11}",
            name,
            100.0 * r.hit_rate(),
            100.0 * r.stale_rate(),
            r.validations,
            r.piggyback_saved_validations,
            r.piggyback_invalidations,
        );
    }

    println!(
        "\nreading: piggybacking converts If-Modified-Since round trips into \
         trailer metadata (saved validations) and catches modifications \
         before the freshness interval would (lower stale rate)."
    );
}
