//! # piggyback
//!
//! A reproduction of *"Improving End-to-End Performance of the Web Using
//! Server Volumes and Proxy Filters"* (Cohen, Krishnamurthy, Rexford —
//! SIGCOMM 1998) as a production-quality Rust workspace.
//!
//! Servers group related resources into **volumes** (by directory prefix or
//! by measured pairwise access probability) and **piggyback** small lists of
//! volume elements — URL, size, Last-Modified — onto ordinary HTTP responses,
//! in the trailer of a chunked HTTP/1.1 message. Proxies send **filters**
//! (`Piggy-filter` request header) that pace and customize the piggyback
//! information, and use it for cache coherency, prefetching, replacement,
//! adaptive freshness intervals, and informed fetching.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — volumes, filters, piggyback generation, metrics (the paper's
//!   primary contribution).
//! * [`trace`] — log records and synthetic client/server log generators.
//! * [`webcache`] — proxy cache simulator and piggyback-driven policies.
//! * [`httpwire`] — from-scratch HTTP/1.1 subset with chunked trailers.
//! * [`proxyd`] — runnable origin, proxy, volume center, and client over TCP.
//!
//! ## Quickstart
//!
//! ```
//! use piggyback::core::prelude::*;
//!
//! // A tiny server-side resource table and a 1-level directory volume set.
//! let mut server = PiggybackServer::new(DirectoryVolumes::new(1));
//! let a = server.register("/docs/a.html", 1200, Timestamp::from_secs(100), ContentType::Html);
//! let b = server.register("/docs/b.html", 3400, Timestamp::from_secs(100), ContentType::Html);
//!
//! // Both resources are accessed, so both are in the "/docs" volume FIFO.
//! server.record_access(a, SourceId(1), Timestamp::from_secs(200));
//! server.record_access(b, SourceId(1), Timestamp::from_secs(201));
//!
//! // A later request for `a` piggybacks `b` (subject to the proxy's filter).
//! let filter = ProxyFilter::default();
//! let msg = server.piggyback(a, &filter, Timestamp::from_secs(300)).unwrap();
//! assert!(msg.elements.iter().any(|e| e.resource == b));
//! ```

pub use piggyback_core as core;
pub use piggyback_httpwire as httpwire;
pub use piggyback_proxyd as proxyd;
pub use piggyback_trace as trace;
pub use piggyback_webcache as webcache;
