//! Property tests over the text formats and path/date utilities: CLF
//! round-trips, HTTP-date round-trips, directory-prefix laws, and the
//! `Piggy-report` format.

use piggyback::core::datetime::{
    format_clf, format_rfc1123, parse_clf, parse_rfc1123, DEFAULT_TRACE_EPOCH_UNIX,
};
use piggyback::core::intern::{directory_prefix, normalize_path};
use piggyback::core::report::{parse_report, HitReporter};
use piggyback::core::table::ResourceTable;
use piggyback::core::types::{ResourceId, SourceId, Timestamp};
use piggyback::trace::clf::{parse_clf_log, to_clf_string};
use piggyback::trace::record::{Method, ServerLogEntry};
use piggyback::trace::ServerLog;
use proptest::prelude::*;

/// Paths made of benign segments (no quotes/spaces — CLF and report
/// formats do not escape those).
fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9_.-]{1,8}", 1..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #[test]
    fn rfc1123_round_trip(unix in 0i64..4_000_000_000) {
        let s = format_rfc1123(unix);
        prop_assert_eq!(parse_rfc1123(&s), Some(unix));
    }

    #[test]
    fn clf_date_round_trip(unix in 0i64..4_000_000_000) {
        let s = format_clf(unix);
        prop_assert_eq!(parse_clf(&s), Some(unix));
    }

    /// The level-k prefix is a string prefix of the path and of every
    /// deeper level's prefix; prefixes stabilize once the path depth is
    /// exhausted.
    #[test]
    fn directory_prefix_laws(path in arb_path(), level in 0usize..6) {
        let norm = normalize_path(&path).into_owned();
        let p_k = directory_prefix(&norm, level);
        let p_k1 = directory_prefix(&norm, level + 1);
        prop_assert!(norm.starts_with(p_k) || p_k == "/");
        prop_assert!(p_k1.starts_with(p_k) || p_k == "/");
        prop_assert!(p_k.len() <= p_k1.len());
        // Saturation: a very deep level equals the path's own directory.
        let deep = directory_prefix(&norm, 64);
        let own_dir = match norm.rfind('/') {
            Some(0) | None => "/".to_owned(),
            Some(i) => norm[..i].to_owned(),
        };
        prop_assert_eq!(deep, own_dir);
    }

    /// CLF logs round-trip: every field of every entry survives.
    #[test]
    fn clf_log_round_trip(
        entries in proptest::collection::vec(
            (0u64..2_000_000, 0u32..0xffffff, arb_path(), 0u8..3, 0u64..100_000),
            1..40,
        )
    ) {
        let mut log = ServerLog {
            name: "prop".into(),
            epoch_unix: DEFAULT_TRACE_EPOCH_UNIX,
            ..Default::default()
        };
        let mut sorted = entries;
        sorted.sort();
        for (t, client, path, m, bytes) in sorted {
            let r = log.table.register_path(&path, bytes, Timestamp::ZERO);
            log.entries.push(ServerLogEntry {
                time: Timestamp::from_secs(t),
                client: SourceId(client),
                resource: r,
                method: [Method::Get, Method::Post, Method::Head][m as usize],
                status: 200,
                bytes,
            });
        }
        let text = to_clf_string(&log);
        let parsed = parse_clf_log("prop", &text, DEFAULT_TRACE_EPOCH_UNIX).unwrap();
        prop_assert_eq!(parsed.entries.len(), log.entries.len());
        for (a, b) in log.entries.iter().zip(&parsed.entries) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.client, b.client);
            prop_assert_eq!(a.method, b.method);
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(
                log.table.path(a.resource).map(normalize_path),
                parsed.table.path(b.resource).map(normalize_path)
            );
        }
    }

    /// Piggy-report headers round-trip with exact per-path counts.
    #[test]
    fn report_round_trip(
        hits in proptest::collection::vec((arb_path(), 1u64..50), 0..20)
    ) {
        let mut reporter = HitReporter::new();
        let mut expected: std::collections::HashMap<String, u64> = Default::default();
        for (path, n) in &hits {
            let norm = path.clone();
            for _ in 0..*n {
                reporter.record_hit(&norm);
            }
            *expected.entry(norm).or_insert(0) += n;
        }
        match reporter.drain_header() {
            None => prop_assert!(expected.is_empty()),
            Some(header) => {
                let entries = parse_report(&header).unwrap();
                let got: std::collections::HashMap<String, u64> =
                    entries.into_iter().map(|e| (e.path, e.hits)).collect();
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// Interning is injective on normalized paths: distinct normalized
    /// paths get distinct ids; identical ones share an id.
    #[test]
    fn interning_injective(paths in proptest::collection::vec(arb_path(), 1..30)) {
        let mut table = ResourceTable::new();
        let ids: Vec<ResourceId> = paths
            .iter()
            .map(|p| table.register_path(p, 1, Timestamp::ZERO))
            .collect();
        for (i, pi) in paths.iter().enumerate() {
            for (j, pj) in paths.iter().enumerate() {
                let same_path = normalize_path(pi) == normalize_path(pj);
                prop_assert_eq!(same_path, ids[i] == ids[j]);
            }
        }
    }
}
