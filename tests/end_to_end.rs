//! End-to-end integration tests over real loopback TCP: origin ↔ proxy ↔
//! client, and the transparent volume-center chain.

use piggyback::core::intern::directory_prefix;
use piggyback::httpwire::{Request, Response};
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::origin::{start_origin, OriginConfig};
use piggyback::proxyd::proxy::{start_proxy, ProxyConfig};
use piggyback::proxyd::util::{serve, synth_body};
use piggyback::proxyd::volume_center::{start_volume_center, VolumeCenterConfig};
use std::io::{BufReader, BufWriter};

/// Two paths from `paths` sharing a 1-level directory prefix.
fn volume_pair(paths: &[String]) -> (String, String) {
    use std::collections::HashMap;
    let mut by_dir: HashMap<&str, Vec<&String>> = HashMap::new();
    for p in paths {
        by_dir.entry(directory_prefix(p, 1)).or_default().push(p);
    }
    let group = by_dir
        .into_values()
        .find(|v| v.len() >= 2)
        .expect("a directory with two resources");
    (group[0].clone(), group[1].clone())
}

#[test]
fn proxy_chain_serves_and_piggybacks() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
    let (a, b) = volume_pair(&origin.paths);

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let r1 = client.get(&a, &[]).unwrap();
    assert_eq!(r1.status, 200);
    assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));

    // The response to `b` carries a piggyback naming `a` — which the proxy
    // consumes (it never reaches the client).
    let r2 = client.get(&b, &[]).unwrap();
    assert_eq!(r2.status, 200);
    assert!(r2.trailers.get("P-volume").is_none());

    // `a` is served from the cache.
    let r3 = client.get(&a, &[]).unwrap();
    assert_eq!(r3.headers.get("X-Cache"), Some("HIT"));
    assert_eq!(r3.body, r1.body);

    let stats = proxy.stats();
    assert!(stats.piggyback_messages >= 1);
    assert!(stats.piggybacked_elements >= 1);
    assert_eq!(stats.fresh_hits, 1);

    proxy.stop();
    origin.stop();
}

#[test]
fn piggyback_invalidation_propagates_through_proxy() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
    let (a, b) = volume_pair(&origin.paths);
    let mut client = HttpClient::connect(proxy.addr()).unwrap();

    // Cache both.
    client.get(&a, &[]).unwrap();
    client.get(&b, &[]).unwrap();

    // Modify `a` at the origin.
    let resp = client.get(&format!("/_pb/modify{a}"), &[]).unwrap();
    assert_eq!(resp.status, 204);

    // Find a third path in the same volume whose response will piggyback
    // the fresh Last-Modified of `a`.
    let prefix = directory_prefix(&a, 1).to_owned();
    let third = origin
        .paths
        .iter()
        .find(|p| directory_prefix(p, 1) == prefix && **p != a && **p != b);
    if let Some(third) = third {
        client.get(third, &[]).unwrap();
        // Piggyback processing may invalidate `a`; the next request for
        // `a` must not serve the stale cached copy as a HIT with the old
        // Last-Modified.
        let stats = proxy.stats();
        if stats.piggyback_invalidations > 0 {
            let r = client.get(&a, &[]).unwrap();
            assert_eq!(
                r.headers.get("X-Cache"),
                Some("MISS"),
                "invalidated entry must be re-fetched"
            );
        }
    }

    proxy.stop();
    origin.stop();
}

#[test]
fn volume_center_chain_end_to_end() {
    // Dumb origin with deterministic bodies.
    let origin = serve(0, "dumb", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        loop {
            let req = match Request::read(&mut r) {
                Ok(q) => q,
                Err(_) => return,
            };
            let keep = req.keep_alive();
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = synth_body(&req.target, 400).into();
            if resp.write(&mut w).is_err() || !keep {
                return;
            }
        }
    })
    .unwrap();

    let center = start_volume_center(VolumeCenterConfig {
        port: 0,
        origin: origin.addr,
        volume_level: 1,
        shim: None,
        transparent: false,
    })
    .unwrap();
    let proxy = start_proxy(ProxyConfig::new(center.addr())).unwrap();

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    for p in ["/w/x.html", "/w/y.html", "/w/z.html", "/w/x.html"] {
        let resp = client.get(p, &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, synth_body(p, 400));
    }

    // The center learned the resources and piggybacked for the dumb origin.
    assert_eq!(center.learned_resources(), 3);
    assert!(center.stats().piggybacks_sent >= 1, "{:?}", center.stats());
    assert!(proxy.stats().piggyback_messages >= 1);
    // The repeat of /w/x.html was a proxy cache hit.
    assert_eq!(proxy.stats().fresh_hits, 1);

    proxy.stop();
    center.stop();
    origin.stop();
}

#[test]
fn many_clients_share_one_proxy_cache() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
    let path = origin.paths[0].clone();

    // Four clients request the same resource concurrently-ish.
    let mut handles = Vec::new();
    for _ in 0..4 {
        let addr = proxy.addr();
        let p = path.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(addr).unwrap();
            let r = c.get(&p, &[]).unwrap();
            assert_eq!(r.status, 200);
            r.body.len()
        }));
    }
    let lens: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(lens.iter().all(|&l| l == lens[0]));

    let stats = proxy.stats();
    assert_eq!(stats.requests, 4);
    // At least one request actually hit the origin; subsequent ones could
    // race, but the cache must have served *some* of them once warm...
    // deterministically we can only bound:
    assert!(stats.full_fetches >= 1);
    assert!(stats.full_fetches + stats.fresh_hits + stats.validations >= 4);

    proxy.stop();
    origin.stop();
}
