//! Replay determinism against the committed reference inventory
//! (`crates/trace/testdata/reference.inv`): driving the same request
//! stream through the replay origin twice, and at 1 vs 16 client threads,
//! must yield byte-identical response streams and an exactly equal stats
//! ledger. This is what makes every latency claim in `ext-netprofile`
//! reproducible off loopback — the origin's behavior cannot depend on
//! wall clock, arrival order, or thread interleaving.

use piggyback::core::types::DurationMs;
use piggyback::httpwire::{Request, Response};
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::proxy::{start_proxy, ProxyConfig, ProxyStats};
use piggyback::proxyd::replay_origin::{
    start_replay_origin, ReplayConfig, ReplayHandle, ReplayStats, ReplayTiming, DIVERGENCE_HEADER,
};
use piggyback::proxyd::IoMode;
use piggyback::trace::inventory::{reference_inventory_path, Inventory};
use piggyback::trace::record::body_hash;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

fn reference() -> Arc<Inventory> {
    let inv = Inventory::load(&reference_inventory_path())
        .expect("committed reference inventory loads (run make-inventory to regenerate)");
    assert!(!inv.entries.is_empty());
    Arc::new(inv)
}

fn start(inv: &Arc<Inventory>) -> ReplayHandle {
    start_replay_origin(ReplayConfig {
        port: 0,
        inventory: Arc::clone(inv),
        timing: ReplayTiming::Immediate,
    })
    .expect("replay origin starts")
}

/// Everything a client observes about one path: full-fetch status, body
/// hash, `Last-Modified`, and the validation status at that LM.
type Observation = (u16, u64, String, u16);

/// Drive every recorded path twice — plain GET, then `If-Modified-Since`
/// at the recorded `Last-Modified` — across `threads` clients over
/// disjoint path partitions, and collect what each path's wire exchange
/// looked like.
fn drive(addr: SocketAddr, inv: &Inventory, threads: usize) -> BTreeMap<String, Observation> {
    let work: Vec<(String, String)> = inv
        .paths()
        .into_iter()
        .map(|path| {
            let lm = inv
                .entries
                .iter()
                .find(|e| e.path == path)
                .and_then(|e| e.response_header("Last-Modified"))
                .expect("every reference entry carries Last-Modified")
                .to_owned();
            (path, lm)
        })
        .collect();
    let maps: Vec<BTreeMap<String, Observation>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let work = &work;
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    let mut seen = BTreeMap::new();
                    for (path, lm) in work.iter().skip(t).step_by(threads) {
                        let full = client.get(path, &[]).unwrap();
                        let valid = client
                            .get(path, &[("If-Modified-Since", lm.as_str())])
                            .unwrap();
                        let observed_lm = full
                            .headers
                            .get("Last-Modified")
                            .unwrap_or_default()
                            .to_owned();
                        seen.insert(
                            path.clone(),
                            (
                                full.status,
                                body_hash(&full.body),
                                observed_lm,
                                valid.status,
                            ),
                        );
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = BTreeMap::new();
    for m in maps {
        merged.extend(m);
    }
    merged
}

/// One complete run against a fresh replay origin: the observation map
/// plus the origin's final ledger.
fn run(inv: &Arc<Inventory>, threads: usize) -> (BTreeMap<String, Observation>, ReplayStats) {
    let replay = start(inv);
    let seen = drive(replay.addr(), inv, threads);
    let stats = replay.stats();
    replay.stop();
    (seen, stats)
}

#[test]
fn committed_inventory_parses_and_renders_fixed_point() {
    let inv = reference();
    let text = inv.to_text();
    let reparsed = Inventory::parse(&text).expect("committed inventory re-parses");
    assert_eq!(&reparsed, &*inv);
    assert_eq!(reparsed.to_text(), text, "rendering is a fixed point");
    // The replay tests below rely on every path having a 200 + LM.
    for e in &inv.entries {
        assert_eq!(e.status, 200, "{}", e.path);
        assert!(e.response_header("Last-Modified").is_some(), "{}", e.path);
    }
}

#[test]
fn replay_is_identical_across_repeats_and_thread_counts() {
    let inv = reference();
    let (seen_a, stats_a) = run(&inv, 1);
    let (seen_b, stats_b) = run(&inv, 1);
    let (seen_c, stats_c) = run(&inv, 16);

    // Byte-identical response streams: same status, same body bytes, same
    // validator, same 304 on revalidation — for every path, in every run.
    assert_eq!(seen_a, seen_b, "same stream twice must replay identically");
    assert_eq!(seen_a, seen_c, "concurrency must not change any response");
    for (path, (status, hash, _lm, valid)) in &seen_a {
        let entry = inv.entries.iter().find(|e| e.path == *path).unwrap();
        assert_eq!(*status, entry.status, "{path}");
        assert_eq!(
            *hash,
            entry.body_hash(),
            "{path}: body must be the recorded bytes"
        );
        assert_eq!(*valid, 304, "{path}: IMS at the recorded LM must validate");
    }

    // Exactly equal stats ledgers, and the conservation law holds.
    assert_eq!(stats_a, stats_b);
    assert_eq!(stats_a, stats_c, "ledger must not depend on thread count");
    let p = inv.paths().len() as u64;
    assert_eq!(stats_a.requests, 2 * p);
    assert_eq!(stats_a.served_200, p);
    assert_eq!(stats_a.served_304, p);
    assert_eq!(stats_a.divergences, 0);
    assert_eq!(stats_a.outcomes(), stats_a.requests);
}

#[test]
fn divergences_are_flagged_not_improvised() {
    let inv = reference();
    let replay = start(&inv);

    // A path the recording never saw.
    let mut client = HttpClient::connect(replay.addr()).unwrap();
    let resp = client.get("/__never_recorded__.html", &[]).unwrap();
    assert_eq!(resp.status, 500);
    assert_eq!(
        resp.headers.get(DIVERGENCE_HEADER),
        Some("unrecorded-request")
    );

    // A method the recording never saw, even on a recorded path.
    let recorded = inv.paths().remove(0);
    let stream = std::net::TcpStream::connect(replay.addr()).unwrap();
    let mut r = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut w = std::io::BufWriter::new(stream);
    let mut req = Request::new("POST", &recorded);
    req.headers.insert("Host", "t");
    req.headers.insert("Connection", "close");
    req.headers.insert("Content-Length", "0");
    req.write(&mut w).unwrap();
    let resp = Response::read(&mut r, false).unwrap();
    assert_eq!(resp.status, 500);
    assert_eq!(
        resp.headers.get(DIVERGENCE_HEADER),
        Some("unrecorded-request")
    );

    let s = replay.stats();
    assert_eq!(s.requests, 2);
    assert_eq!(s.divergences, 2);
    assert_eq!(s.outcomes(), s.requests);
    replay.stop();
}

/// Drive a proxy backed by the replay origin: each thread walks its
/// partition of the recorded paths twice in a row, so the first pass
/// full-fetches and the second is answered from the warm cache.
fn drive_proxy(inv: &Arc<Inventory>, threads: usize) -> ProxyStats {
    drive_proxy_io(inv, threads, IoMode::Threaded)
}

fn drive_proxy_io(inv: &Arc<Inventory>, threads: usize, io: IoMode) -> ProxyStats {
    let replay = start(inv);
    let mut cfg = ProxyConfig::new(replay.addr());
    cfg.freshness = DurationMs::from_millis(3_600_000);
    cfg.rpv = None;
    cfg.report_hits = false;
    cfg.io = io;
    let proxy = start_proxy(cfg).expect("proxy starts");
    let paths = inv.paths();
    std::thread::scope(|s| {
        for t in 0..threads {
            let paths = &paths;
            let addr = proxy.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for _pass in 0..2 {
                    for path in paths.iter().skip(t).step_by(threads) {
                        let resp = client.get(path, &[]).unwrap();
                        assert_eq!(resp.status, 200, "{path}");
                    }
                }
            });
        }
    });
    let stats = proxy.stats();
    assert_eq!(replay.stats().divergences, 0);
    proxy.stop();
    replay.stop();
    stats
}

/// With piggyback payloads stripped from the inventory, the proxy's whole
/// ledger is a pure function of the request multiset — so 1 thread and 16
/// threads must land on the *exact same* `ProxyStats`. (With piggybacks
/// attached, the freshen/prefetch split depends on whether a volume-mate
/// is already cached when the payload arrives — classification order is
/// real concurrency, which is why the full-payload determinism claim is
/// made at the replay origin, not the proxy ledger.)
#[test]
fn proxy_ledger_is_thread_count_invariant_without_piggybacks() {
    let mut stripped = (*reference()).clone();
    for e in &mut stripped.entries {
        e.piggyback = None;
    }
    let stripped = Arc::new(stripped);

    let one = drive_proxy(&stripped, 1);
    let sixteen = drive_proxy(&stripped, 16);
    assert_eq!(one, sixteen, "ledger must not depend on client concurrency");

    let p = stripped.paths().len() as u64;
    assert_eq!(one.requests, 2 * p);
    assert_eq!(one.full_fetches, p);
    assert_eq!(one.fresh_hits, p, "second pass must be all warm hits");
    assert_eq!(one.upstream_errors, 0);
    assert_eq!(
        one.piggyback_messages, 0,
        "stripped inventory carries no pv"
    );
    assert_eq!(one.outcomes(), one.requests);
}

/// The I/O-mode invariance lane (ISSUE 7): the serving engine is not
/// allowed to leak into the ledger. With piggybacks stripped (so the
/// ledger is a pure function of the request multiset), the epoll reactor
/// and the threaded pool must land on the *exact same* `ProxyStats`, at
/// 1 client and at 16 — misses through the reactor's offload path and
/// hits through its inline path included.
#[cfg(target_os = "linux")]
#[test]
fn proxy_ledger_is_io_mode_invariant() {
    let mut stripped = (*reference()).clone();
    for e in &mut stripped.entries {
        e.piggyback = None;
    }
    let stripped = Arc::new(stripped);
    const REACTOR: IoMode = IoMode::Reactor { reactors: 2 };

    for threads in [1, 16] {
        let threaded = drive_proxy_io(&stripped, threads, IoMode::Threaded);
        let reactor = drive_proxy_io(&stripped, threads, REACTOR);
        assert_eq!(
            threaded, reactor,
            "{threads}-client ledger must not depend on the I/O engine"
        );
        assert_eq!(reactor.outcomes(), reactor.requests);
    }
}

/// With the full inventory (piggybacks intact), the order-invariant parts
/// of the proxy ledger still must not depend on concurrency, and the
/// piggyback element classification must conserve: every element lands in
/// exactly one of freshen/invalidate/prefetch.
#[test]
fn proxy_piggyback_counters_conserve_at_any_thread_count() {
    let inv = reference();
    let one = drive_proxy(&inv, 1);
    let sixteen = drive_proxy(&inv, 16);

    for (label, a, b) in [
        ("requests", one.requests, sixteen.requests),
        ("fresh_hits", one.fresh_hits, sixteen.fresh_hits),
        ("full_fetches", one.full_fetches, sixteen.full_fetches),
        ("not_modified", one.not_modified, sixteen.not_modified),
        (
            "upstream_errors",
            one.upstream_errors,
            sixteen.upstream_errors,
        ),
        (
            "piggyback_messages",
            one.piggyback_messages,
            sixteen.piggyback_messages,
        ),
        (
            "piggybacked_elements",
            one.piggybacked_elements,
            sixteen.piggybacked_elements,
        ),
    ] {
        assert_eq!(a, b, "{label} must be thread-count invariant");
    }
    for s in [&one, &sixteen] {
        assert!(s.piggyback_messages > 0, "recorded piggybacks must arrive");
        assert_eq!(
            s.piggyback_freshens + s.piggyback_invalidations + s.prefetch_candidates,
            s.piggybacked_elements,
            "every piggybacked element is classified exactly once: {s:?}"
        );
        assert_eq!(s.outcomes(), s.requests);
    }
}
