//! Reactor-mode integration suite (ISSUE 7 tentpole proof): the epoll
//! reactor must be indistinguishable from the threaded pool on the wire.
//!
//! * **Byte identity** — the same request bytes against two proxies (and
//!   two origins) differing only in `--io` produce byte-identical
//!   responses, misses and hits alike.
//! * **Conservation** — 16 concurrent keep-alive clients through a
//!   reactor proxy leave the lock-free outcome counters balancing
//!   exactly, same as the threaded suite in `concurrency_stress.rs`.
//! * **Pipelining, idle reaping, offload errors, metrics** — the
//!   reactor-specific behaviors observable from outside.
//!
//! Linux-only: off Linux `IoMode::Reactor` falls back to the threaded
//! pool and these tests would prove nothing.

#![cfg(target_os = "linux")]

use piggyback::core::filter::ProxyFilter;
use piggyback::core::types::DurationMs;
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::origin::{start_origin, OriginConfig};
use piggyback::proxyd::proxy::{start_proxy, ProxyConfig, ProxyHandle};
use piggyback::proxyd::{IoMode, METRICS_PATH};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const REACTOR: IoMode = IoMode::Reactor { reactors: 2 };

/// A proxy over `origin` with deterministic wire output: no piggyback
/// filter, no RPV, no hit reports, freshness far longer than any test.
fn quiet_proxy(origin: SocketAddr, io: IoMode) -> ProxyHandle {
    let mut cfg = ProxyConfig::new(origin);
    cfg.io = io;
    cfg.freshness = DurationMs::from_secs(3600);
    cfg.filter = ProxyFilter::builder().max_piggy(0).build();
    cfg.rpv = None;
    cfg.report_hits = false;
    start_proxy(cfg).unwrap()
}

/// Write `req` raw and read exactly one `Content-Length`-framed response,
/// returning its bytes.
fn raw_roundtrip(stream: &mut TcpStream, req: &[u8]) -> Vec<u8> {
    stream.write_all(req).unwrap();
    read_framed(stream, &mut Vec::new())
}

/// Read one framed response; `carry` holds over-read bytes belonging to
/// the next pipelined response and must be reused across calls.
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Vec<u8> {
    let mut chunk = [0u8; 16 * 1024];
    let head_len = loop {
        if let Some(p) = find(carry, b"\r\n\r\n") {
            break p + 4;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed mid-header");
        carry.extend_from_slice(&chunk[..n]);
    };
    let total = head_len + content_length(&carry[..head_len]);
    while carry.len() < total {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let rest = carry.split_off(total);
    std::mem::replace(carry, rest)
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn content_length(head: &[u8]) -> usize {
    let p = find(head, b"Content-Length: ").expect("framed response");
    let rest = &head[p + 16..];
    let end = find(rest, b"\r\n").unwrap();
    std::str::from_utf8(&rest[..end]).unwrap().parse().unwrap()
}

fn get_bytes(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes()
}

#[test]
fn reactor_proxy_byte_identical_to_threaded() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let threaded = quiet_proxy(origin.addr(), IoMode::Threaded);
    let reactor = quiet_proxy(origin.addr(), REACTOR);
    let paths: Vec<String> = origin.paths.iter().take(12).cloned().collect();

    let mut ct = TcpStream::connect(threaded.addr()).unwrap();
    let mut cr = TcpStream::connect(reactor.addr()).unwrap();
    for path in &paths {
        let req = get_bytes(path);
        // First exchange is a miss (full upstream fetch, the reactor's
        // offload path), second a cached hit (inline path). Both must
        // match the threaded proxy byte for byte.
        for pass in ["miss", "hit"] {
            let from_threaded = raw_roundtrip(&mut ct, &req);
            let from_reactor = raw_roundtrip(&mut cr, &req);
            assert_eq!(
                from_threaded, from_reactor,
                "{pass} response for {path} must be byte-identical across I/O modes"
            );
        }
    }
    threaded.stop();
    reactor.stop();
    origin.stop();
}

#[test]
fn sixteen_clients_conserve_counters_in_reactor_mode() {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 60;
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = quiet_proxy(origin.addr(), REACTOR);
    let paths = origin.paths.clone();

    // Warm every path once so the timed region is all fresh hits.
    let mut warm = HttpClient::connect(proxy.addr()).unwrap();
    for p in &paths {
        assert_eq!(warm.get(p, &[]).unwrap().status, 200);
    }
    drop(warm);

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let paths = &paths;
            let addr = proxy.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..PER_CLIENT {
                    let path = &paths[(t * 7 + i) % paths.len()];
                    let resp = client.get(path, &[]).unwrap();
                    assert_eq!(resp.status, 200, "client {t} req {i} ({path})");
                }
            });
        }
    });

    let s = proxy.stats();
    let expected = (paths.len() + CLIENTS * PER_CLIENT) as u64;
    assert_eq!(s.requests, expected);
    assert_eq!(
        s.outcomes(),
        s.requests,
        "outcome counters must conserve requests exactly: {s:?}"
    );
    assert_eq!(s.upstream_errors, 0, "healthy origin: {s:?}");
    // Objects at/above the streaming threshold are deliberately never
    // cached whole: their repeats are prefix hits (head from cache,
    // suffix relayed), everything else a fresh hit.
    assert_eq!(
        s.fresh_hits + s.prefix_hits,
        (CLIENTS * PER_CLIENT) as u64,
        "warm cache: the timed region is all fresh or prefix hits: {s:?}"
    );
    proxy.stop();
    origin.stop();
}

#[test]
fn reactor_serves_pipelined_bursts_in_order() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = quiet_proxy(origin.addr(), REACTOR);
    let paths: Vec<String> = origin.paths.iter().take(8).cloned().collect();

    // Warm, then fire all 8 GETs in one write and read 8 responses back.
    let mut warm = HttpClient::connect(proxy.addr()).unwrap();
    let expected: Vec<Vec<u8>> = paths
        .iter()
        .map(|p| {
            assert_eq!(warm.get(p, &[]).unwrap().status, 200);
            let mut c = TcpStream::connect(proxy.addr()).unwrap();
            raw_roundtrip(&mut c, &get_bytes(p))
        })
        .collect();

    let mut burst = Vec::new();
    for p in &paths {
        burst.extend_from_slice(&get_bytes(p));
    }
    let mut conn = TcpStream::connect(proxy.addr()).unwrap();
    conn.write_all(&burst).unwrap();
    let mut carry = Vec::new();
    for (i, want) in expected.iter().enumerate() {
        let got = read_framed(&mut conn, &mut carry);
        assert_eq!(&got, want, "pipelined response {i} out of order or corrupt");
    }
    assert!(carry.is_empty(), "no trailing bytes after the burst");
    proxy.stop();
    origin.stop();
}

#[test]
fn reactor_reaps_idle_connections() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.io = REACTOR;
    cfg.freshness = DurationMs::from_secs(3600);
    cfg.reactor_idle_timeout = Duration::from_millis(250);
    let proxy = start_proxy(cfg).unwrap();

    let mut conn = TcpStream::connect(proxy.addr()).unwrap();
    let resp = raw_roundtrip(&mut conn, &get_bytes(&origin.paths[0]));
    assert!(resp.starts_with(b"HTTP/1.1 200"));

    // Served, then silent: the timer wheel must close us.
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let start = Instant::now();
    let n = conn.read(&mut [0u8; 64]).expect("expected EOF, not error");
    assert_eq!(n, 0, "idle connection must be closed by the reaper");
    assert!(
        start.elapsed() >= Duration::from_millis(100),
        "must not close a live connection instantly"
    );
    proxy.stop();
    origin.stop();
}

#[test]
fn reactor_survives_dead_origin_with_502s() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.io = REACTOR;
    cfg.freshness = DurationMs::from_secs(3600);
    cfg.filter = ProxyFilter::builder().max_piggy(0).build();
    cfg.rpv = None;
    cfg.report_hits = false;
    // No idle upstream connections retained: once the origin dies, the
    // next fetch must dial it fresh and fail, not ride a stale pooled
    // keep-alive the origin's draining worker still answers.
    cfg.pool_max_idle = 0;
    let proxy = start_proxy(cfg).unwrap();
    let warm_path = origin.paths[0].clone();
    let cold_path = origin.paths[1].clone();

    let mut conn = TcpStream::connect(proxy.addr()).unwrap();
    assert!(raw_roundtrip(&mut conn, &get_bytes(&warm_path)).starts_with(b"HTTP/1.1 200"));
    origin.stop();

    // Uncached path: the offload worker's upstream exchange fails and the
    // injected completion must carry a 502 — not close the connection.
    let resp = raw_roundtrip(&mut conn, &get_bytes(&cold_path));
    assert!(
        resp.starts_with(b"HTTP/1.1 502"),
        "dead origin must surface as 502: {:?}",
        String::from_utf8_lossy(&resp[..40.min(resp.len())])
    );
    // Same connection, cached-fresh path: still serving.
    assert!(raw_roundtrip(&mut conn, &get_bytes(&warm_path)).starts_with(b"HTTP/1.1 200"));

    let s = proxy.stats();
    assert_eq!(s.upstream_errors, 1, "{s:?}");
    assert_eq!(s.outcomes(), s.requests, "{s:?}");
    proxy.stop();
}

#[test]
fn reactor_metrics_expose_io_and_shard_gauges() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = quiet_proxy(origin.addr(), REACTOR);

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    assert_eq!(client.get(&origin.paths[0], &[]).unwrap().status, 200);
    let resp = client.get(METRICS_PATH, &[]).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body.to_vec()).unwrap();

    let scalar = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
            .unwrap_or_else(|| panic!("{name} missing from scrape:\n{text}"))
            .parse()
            .unwrap()
    };
    assert!(scalar("pb_proxy_accepts_total") >= 1);
    assert!(
        scalar("pb_proxy_open_connections") >= 1,
        "the scraping connection itself is open"
    );
    // Per-shard reactor gauges, one set per configured shard.
    for shard in 0..2 {
        for metric in [
            "pb_proxy_reactor_conns",
            "pb_proxy_reactor_accepts_total",
            "pb_proxy_reactor_wakeups_total",
            "pb_proxy_reactor_timeouts_total",
            "pb_proxy_reactor_offloads_total",
            "pb_proxy_reactor_upstream_dials_total",
            "pb_proxy_reactor_upstream_reuses_total",
            "pb_proxy_reactor_upstream_inflight",
            "pb_proxy_reactor_upstream_timeouts_total",
        ] {
            let line = format!("{metric}{{shard=\"{shard}\"}}");
            assert!(text.contains(&line), "{line} missing from scrape:\n{text}");
        }
    }
    // Accept-shard balance is observable: the accepts sum to the total.
    let shard_accepts: u64 = text
        .lines()
        .filter(|l| l.starts_with("pb_proxy_reactor_accepts_total"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(shard_accepts, scalar("pb_proxy_accepts_total"));
    proxy.stop();
    origin.stop();
}

/// ISSUE 9 tentpole proof: a plain miss workload never leaves the
/// reactor. Every cold fetch is driven as a nonblocking upstream
/// exchange on the shard's own epoll loop — zero offload-pool handoffs
/// — and sequential misses on one client connection reuse the shard's
/// parked upstream keep-alive instead of redialing the origin.
#[test]
fn reactor_misses_dial_upstream_without_offloads() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = quiet_proxy(origin.addr(), REACTOR);
    let paths: Vec<String> = origin.paths.iter().take(8).cloned().collect();

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    for p in &paths {
        assert_eq!(client.get(p, &[]).unwrap().status, 200);
    }
    let resp = client.get(METRICS_PATH, &[]).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body.to_vec()).unwrap();

    let shard_sum = |metric: &str| -> u64 {
        let tagged = format!("{metric}{{shard=");
        text.lines()
            .filter(|l| l.starts_with(&tagged))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum()
    };
    assert_eq!(
        shard_sum("pb_proxy_reactor_offloads_total"),
        0,
        "plain misses must stay on the reactor, not hop to the offload pool:\n{text}"
    );
    let dials = shard_sum("pb_proxy_reactor_upstream_dials_total");
    let reuses = shard_sum("pb_proxy_reactor_upstream_reuses_total");
    assert!(dials >= 1, "cold misses must dial the origin:\n{text}");
    assert_eq!(
        dials + reuses,
        paths.len() as u64,
        "every miss is exactly one dial or one keep-alive reuse:\n{text}"
    );
    assert_eq!(
        shard_sum("pb_proxy_reactor_upstream_inflight"),
        0,
        "quiescent proxy holds no in-flight upstream exchanges:\n{text}"
    );

    let s = proxy.stats();
    assert_eq!(s.full_fetches, paths.len() as u64, "{s:?}");
    assert_eq!(s.upstream_errors, 0, "{s:?}");
    assert_eq!(s.upstream_retries, 0, "{s:?}");
    assert_eq!(s.outcomes(), s.requests, "{s:?}");
    proxy.stop();
    origin.stop();
}

#[test]
fn origin_reactor_mode_byte_identical_and_piggybacking() {
    let threaded = start_origin(OriginConfig::default()).unwrap();
    let reactor = start_origin(OriginConfig {
        io: REACTOR,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(threaded.paths, reactor.paths, "same seed, same site");

    // Identical request sequences (including a piggyback-soliciting pair
    // in one directory) must produce byte-identical response streams —
    // trailers included, so frame with a real Response reader.
    let dir_pair: Vec<&String> = {
        let mut pair = Vec::new();
        for p in &threaded.paths {
            if pair.is_empty() {
                pair.push(p);
            } else if p.rsplit_once('/').map(|(d, _)| d) == pair[0].rsplit_once('/').map(|(d, _)| d)
            {
                pair.push(p);
                break;
            }
        }
        pair
    };
    assert_eq!(dir_pair.len(), 2, "site has a two-resource directory");

    let exchange = |addr: SocketAddr| -> Vec<piggyback::httpwire::Response> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        dir_pair
            .iter()
            .map(|path| {
                let mut req = piggyback::httpwire::Request::new("GET", path);
                req.headers.insert("Host", "t");
                req.headers.insert("TE", "chunked");
                req.headers.insert("Piggy-filter", "maxpiggy=10");
                req.write(&mut w).unwrap();
                piggyback::httpwire::Response::read(&mut r, false).unwrap()
            })
            .collect()
    };
    let from_threaded = exchange(threaded.addr());
    let from_reactor = exchange(reactor.addr());
    for (i, (a, b)) in from_threaded.iter().zip(&from_reactor).enumerate() {
        assert_eq!(a.status, b.status, "response {i}");
        assert_eq!(a.body, b.body, "response {i} body");
        assert_eq!(
            a.trailers.get("P-volume"),
            b.trailers.get("P-volume"),
            "response {i} piggyback"
        );
    }
    assert!(
        from_reactor[1].trailers.get("P-volume").is_some(),
        "second request in the directory must carry the piggyback trailer"
    );

    // Both origins account identically.
    let (st, sr) = (threaded.stats(), reactor.stats());
    assert_eq!(st.requests, sr.requests);
    assert_eq!(st.piggybacks_sent, sr.piggybacks_sent);
    assert_eq!(reactor.daemon_stats().connections, 1);
    threaded.stop();
    reactor.stop();
}

// ---------------------------------------------------------------------------
// ISSUE 10: streaming cut-through relay

/// Keep-alive origin serving one large `Content-Length` body for every
/// path, with a fixed `Last-Modified` so response heads are
/// deterministic across proxies.
fn start_big_origin(body: std::sync::Arc<Vec<u8>>) -> SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let body = std::sync::Arc::clone(&body);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut w = BufWriter::new(stream);
                while piggyback::httpwire::Request::read(&mut reader).is_ok() {
                    let head = format!(
                        "HTTP/1.1 200 OK\r\nLast-Modified: Thu, 01 Jan 1970 00:00:00 GMT\r\nContent-Length: {}\r\n\r\n",
                        body.len()
                    );
                    if w.write_all(head.as_bytes())
                        .and_then(|()| w.write_all(&body))
                        .and_then(|()| w.flush())
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
    });
    addr
}

fn deterministic_body(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// A streaming-enabled quiet proxy: objects above 256 KiB cut through,
/// the first 64 KiB is retained as a prefix.
fn streaming_proxy(origin: SocketAddr, io: IoMode) -> ProxyHandle {
    let mut cfg = ProxyConfig::new(origin);
    cfg.io = io;
    cfg.freshness = DurationMs::from_secs(3600);
    cfg.filter = ProxyFilter::builder().max_piggy(0).build();
    cfg.rpv = None;
    cfg.report_hits = false;
    cfg.stream_threshold = 256 * 1024;
    cfg.prefix_bytes = 64 * 1024;
    start_proxy(cfg).unwrap()
}

/// Tentpole proof: large-object misses and prefix hits are
/// byte-identical across the threaded engine and the reactor relay —
/// same head (`X-Cache: MISS` / `X-Cache: PREFIX`), same
/// `Content-Length` framing, same decoded payload.
#[test]
fn reactor_streams_large_objects_byte_identical_to_threaded() {
    let body = std::sync::Arc::new(deterministic_body(600 * 1024));
    let threaded = streaming_proxy(
        start_big_origin(std::sync::Arc::clone(&body)),
        IoMode::Threaded,
    );
    let reactor = streaming_proxy(start_big_origin(std::sync::Arc::clone(&body)), REACTOR);

    let mut ct = TcpStream::connect(threaded.addr()).unwrap();
    let mut cr = TcpStream::connect(reactor.addr()).unwrap();
    let req = get_bytes("/big.bin");
    for (pass, tag) in [
        ("miss", &b"X-Cache: MISS"[..]),
        ("prefix hit", &b"X-Cache: PREFIX"[..]),
    ] {
        let from_threaded = raw_roundtrip(&mut ct, &req);
        let from_reactor = raw_roundtrip(&mut cr, &req);
        assert!(
            find(&from_threaded, tag).is_some(),
            "{pass} must be tagged {}",
            String::from_utf8_lossy(tag)
        );
        assert_eq!(
            from_threaded, from_reactor,
            "{pass} response must be byte-identical across I/O modes"
        );
        assert!(
            from_threaded.ends_with(&body[body.len() - 1024..]),
            "{pass} payload must be the origin object"
        );
        assert_eq!(
            from_threaded.len() - body.len(),
            find(&from_threaded, b"\r\n\r\n").unwrap() + 4,
            "{pass} delivers exactly the declared payload"
        );
    }

    for (mode, proxy) in [("threaded", &threaded), ("reactor", &reactor)] {
        let s = proxy.stats();
        assert_eq!(s.requests, 2, "{mode}: {s:?}");
        assert_eq!(s.full_fetches, 1, "{mode}: {s:?}");
        assert_eq!(s.streamed_misses, 1, "{mode}: {s:?}");
        assert_eq!(s.prefix_hits, 1, "{mode}: {s:?}");
        assert_eq!(s.cache_hits, 1, "{mode}: {s:?}");
        assert_eq!(s.upstream_errors, 0, "{mode}: {s:?}");
        assert_eq!(s.outcomes(), s.requests, "{mode} conservation: {s:?}");
    }
    threaded.stop();
    reactor.stop();
}

/// Slow-reader fault lane: a client that stops reading mid-relay drives
/// the connection's output buffer to the high-water mark, which must
/// pause the origin leg (`relay_paused` fires) instead of buffering the
/// whole object — and the transfer must still complete intact once the
/// client drains.
#[test]
fn reactor_relay_backpressure_pauses_for_slow_readers() {
    let body = std::sync::Arc::new(deterministic_body(8 * 1024 * 1024));
    let proxy = streaming_proxy(start_big_origin(std::sync::Arc::clone(&body)), REACTOR);

    let mut conn = TcpStream::connect(proxy.addr()).unwrap();
    conn.write_all(&get_bytes("/huge.bin")).unwrap();

    // Don't read yet: wait until the relay reports a backpressure pause
    // on some shard (scraped over an independent connection).
    let paused = |text: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with("pb_proxy_reactor_relay_paused_total{shard="))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum()
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut m = HttpClient::connect(proxy.addr()).unwrap();
        let resp = m.get(METRICS_PATH, &[]).unwrap();
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        if paused(&text) >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "relay never hit the high-water mark:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Drain: the full object must arrive intact despite the stall.
    let resp = read_framed(&mut conn, &mut Vec::new());
    let head_len = find(&resp, b"\r\n\r\n").unwrap() + 4;
    assert_eq!(resp.len() - head_len, body.len());
    assert_eq!(
        &resp[head_len..],
        &body[..],
        "payload corrupt after backpressure"
    );

    let s = proxy.stats();
    assert_eq!(s.streamed_misses, 1, "{s:?}");
    assert_eq!(s.upstream_errors, 0, "{s:?}");
    assert_eq!(s.outcomes(), s.requests, "{s:?}");
    proxy.stop();
}
