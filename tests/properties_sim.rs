//! Property tests over the end-to-end proxy simulator: structural
//! invariants that must hold for every workload, configuration, and
//! modification pattern.

use piggyback::core::filter::ProxyFilter;
use piggyback::core::types::{DurationMs, SourceId, Timestamp};
use piggyback::core::volume::DirectoryVolumes;
use piggyback::trace::record::{Method, ServerLogEntry};
use piggyback::trace::synth::changes::ChangeEvent;
use piggyback::trace::ServerLog;
use piggyback::webcache::{
    build_server, simulate_proxy, FreshnessPolicy, PolicyKind, PrefetchConfig, ProxySimConfig,
};
use proptest::prelude::*;

/// A random single-site workload: resources in a couple of directories,
/// a request sequence, and a modification sequence.
fn arb_workload() -> impl Strategy<Value = (ServerLog, Vec<ChangeEvent>)> {
    (
        proptest::collection::vec((0u32..12, 0u32..4, 1u64..600), 1..120),
        proptest::collection::vec((0u32..12, 1u64..50_000), 0..40),
    )
        .prop_map(|(reqs, mods)| {
            let mut log = ServerLog {
                name: "prop".into(),
                ..Default::default()
            };
            for i in 0..12u32 {
                log.table.register_path(
                    &format!("/d{}/r{i}.html", i % 3),
                    500 + 100 * i as u64,
                    Timestamp::ZERO,
                );
            }
            let mut t = 0u64;
            for (r, src, dt) in reqs {
                t += dt;
                let resource = piggyback::core::types::ResourceId(r);
                log.entries.push(ServerLogEntry {
                    time: Timestamp::from_secs(t),
                    client: SourceId(src),
                    resource,
                    method: Method::Get,
                    status: 200,
                    bytes: log.table.meta(resource).unwrap().size,
                });
            }
            let mut changes: Vec<ChangeEvent> = mods
                .into_iter()
                .map(|(r, ct)| ChangeEvent {
                    time: Timestamp::from_secs(ct),
                    resource: piggyback::core::types::ResourceId(r),
                })
                .collect();
            changes.sort_by_key(|e| (e.time, e.resource.0));
            (log, changes)
        })
}

fn arb_config() -> impl Strategy<Value = ProxySimConfig> {
    (
        1_000u64..200_000,
        0usize..3,
        any::<bool>(),
        proptest::option::of(1u64..600),
        any::<bool>(),
        proptest::option::of(1u32..30),
    )
        .prop_map(
            |(capacity, policy, piggyback, delta_s, prefetch, maxpiggy)| {
                let filter = ProxyFilter {
                    max_piggy: maxpiggy,
                    ..Default::default()
                };
                ProxySimConfig {
                    capacity_bytes: capacity,
                    policy: [
                        PolicyKind::Lru,
                        PolicyKind::GdSize,
                        PolicyKind::PiggybackAware,
                    ][policy],
                    freshness: FreshnessPolicy::Fixed(DurationMs::from_secs(
                        delta_s.unwrap_or(3600),
                    )),
                    piggyback,
                    filter,
                    rpv: Some((8, DurationMs::from_secs(30))),
                    prefetch: prefetch.then(PrefetchConfig::default),
                    delta_encoding: None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants of every simulation run.
    #[test]
    fn simulator_invariants((log, changes) in arb_workload(), cfg in arb_config()) {
        let mut server = build_server(&log, DirectoryVolumes::new(1));
        let r = simulate_proxy(&log, &changes, &mut server, &cfg);

        prop_assert_eq!(r.client_requests, log.entries.len() as u64);
        prop_assert!(r.fresh_hits <= r.cache_hits);
        prop_assert!(r.cache_hits <= r.client_requests);
        prop_assert!(r.stale_served <= r.fresh_hits);
        prop_assert!(r.not_modified <= r.validations);
        // Every request resolves exactly one way: a fresh hit, a 304
        // validation, or a full 200 (miss or modified validation).
        // Prefetch fetches are not request-driven and are counted apart.
        prop_assert_eq!(
            r.fresh_hits + r.not_modified + r.full_fetches,
            r.client_requests,
            "request accounting: {:?}", r
        );
        prop_assert!(r.useful_prefetches <= r.prefetches);
        prop_assert!(r.prefetch_bytes <= r.bytes_from_server);
        if !cfg.piggyback {
            prop_assert_eq!(r.piggyback_messages, 0);
            prop_assert_eq!(r.piggyback_freshens, 0);
            prop_assert_eq!(r.piggyback_invalidations, 0);
            prop_assert_eq!(r.prefetches, 0);
        }
        if let Some(cap) = cfg.filter.max_piggy {
            prop_assert!(
                r.piggybacked_elements <= r.piggyback_messages * cap as u64,
                "cap violated: {} elements in {} messages (cap {})",
                r.piggybacked_elements, r.piggyback_messages, cap
            );
        }
        let hr = r.hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
        let bhr = r.byte_hit_rate();
        prop_assert!((0.0..=1.0).contains(&bhr));
    }

    /// Without modifications there is never staleness and never an
    /// invalidation, under any configuration.
    #[test]
    fn no_modifications_no_staleness((log, _) in arb_workload(), cfg in arb_config()) {
        let mut server = build_server(&log, DirectoryVolumes::new(1));
        let r = simulate_proxy(&log, &[], &mut server, &cfg);
        prop_assert_eq!(r.stale_served, 0);
        prop_assert_eq!(r.piggyback_invalidations, 0);
        prop_assert_eq!(r.not_modified, r.validations, "every validation 304s");
    }

    /// Piggybacking never increases server contacts for the same workload
    /// (prefetching off): freshens can only remove validations.
    #[test]
    fn piggybacking_never_increases_contacts((log, changes) in arb_workload()) {
        let base_cfg = ProxySimConfig {
            piggyback: false,
            prefetch: None,
            ..Default::default()
        };
        let pb_cfg = ProxySimConfig {
            piggyback: true,
            prefetch: None,
            ..Default::default()
        };
        let mut s1 = build_server(&log, DirectoryVolumes::new(1));
        let off = simulate_proxy(&log, &changes, &mut s1, &base_cfg);
        let mut s2 = build_server(&log, DirectoryVolumes::new(1));
        let on = simulate_proxy(&log, &changes, &mut s2, &pb_cfg);
        prop_assert!(
            on.server_contacts() <= off.server_contacts() + on.piggyback_invalidations,
            "piggyback {} vs baseline {} (+{} invalidation refetches allowed)",
            on.server_contacts(),
            off.server_contacts(),
            on.piggyback_invalidations
        );
    }
}
