//! Concurrency stress suite for the sharded proxy (ISSUE tentpole proof).
//!
//! M client threads × K requests hammer a live origin ↔ proxy chain over
//! real loopback TCP. The suite proves three things:
//!
//! 1. **Liveness** — no deadlock, no panic, every request answered (a
//!    watchdog aborts the process if a scenario wedges);
//! 2. **Exact conservation** — lock-free counters still add up when
//!    quiescent: `requests == fresh_hits + not_modified + full_fetches +
//!    upstream_errors + upstream_passthrough` on the proxy, and the
//!    origin's own daemon counter sees exactly
//!    `requests - fresh_hits + upstream_retries` upstream exchanges;
//! 3. **Byte identity** — every 200 body is byte-identical to what the
//!    origin serves directly, no interleaving corruption.
//!
//! The final test is the same-machine A/B demanded by the issue: the
//! identical workload against `ConcurrencyMode::Legacy` (global lock,
//! fresh origin connection per fetch) and `ConcurrencyMode::Sharded`
//! (shard locks + keep-alive pool), with a summary line reporting both
//! throughputs. Sharded must win strictly.

use piggyback::core::datetime::{format_rfc1123, DEFAULT_TRACE_EPOCH_UNIX};
use piggyback::core::filter::{ProxyFilter, PIGGY_FILTER_HEADER};
use piggyback::core::intern::directory_prefix;
use piggyback::core::types::{DurationMs, SourceId, Timestamp};
use piggyback::core::volume::{write_volumes, ProbabilityVolumesBuilder, SamplingMode};
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::netem::{NetProfile, ShimConfig};
use piggyback::proxyd::origin::{start_origin, OriginConfig, OriginHandle, VolumeScheme};
use piggyback::proxyd::proxy::{start_proxy, ConcurrencyMode, ProxyConfig, ProxyHandle};
use piggyback::proxyd::record_tap::{start_recorder, RecorderConfig};
use piggyback::proxyd::replay_origin::{start_replay_origin, ReplayConfig, ReplayTiming};
use piggyback::proxyd::volume_center::{start_volume_center, VolumeCenterConfig};
use piggyback::proxyd::{DaemonStats, IoMode, ProxyStats};
use piggyback::trace::synth::samplers::LogNormal;
use piggyback::trace::synth::site::{Site, SiteConfig};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;

/// Abort (don't hang CI) if a stress scenario deadlocks.
fn watchdog(limit: Duration) -> Arc<AtomicBool> {
    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < limit {
            std::thread::sleep(Duration::from_millis(100));
            if done2.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: stress scenario exceeded {limit:?} — deadlock?");
        std::process::exit(101);
    });
    done
}

fn start_chain(mode: ConcurrencyMode, freshness: DurationMs) -> (OriginHandle, ProxyHandle) {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.mode = mode;
    cfg.freshness = freshness;
    cfg.capacity_bytes = 64 * 1024 * 1024; // ample: eviction never drops bodies
    cfg.serve.workers = 64; // persistent client conns pin workers
    (origin, start_proxy(cfg).unwrap())
}

/// Ground truth straight from the origin, before any proxy traffic.
fn reference_bodies(origin: SocketAddr, paths: &[String]) -> HashMap<String, Vec<u8>> {
    let mut client = HttpClient::connect(origin).unwrap();
    paths
        .iter()
        .map(|p| {
            let resp = client.get(p, &[]).unwrap();
            assert_eq!(resp.status, 200);
            (p.clone(), resp.body.to_vec())
        })
        .collect()
}

/// Run `clients` threads × `per_client` GETs against `proxy`, asserting
/// status 200 and byte-identity against `reference`. Returns elapsed time.
fn drive(
    proxy: SocketAddr,
    paths: &[String],
    reference: &HashMap<String, Vec<u8>>,
    clients: usize,
    per_client: usize,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                s.spawn(move || {
                    let mut client = HttpClient::connect(proxy).unwrap();
                    for i in 0..per_client {
                        // Stride by a prime so threads desynchronize and
                        // every shard sees contention.
                        let path = &paths[(t * 7 + i) % paths.len()];
                        let resp = client
                            .get(path, &[])
                            .unwrap_or_else(|e| panic!("client {t} req {i} ({path}): {e:?}"));
                        assert_eq!(resp.status, 200, "client {t} req {i} ({path})");
                        assert_eq!(
                            resp.body, reference[path],
                            "client {t} req {i}: body corrupted for {path}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    start.elapsed()
}

/// The lock-free counters must balance exactly once traffic quiesces.
fn assert_conserved(s: &ProxyStats, expected_requests: u64) {
    assert_eq!(s.requests, expected_requests);
    assert_eq!(
        s.outcomes(),
        s.requests,
        "outcome counters must conserve requests exactly: {s:?}"
    );
    assert_eq!(s.upstream_errors, 0, "healthy origin: {s:?}");
    assert_eq!(s.upstream_passthrough, 0, "healthy origin: {s:?}");
}

/// Cross-daemon accounting: every proxy upstream exchange is a request
/// the origin's own (independent, lock-free) counter saw.
fn assert_origin_accounting(s: &ProxyStats, before: &DaemonStats, after: &DaemonStats) {
    let seen_by_origin = after.requests - before.requests;
    let sent_by_proxy = s.requests - s.fresh_hits + s.upstream_retries;
    assert_eq!(
        seen_by_origin, sent_by_proxy,
        "origin-side request count must match proxy-side upstream exchanges: {s:?}"
    );
}

#[test]
fn sixteen_clients_conserve_counters_exactly() {
    let done = watchdog(Duration::from_secs(120));
    let (origin, proxy) = start_chain(
        ConcurrencyMode::Sharded { shards: 8 },
        DurationMs::from_secs(60),
    );
    let paths: Vec<String> = origin.paths.clone();
    let reference = reference_bodies(origin.addr(), &paths);
    let baseline = origin.daemon_stats();

    const PER_CLIENT: usize = 25;
    drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);

    let s = proxy.stats();
    assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
    assert!(s.fresh_hits > 0, "Δ=60s workload must hit the cache: {s:?}");
    assert_origin_accounting(&s, &baseline, &origin.daemon_stats());

    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn validation_heavy_load_conserves_and_pools() {
    let done = watchdog(Duration::from_secs(120));
    // Δ=1ms: virtually every repeat revalidates upstream, exercising the
    // connection pool on nearly every request.
    let (origin, proxy) = start_chain(
        ConcurrencyMode::Sharded { shards: 8 },
        DurationMs::from_millis(1),
    );
    let paths: Vec<String> = origin.paths.clone();
    let reference = reference_bodies(origin.addr(), &paths);
    let baseline = origin.daemon_stats();

    const PER_CLIENT: usize = 15;
    drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);

    let s = proxy.stats();
    assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
    assert!(s.not_modified > 0, "Δ=1ms workload must revalidate: {s:?}");
    assert_origin_accounting(&s, &baseline, &origin.daemon_stats());

    let pool = proxy.pool_stats().expect("sharded mode pools");
    assert!(
        pool.reuses > 0,
        "validation-heavy load must reuse pooled origin connections: {pool:?}"
    );

    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn small_cache_thrash_stays_live_and_conserved() {
    let done = watchdog(Duration::from_secs(120));
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.mode = ConcurrencyMode::Sharded { shards: 4 };
    cfg.capacity_bytes = 16 * 1024; // force constant eviction across shards
    cfg.serve.workers = 64;
    let proxy = start_proxy(cfg).unwrap();
    let paths: Vec<String> = origin.paths.clone();
    let reference = reference_bodies(origin.addr(), &paths);

    const PER_CLIENT: usize = 15;
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let paths = &paths;
            let reference = &reference;
            let addr = proxy.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..PER_CLIENT {
                    let path = &paths[(t * 7 + i) % paths.len()];
                    let resp = client.get(path, &[]).unwrap();
                    assert_eq!(resp.status, 200);
                    // Under thrash a validated entry can race an eviction
                    // and serve the empty body (the seed did the same);
                    // what it must never serve is a *wrong* body.
                    assert!(
                        resp.body.is_empty() || resp.body == reference[path],
                        "corrupted body for {path}"
                    );
                }
            });
        }
    });

    let s = proxy.stats();
    assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn ab_sharded_beats_legacy_throughput() {
    let done = watchdog(Duration::from_secs(300));
    // Validation-heavy workload: Δ=1ms means almost every request goes
    // upstream, so Legacy pays a fresh TCP connect per exchange while
    // Sharded reuses pooled keep-alive connections.
    const PER_CLIENT: usize = 30;
    let run = |mode: ConcurrencyMode| -> (f64, ProxyStats) {
        let (origin, proxy) = start_chain(mode, DurationMs::from_millis(1));
        let paths: Vec<String> = origin.paths.clone();
        let reference = reference_bodies(origin.addr(), &paths);
        let elapsed = drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);
        let s = proxy.stats();
        assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
        proxy.stop();
        origin.stop();
        ((CLIENTS * PER_CLIENT) as f64 / elapsed.as_secs_f64(), s)
    };

    // Same-machine timing is noisy; give the comparison a few attempts
    // before declaring the optimisation regressed.
    let mut summary = String::new();
    for attempt in 1..=3 {
        let (legacy_rps, _) = run(ConcurrencyMode::Legacy);
        let (sharded_rps, _) = run(ConcurrencyMode::Sharded { shards: 8 });
        summary = format!(
            "A/B summary (attempt {attempt}): legacy={legacy_rps:.0} req/s \
             sharded={sharded_rps:.0} req/s speedup={:.2}x \
             ({CLIENTS} clients x {PER_CLIENT} reqs, Δ=1ms)",
            sharded_rps / legacy_rps
        );
        println!("{summary}");
        if sharded_rps > legacy_rps {
            done.store(true, Ordering::SeqCst);
            return;
        }
    }
    panic!("sharded throughput must be strictly higher than legacy: {summary}");
}

// ---------------------------------------------------------------------------
// Origin-only lane: the de-serialized origin hot path (read-mostly snapshot,
// atomic stats, piggyback encode cache) against the `--legacy-origin`
// single-mutex baseline. Same three proofs as the proxy lane: liveness,
// exact conservation of the server ledger (`requests == piggybacks_sent +
// suppressed + no_filter`) under concurrent `/_pb/modify` and metrics
// scrapes, and byte-identical piggyback content between the two modes.
// ---------------------------------------------------------------------------

/// Pull one `name value` field out of a `/_pb/stats` body.
fn stats_field(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .and_then(|r| r.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("missing `{name}` in stats body:\n{body}"))
}

/// 16 clients with a mixed workload (filtered, filter-less, 404, and
/// If-Modified-Since requests) racing a `/_pb/modify` mutator and a
/// stats/metrics scraper. At quiescence every ledger must balance exactly,
/// in both serving modes.
fn origin_conservation_run(legacy: bool) {
    let done = watchdog(Duration::from_secs(120));
    let origin = start_origin(OriginConfig {
        legacy,
        ..Default::default()
    })
    .unwrap();
    let paths = origin.paths.clone();
    let addr = origin.addr();
    let churn_stop = Arc::new(AtomicBool::new(false));

    const PER_CLIENT: usize = 40; // divisible by 4: exact per-case counts
    let future_ims = format_rfc1123(DEFAULT_TRACE_EPOCH_UNIX + 1_000_000_000);

    std::thread::scope(|s| {
        // Mutator: Last-Modified bumps force table rebuilds (snapshot
        // swaps on the new path) while the serving path is under load.
        {
            let stop = Arc::clone(&churn_stop);
            let paths = &paths;
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut i = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let path = &paths[i % paths.len()];
                    let resp = client.get(&format!("/_pb/modify{path}"), &[]).unwrap();
                    assert_eq!(resp.status, 204, "modify {path}");
                    i += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        // Scraper: the observability surface must stay consistent while
        // the counters it reports on are being bumped.
        {
            let stop = Arc::clone(&churn_stop);
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                while !stop.load(Ordering::SeqCst) {
                    let st = client.get("/_pb/stats", &[]).unwrap();
                    assert_eq!(st.status, 200);
                    let body = String::from_utf8(st.body.to_vec()).unwrap();
                    // Mid-flight reads may lag individual counters but must
                    // never *overshoot* the requests they account for.
                    let requests = stats_field(&body, "requests");
                    let outcomes = stats_field(&body, "piggybacks_sent")
                        + stats_field(&body, "suppressed")
                        + stats_field(&body, "no_filter");
                    assert!(
                        outcomes <= requests + (CLIENTS as u64),
                        "scraped outcomes ran far ahead of requests:\n{body}"
                    );
                    let m = client.get("/__pb/metrics", &[]).unwrap();
                    assert_eq!(m.status, 200);
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        let clients: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let paths = &paths;
                let future_ims = future_ims.as_str();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for i in 0..PER_CLIENT {
                        let path = &paths[(t * 7 + i) % paths.len()];
                        match i % 4 {
                            0 => {
                                let resp = client
                                    .get(
                                        path,
                                        &[("Piggy-filter", "maxpiggy=10"), ("TE", "chunked")],
                                    )
                                    .unwrap();
                                assert_eq!(resp.status, 200, "client {t} req {i} ({path})");
                            }
                            1 => {
                                let resp = client.get(path, &[]).unwrap();
                                assert_eq!(resp.status, 200, "client {t} req {i} ({path})");
                                assert!(
                                    resp.headers.get("P-volume").is_none(),
                                    "no filter must mean no piggyback ({path})"
                                );
                            }
                            2 => {
                                let resp = client
                                    .get(
                                        "/definitely/not/registered.html",
                                        &[("Piggy-filter", "maxpiggy=10")],
                                    )
                                    .unwrap();
                                assert_eq!(resp.status, 404, "client {t} req {i}");
                                assert!(
                                    resp.headers.get("P-volume").is_none()
                                        && resp.trailers.get("P-volume").is_none(),
                                    "a 404 must never carry P-volume"
                                );
                            }
                            _ => {
                                let resp = client
                                    .get(
                                        path,
                                        &[
                                            ("Piggy-filter", "maxpiggy=10"),
                                            ("If-Modified-Since", future_ims),
                                        ],
                                    )
                                    .unwrap();
                                assert_eq!(resp.status, 304, "client {t} req {i} ({path})");
                            }
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        churn_stop.store(true, Ordering::SeqCst);
    });

    // The server ledger counts exactly the resolved GETs: 404s (one in
    // four requests) never enter it, everything else lands in exactly one
    // outcome bucket.
    let s = origin.stats();
    let issued = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(s.requests, issued * 3 / 4, "mode legacy={legacy}: {s:?}");
    assert_eq!(
        s.outcomes(),
        s.requests,
        "server ledger must conserve exactly: {s:?}"
    );
    assert_eq!(s.piggybacks_sent + s.suppressed, issued / 2, "{s:?}");
    assert_eq!(s.no_filter, issued / 4, "{s:?}");
    assert!(
        origin.generation() > 0,
        "the mutator must have advanced the table generation"
    );

    // The HTTP surface reports the same ledger.
    let mut client = HttpClient::connect(addr).unwrap();
    let body = String::from_utf8(client.get("/_pb/stats", &[]).unwrap().body.to_vec()).unwrap();
    assert_eq!(stats_field(&body, "requests"), s.requests);
    assert_eq!(stats_field(&body, "piggybacks_sent"), s.piggybacks_sent);
    assert_eq!(stats_field(&body, "suppressed"), s.suppressed);
    assert_eq!(stats_field(&body, "no_filter"), s.no_filter);
    assert_eq!(stats_field(&body, "generation"), origin.generation());

    // Transport ledger: every counted request got exactly one response
    // (scrapes of /__pb/metrics are intercepted before the counters).
    let d = origin.daemon_stats();
    assert_eq!(
        d.requests,
        d.responses_ok + d.responses_not_modified + d.responses_error,
        "daemon ledger must conserve: {d:?}"
    );

    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn origin_sixteen_clients_conserve_with_concurrent_modify() {
    origin_conservation_run(false);
}

#[test]
fn origin_legacy_lane_conserves_with_concurrent_modify() {
    origin_conservation_run(true);
}

/// One step of the deterministic piggyback-identity schedule.
enum Step {
    Get(String),
    Modify(String),
}

/// Run `schedule` single-threaded against a fresh origin and collect the
/// `P-volume` value (trailer or header) of every GET.
fn collect_piggybacks(
    cfg: OriginConfig,
    schedule: &[Step],
    spacing: Duration,
) -> Vec<Option<String>> {
    let origin = start_origin(cfg).unwrap();
    let mut client = HttpClient::connect(origin.addr()).unwrap();
    let mut out = Vec::new();
    for step in schedule {
        match step {
            Step::Get(path) => {
                let resp = client
                    .get(path, &[("Piggy-filter", "maxpiggy=10"), ("TE", "chunked")])
                    .unwrap();
                assert_eq!(resp.status, 200, "{path}");
                out.push(
                    resp.trailers
                        .get("P-volume")
                        .or_else(|| resp.headers.get("P-volume"))
                        .map(str::to_owned),
                );
            }
            Step::Modify(path) => {
                let resp = client.get(&format!("/_pb/modify{path}"), &[]).unwrap();
                assert_eq!(resp.status, 204, "modify {path}");
            }
        }
        if !spacing.is_zero() {
            std::thread::sleep(spacing);
        }
    }
    origin.stop();
    out
}

/// Probability volumes are recency-independent, so the legacy and snapshot
/// paths must produce *byte-identical* piggybacks for an identical request
/// schedule — across a `/_pb/modify` generation bump, which also proves the
/// encode cache invalidates rather than serving stale bytes.
#[test]
fn origin_piggybacks_byte_identical_probability_lane() {
    let done = watchdog(Duration::from_secs(60));
    let site_cfg = SiteConfig {
        n_pages: 60,
        ..Default::default()
    };

    // Persist three disjoint learned implications: page0 -> page1,
    // page2 -> page3, page4 -> page5, each with p = 1.0 (occurrences
    // spaced beyond the co-access window so every occurrence earns its
    // credit).
    let (table, site) = Site::generate(&site_cfg);
    let mut builder =
        ProbabilityVolumesBuilder::new(DurationMs::from_secs(300), 0.1, SamplingMode::Exact);
    for (pair, lead) in [0usize, 2, 4].into_iter().enumerate() {
        let a = site.pages[lead].resource;
        let b = site.pages[lead + 1].resource;
        for k in 0..10u64 {
            let base = Timestamp::from_secs((pair as u64 * 1_000 + k) * 10_000);
            builder.observe(SourceId(1), a, base);
            builder.observe(SourceId(1), b, base + DurationMs::from_secs(2));
        }
    }
    let vols = builder.build(0.5);
    let file = std::env::temp_dir().join(format!("pb-stress-vols-{}.txt", std::process::id()));
    write_volumes(&vols, &table, &mut std::fs::File::create(&file).unwrap()).unwrap();
    let page = |i: usize| table.path(site.pages[i].resource).unwrap().to_owned();

    // Three rounds over the three leaders, with a Last-Modified bump on
    // page1 after the first round: responses 0..3 are generation 0,
    // responses 3..9 must reflect the bump.
    let mut schedule = Vec::new();
    for lead in [0usize, 2, 4] {
        schedule.push(Step::Get(page(lead)));
    }
    schedule.push(Step::Modify(page(1)));
    for _ in 0..2 {
        for lead in [0usize, 2, 4] {
            schedule.push(Step::Get(page(lead)));
        }
    }

    let cfg = |legacy: bool| OriginConfig {
        legacy,
        site: site_cfg.clone(),
        volumes: VolumeScheme::ProbabilityFile(file.clone()),
        ..Default::default()
    };
    let legacy_pv = collect_piggybacks(cfg(true), &schedule, Duration::ZERO);
    let concurrent_pv = collect_piggybacks(cfg(false), &schedule, Duration::ZERO);
    assert_eq!(
        legacy_pv, concurrent_pv,
        "legacy and snapshot piggybacks must be byte-identical"
    );

    // The schedule actually exercised piggybacks and the generation bump.
    let p1 = page(1);
    assert!(
        legacy_pv[0]
            .as_deref()
            .is_some_and(|pv| pv.contains(p1.as_str())),
        "page0's response must piggyback page1: {:?}",
        legacy_pv[0]
    );
    assert_ne!(
        legacy_pv[0], legacy_pv[3],
        "page1's Last-Modified bump must change page0's piggyback"
    );
    assert_eq!(
        legacy_pv[3], legacy_pv[6],
        "piggybacks must be stable between modifications"
    );
    let _ = std::fs::remove_file(&file);
    done.store(true, Ordering::SeqCst);
}

/// Directory volumes order piggybacks by access recency, so with requests
/// spaced past the clock's millisecond granularity the MTF (legacy) and
/// recency-sorted (snapshot) orders must also agree byte-for-byte.
#[test]
fn origin_piggybacks_byte_identical_directory_lane() {
    let done = watchdog(Duration::from_secs(60));
    let cfg = |legacy: bool| OriginConfig {
        legacy,
        ..Default::default()
    };

    // Pick the first 1-level directory (in registration order, identical
    // across runs) with at least three members.
    let paths = start_origin(cfg(false))
        .map(|o| {
            let p = o.paths.clone();
            o.stop();
            p
        })
        .unwrap();
    let mut dirs: Vec<(&str, Vec<&String>)> = Vec::new();
    for p in &paths {
        let d = directory_prefix(p, 1);
        match dirs.iter_mut().find(|(k, _)| *k == d) {
            Some((_, v)) => v.push(p),
            None => dirs.push((d, vec![p])),
        }
    }
    let members: Vec<String> = dirs
        .iter()
        .map(|(_, v)| v)
        .find(|v| v.len() >= 3)
        .expect("some directory has three resources")
        .iter()
        .take(3)
        .map(|p| (*p).clone())
        .collect();

    // Warm each member, shuffle the recency order, then collect the
    // piggybacks. 3ms spacing keeps every access on a distinct
    // millisecond so recency ordering is deterministic.
    let mut schedule: Vec<Step> = members.iter().cloned().map(Step::Get).collect();
    schedule.push(Step::Get(members[0].clone()));
    for m in &members {
        schedule.push(Step::Get(m.clone()));
    }

    let spacing = Duration::from_millis(3);
    let legacy_pv = collect_piggybacks(cfg(true), &schedule, spacing);
    let concurrent_pv = collect_piggybacks(cfg(false), &schedule, spacing);
    assert_eq!(
        legacy_pv, concurrent_pv,
        "legacy and snapshot directory piggybacks must be byte-identical"
    );
    assert!(
        legacy_pv.iter().filter(|p| p.is_some()).count() >= 3,
        "the schedule must actually produce piggybacks: {legacy_pv:?}"
    );
    done.store(true, Ordering::SeqCst);
}

/// Persist a probability volume set with `leaders` hub pages each implying
/// every other page of the site plus `admit` images, so a filtered response
/// to a leader pays a full element-selection scan over thousands of
/// candidates while a `types=image` filter admits only the images (keeping
/// the `P-volume` line itself modest while the scan stays expensive).
/// Returns the file path and the leaders' URL paths.
fn fat_probability_volumes(
    site_cfg: &SiteConfig,
    leaders: usize,
    admit: usize,
    tag: &str,
) -> (std::path::PathBuf, Vec<String>) {
    use piggyback::core::types::{ContentType, ResourceId};
    use piggyback::core::volume::ProbabilityVolumes;
    let (table, site) = Site::generate(site_cfg);
    assert!(site.pages.len() > leaders);
    let pages = site.pages[leaders..].iter().map(|p| p.resource);
    let images: Vec<ResourceId> = table
        .iter()
        .filter(|(_, _, m)| m.content_type == ContentType::Image)
        .map(|(id, _, _)| id)
        .take(admit)
        .collect();
    assert_eq!(images.len(), admit, "site must have {admit} images");
    let followers: Vec<ResourceId> = pages.chain(images).collect();
    let mut implications: HashMap<ResourceId, Vec<(ResourceId, f32)>> = HashMap::new();
    for lead in 0..leaders {
        implications.insert(
            site.pages[lead].resource,
            followers.iter().map(|&f| (f, 0.9f32)).collect(),
        );
    }
    let vols = ProbabilityVolumes::from_implications(0.25, implications);
    let file = std::env::temp_dir().join(format!("pb-stress-ab-{tag}-{}.txt", std::process::id()));
    write_volumes(&vols, &table, &mut std::fs::File::create(&file).unwrap()).unwrap();
    let leaders = (0..leaders)
        .map(|i| table.path(site.pages[i].resource).unwrap().to_owned())
        .collect();
    (file, leaders)
}

/// The issue's origin-side A/B: an identical piggyback-heavy workload at 16
/// connections against the single-mutex legacy origin and the lock-free
/// snapshot origin. Every request's piggyback selection scans ~2000
/// candidates (a size filter admits ~120) — under the global mutex on the
/// legacy path, once per `(volume, filter, generation)` on the new path
/// thanks to the encode cache (and off any lock entirely).
#[test]
fn ab_concurrent_origin_beats_legacy_throughput() {
    let done = watchdog(Duration::from_secs(300));
    const PER_CLIENT: usize = 120;
    let site_cfg = SiteConfig {
        n_pages: 2000,
        ..Default::default()
    };
    let (file, leaders) = fat_probability_volumes(&site_cfg, 8, 120, "throughput");
    let filter = "maxpiggy=250; types=image";

    let run = |legacy: bool| -> (f64, u64) {
        let origin = start_origin(OriginConfig {
            legacy,
            site: site_cfg.clone(),
            volumes: VolumeScheme::ProbabilityFile(file.clone()),
            ..Default::default()
        })
        .unwrap();
        let addr = origin.addr();
        // If-Modified-Since far in the future: every timed request is a
        // bodyless 304 that still carries its piggyback header, so the
        // measurement isolates the serving-path state work from body I/O.
        let ims = format_rfc1123(DEFAULT_TRACE_EPOCH_UNIX + 1_000_000_000);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..CLIENTS {
                let leaders = &leaders;
                let ims = ims.as_str();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for i in 0..PER_CLIENT {
                        let path = &leaders[(t * 7 + i) % leaders.len()];
                        let resp = client
                            .get(
                                path,
                                &[("Piggy-filter", filter), ("If-Modified-Since", ims)],
                            )
                            .unwrap();
                        assert_eq!(resp.status, 304, "client {t} req {i} ({path})");
                        assert!(
                            resp.headers.get("P-volume").is_some(),
                            "leader responses must carry their volume ({path})"
                        );
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let s = origin.stats();
        assert_eq!(s.requests, (CLIENTS * PER_CLIENT) as u64);
        assert_eq!(s.outcomes(), s.requests, "{s:?}");
        if !legacy {
            let cs = origin.cache_stats().expect("probability scheme caches");
            assert!(
                cs.hits > cs.misses,
                "steady-state workload must be cache-hit dominated: {cs:?}"
            );
        }
        origin.stop();
        (
            (CLIENTS * PER_CLIENT) as f64 / elapsed.as_secs_f64(),
            s.piggybacks_sent,
        )
    };

    let mut summary = String::new();
    for attempt in 1..=3 {
        let (legacy_rps, legacy_sent) = run(true);
        let (concurrent_rps, concurrent_sent) = run(false);
        assert_eq!(
            legacy_sent, concurrent_sent,
            "both modes must do the same piggyback work"
        );
        summary = format!(
            "origin A/B summary (attempt {attempt}): legacy={legacy_rps:.0} req/s \
             concurrent={concurrent_rps:.0} req/s speedup={:.2}x \
             ({CLIENTS} clients x {PER_CLIENT} reqs, ~2000-candidate volumes, 304 path)",
            concurrent_rps / legacy_rps
        );
        println!("{summary}");
        if concurrent_rps > legacy_rps {
            let _ = std::fs::remove_file(&file);
            done.store(true, Ordering::SeqCst);
            return;
        }
    }
    panic!("the lock-free origin must out-serve the legacy mutex: {summary}");
}

// ---------------------------------------------------------------------------
// Prefetch lane: demand fetches racing the speculative crew. The
// exactly-one-origin-fetch guarantee of `Prefetcher::claim_or_join` (a
// queued speculation is cancelled, an on-the-wire one is joined) is proved
// by cross-daemon accounting: the origin's independent request counter
// must equal the proxy's demand exchanges plus its speculative ones, with
// no duplicates. The speculation ledger itself must conserve exactly:
// `prefetch_issued == prefetch_used + prefetch_wasted + prefetch_inflight`.
// ---------------------------------------------------------------------------

/// Wait until the prefetch crew drains (its counters stop moving), then
/// return the quiescent stats snapshot. Demand traffic has already
/// stopped; only speculative fetches can still be in flight.
fn quiesce_prefetcher(proxy: &ProxyHandle) -> ProxyStats {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut prev = proxy.stats();
    loop {
        std::thread::sleep(Duration::from_millis(150));
        let cur = proxy.stats();
        let key = |s: &ProxyStats| {
            (
                s.prefetch_issued,
                s.prefetch_used,
                s.prefetch_wasted,
                s.prefetch_cancelled,
            )
        };
        if key(&cur) == key(&prev) {
            return cur;
        }
        assert!(
            Instant::now() < deadline,
            "prefetch crew did not quiesce: {cur:?}"
        );
        prev = cur;
    }
}

/// [`assert_origin_accounting`] extended for an active prefetcher: every
/// speculative fetch (and its retry) is one more exchange the origin saw,
/// and a demand that cancelled or joined a speculation adds nothing.
fn assert_prefetch_origin_accounting(s: &ProxyStats, before: &DaemonStats, after: &DaemonStats) {
    let seen_by_origin = after.requests - before.requests;
    let sent_by_proxy =
        s.requests - s.fresh_hits + s.upstream_retries + s.prefetch_issued + s.prefetch_retries;
    assert_eq!(
        seen_by_origin, sent_by_proxy,
        "a demand racing a speculation must cost exactly one origin fetch: {s:?}"
    );
}

/// 16 clients hammer a warmed origin through a prefetching proxy with no
/// think time, so demand fetches constantly race the speculative crew
/// (cancelling queued jobs, joining in-flight ones, deduping installed
/// entries). Driven in rounds until the race is observed both ways.
fn prefetch_race_run(io: IoMode) {
    let done = watchdog(Duration::from_secs(120));
    let origin = start_origin(OriginConfig::default()).unwrap();
    let paths: Vec<String> = origin.paths.clone();
    // Ground truth doubles as the origin warm-up: piggybacks only name
    // volume mates with recorded accesses, so a cold origin would give
    // the prefetcher nothing to race against.
    let reference = reference_bodies(origin.addr(), &paths);
    let baseline = origin.daemon_stats();

    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.mode = ConcurrencyMode::Sharded { shards: 8 };
    cfg.freshness = DurationMs::from_secs(60);
    cfg.capacity_bytes = 64 * 1024 * 1024;
    cfg.serve.workers = 64;
    cfg.prefetch_budget = 4;
    cfg.io = io;
    let proxy = start_proxy(cfg).unwrap();

    const PER_CLIENT: usize = 25;
    let mut rounds = 0u64;
    let s = loop {
        drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);
        rounds += 1;
        let s = quiesce_prefetcher(&proxy);
        // The race must have materialized at least once in either
        // direction — a speculation used by a demand, or a queued one
        // cancelled by it — before the ledger means anything.
        if s.prefetch_used + s.prefetch_cancelled > 0 || rounds == 10 {
            break s;
        }
    };

    assert_conserved(&s, rounds * (CLIENTS * PER_CLIENT) as u64);
    assert!(s.prefetch_issued > 0, "warmed origin must speculate: {s:?}");
    assert!(
        s.prefetch_used + s.prefetch_cancelled > 0,
        "no demand ever raced a speculation in {rounds} rounds: {s:?}"
    );
    assert_eq!(
        s.prefetch_issued,
        s.prefetch_used + s.prefetch_wasted + s.prefetch_inflight,
        "speculation ledger must conserve exactly: {s:?}"
    );
    assert_prefetch_origin_accounting(&s, &baseline, &origin.daemon_stats());

    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn prefetch_demand_race_costs_one_origin_fetch_threaded() {
    prefetch_race_run(IoMode::Threaded);
}

#[test]
fn prefetch_demand_race_costs_one_origin_fetch_reactor() {
    prefetch_race_run(IoMode::Reactor { reactors: 2 });
}

// ---------------------------------------------------------------------------
// Recorded-timing lane: the prefetch win must survive `ReplayTiming::
// Recorded` — real recorded TTFBs replayed faithfully, not loopback's
// microseconds. An inventory is captured through the record tap behind a
// shimmed link, then both arms replay against it.
// ---------------------------------------------------------------------------

/// A small site whose directories fit entirely under `maxpiggy`, so every
/// index piggyback names all of its directory mates and page-load
/// coverage is deterministic.
fn small_site() -> SiteConfig {
    SiteConfig {
        n_pages: 12,
        n_dirs: 4,
        max_depth: 1,
        images_per_page: (0, 0),
        shared_images: 0,
        links_per_page: (1, 2),
        page_size: LogNormal::new(900.0f64.ln(), 0.3),
        seed: 11,
        ..Default::default()
    }
}

/// Per-directory page loads over `paths`: directories with at least two
/// members, each an index plus its mates.
fn dir_pages(paths: &[String]) -> Vec<Vec<String>> {
    let mut dirs: Vec<(&str, Vec<String>)> = Vec::new();
    for p in paths {
        let d = directory_prefix(p, 1);
        match dirs.iter_mut().find(|(k, _)| *k == d) {
            Some((_, v)) => v.push(p.clone()),
            None => dirs.push((d, vec![p.clone()])),
        }
    }
    dirs.retain(|(_, v)| v.len() >= 2);
    dirs.into_iter().map(|(_, v)| v).collect()
}

/// Replay one arm against the recorded inventory and return the mean mate
/// latency plus the proxy's quiescent stats. `budget > 0` enables the
/// prefetcher (with a filter soliciting piggybacks); `budget == 0` is the
/// no-piggyback baseline.
fn replay_page_loads(
    inv: &Arc<piggyback::trace::inventory::Inventory>,
    pages: &[Vec<String>],
    budget: usize,
    think: Duration,
) -> (Duration, ProxyStats) {
    let replay = start_replay_origin(ReplayConfig {
        port: 0,
        inventory: Arc::clone(inv),
        timing: ReplayTiming::Recorded { scale: 1.0 },
    })
    .unwrap();
    let mut cfg = ProxyConfig::new(replay.addr());
    cfg.mode = ConcurrencyMode::Sharded { shards: 4 };
    cfg.freshness = DurationMs::from_secs(60);
    cfg.rpv = None;
    cfg.report_hits = false;
    cfg.filter = ProxyFilter::builder()
        .max_piggy(if budget > 0 { 10 } else { 0 })
        .build();
    cfg.prefetch_budget = budget;
    let proxy = start_proxy(cfg).unwrap();

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let mut mate_total = Duration::ZERO;
    let mut mates = 0u32;
    for page in pages {
        let (index, rest) = page.split_first().unwrap();
        let resp = client.get(index, &[]).unwrap();
        assert_eq!(resp.status, 200, "{index}");
        std::thread::sleep(think);
        for m in rest {
            let t = Instant::now();
            let resp = client.get(m, &[]).unwrap();
            mate_total += t.elapsed();
            mates += 1;
            assert_eq!(resp.status, 200, "{m}");
        }
    }
    let s = quiesce_prefetcher(&proxy);
    assert_eq!(
        s.prefetch_issued,
        s.prefetch_used + s.prefetch_wasted + s.prefetch_inflight,
        "speculation ledger must conserve under recorded timing: {s:?}"
    );
    let divergences = replay.stats().divergences;
    assert_eq!(
        divergences, 0,
        "every demand and speculative fetch must match the recording"
    );
    proxy.stop();
    replay.stop();
    (mate_total / mates.max(1), s)
}

/// Record a page-load workload through a shimmed link (30 ms RTT), then
/// replay it with recorded timing against a prefetching proxy and the
/// no-piggyback baseline. The prefetch arm's mates must hit the cache and
/// beat the baseline's recorded round trips — the paper's latency win,
/// reproduced off loopback.
#[test]
fn prefetch_win_survives_recorded_timing() {
    let done = watchdog(Duration::from_secs(120));
    let origin = start_origin(OriginConfig {
        site: small_site(),
        ..Default::default()
    })
    .unwrap();
    // Warm every path first (piggybacks only name accessed mates), then
    // record the full walk through a 30 ms-RTT shimmed relay so every
    // entry carries a real TTFB for `ReplayTiming::Recorded` to honor.
    {
        let mut c = HttpClient::connect(origin.addr()).unwrap();
        for p in &origin.paths {
            assert_eq!(c.get(p, &[]).unwrap().status, 200);
        }
    }
    let profile = NetProfile {
        name: "stress-recorded",
        rtt: Duration::from_millis(30),
        jitter: Duration::ZERO,
        down_bps: 0,
        up_bps: 0,
        error_rate: 0.0,
    };
    let center = start_volume_center(VolumeCenterConfig {
        port: 0,
        origin: origin.addr(),
        volume_level: 1,
        shim: Some(ShimConfig { profile, seed: 7 }),
        transparent: true,
    })
    .unwrap();
    let rec = start_recorder(RecorderConfig {
        port: 0,
        origin: center.addr(),
    })
    .unwrap();
    {
        let mut c = HttpClient::connect(rec.addr()).unwrap();
        for p in &origin.paths {
            let resp = c
                .get(
                    p,
                    &[("TE", "chunked"), (PIGGY_FILTER_HEADER, "maxpiggy=10")],
                )
                .unwrap();
            assert_eq!(resp.status, 200, "recording {p}");
        }
    }
    let inv = Arc::new(rec.finish("stress-recorded"));
    center.stop();
    origin.stop();
    assert!(
        inv.entries.iter().any(|e| e.ttfb_us >= 10_000),
        "the shimmed recording must carry real TTFBs"
    );
    assert!(
        inv.entries.iter().any(|e| e.piggyback.is_some()),
        "the warmed recording must carry piggybacks"
    );

    let pages = dir_pages(&inv.paths());
    assert!(!pages.is_empty(), "small site must have multi-member dirs");
    // Think long enough for a budget-4 crew to clear a directory's mates
    // over the recorded 30 ms TTFBs.
    let think = Duration::from_millis(300);
    let (nopb_mate, nopb_stats) = replay_page_loads(&inv, &pages, 0, think);
    let (pf_mate, pf_stats) = replay_page_loads(&inv, &pages, 4, think);

    assert_eq!(nopb_stats.prefetch_issued, 0, "baseline must not speculate");
    assert!(
        pf_stats.prefetch_used > 0,
        "the prefetch arm must serve mates speculatively: {pf_stats:?}"
    );
    println!(
        "recorded-timing mate latency: nopb={nopb_mate:?} prefetch={pf_mate:?} \
         (used={} issued={})",
        pf_stats.prefetch_used, pf_stats.prefetch_issued
    );
    assert!(
        pf_mate * 2 < nopb_mate,
        "prefetch must at least halve mean mate latency under recorded \
         timing: prefetch={pf_mate:?} nopb={nopb_mate:?}"
    );
    done.store(true, Ordering::SeqCst);
}
