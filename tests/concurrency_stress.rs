//! Concurrency stress suite for the sharded proxy (ISSUE tentpole proof).
//!
//! M client threads × K requests hammer a live origin ↔ proxy chain over
//! real loopback TCP. The suite proves three things:
//!
//! 1. **Liveness** — no deadlock, no panic, every request answered (a
//!    watchdog aborts the process if a scenario wedges);
//! 2. **Exact conservation** — lock-free counters still add up when
//!    quiescent: `requests == fresh_hits + not_modified + full_fetches +
//!    upstream_errors + upstream_passthrough` on the proxy, and the
//!    origin's own daemon counter sees exactly
//!    `requests - fresh_hits + upstream_retries` upstream exchanges;
//! 3. **Byte identity** — every 200 body is byte-identical to what the
//!    origin serves directly, no interleaving corruption.
//!
//! The final test is the same-machine A/B demanded by the issue: the
//! identical workload against `ConcurrencyMode::Legacy` (global lock,
//! fresh origin connection per fetch) and `ConcurrencyMode::Sharded`
//! (shard locks + keep-alive pool), with a summary line reporting both
//! throughputs. Sharded must win strictly.

use piggyback::core::types::DurationMs;
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::origin::{start_origin, OriginConfig, OriginHandle};
use piggyback::proxyd::proxy::{start_proxy, ConcurrencyMode, ProxyConfig, ProxyHandle};
use piggyback::proxyd::{DaemonStats, ProxyStats};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;

/// Abort (don't hang CI) if a stress scenario deadlocks.
fn watchdog(limit: Duration) -> Arc<AtomicBool> {
    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < limit {
            std::thread::sleep(Duration::from_millis(100));
            if done2.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: stress scenario exceeded {limit:?} — deadlock?");
        std::process::exit(101);
    });
    done
}

fn start_chain(mode: ConcurrencyMode, freshness: DurationMs) -> (OriginHandle, ProxyHandle) {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.mode = mode;
    cfg.freshness = freshness;
    cfg.capacity_bytes = 64 * 1024 * 1024; // ample: eviction never drops bodies
    cfg.serve.workers = 64; // persistent client conns pin workers
    (origin, start_proxy(cfg).unwrap())
}

/// Ground truth straight from the origin, before any proxy traffic.
fn reference_bodies(origin: SocketAddr, paths: &[String]) -> HashMap<String, Vec<u8>> {
    let mut client = HttpClient::connect(origin).unwrap();
    paths
        .iter()
        .map(|p| {
            let resp = client.get(p, &[]).unwrap();
            assert_eq!(resp.status, 200);
            (p.clone(), resp.body)
        })
        .collect()
}

/// Run `clients` threads × `per_client` GETs against `proxy`, asserting
/// status 200 and byte-identity against `reference`. Returns elapsed time.
fn drive(
    proxy: SocketAddr,
    paths: &[String],
    reference: &HashMap<String, Vec<u8>>,
    clients: usize,
    per_client: usize,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                s.spawn(move || {
                    let mut client = HttpClient::connect(proxy).unwrap();
                    for i in 0..per_client {
                        // Stride by a prime so threads desynchronize and
                        // every shard sees contention.
                        let path = &paths[(t * 7 + i) % paths.len()];
                        let resp = client
                            .get(path, &[])
                            .unwrap_or_else(|e| panic!("client {t} req {i} ({path}): {e:?}"));
                        assert_eq!(resp.status, 200, "client {t} req {i} ({path})");
                        assert_eq!(
                            resp.body, reference[path],
                            "client {t} req {i}: body corrupted for {path}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    start.elapsed()
}

/// The lock-free counters must balance exactly once traffic quiesces.
fn assert_conserved(s: &ProxyStats, expected_requests: u64) {
    assert_eq!(s.requests, expected_requests);
    assert_eq!(
        s.outcomes(),
        s.requests,
        "outcome counters must conserve requests exactly: {s:?}"
    );
    assert_eq!(s.upstream_errors, 0, "healthy origin: {s:?}");
    assert_eq!(s.upstream_passthrough, 0, "healthy origin: {s:?}");
}

/// Cross-daemon accounting: every proxy upstream exchange is a request
/// the origin's own (independent, lock-free) counter saw.
fn assert_origin_accounting(s: &ProxyStats, before: &DaemonStats, after: &DaemonStats) {
    let seen_by_origin = after.requests - before.requests;
    let sent_by_proxy = s.requests - s.fresh_hits + s.upstream_retries;
    assert_eq!(
        seen_by_origin, sent_by_proxy,
        "origin-side request count must match proxy-side upstream exchanges: {s:?}"
    );
}

#[test]
fn sixteen_clients_conserve_counters_exactly() {
    let done = watchdog(Duration::from_secs(120));
    let (origin, proxy) = start_chain(
        ConcurrencyMode::Sharded { shards: 8 },
        DurationMs::from_secs(60),
    );
    let paths: Vec<String> = origin.paths.clone();
    let reference = reference_bodies(origin.addr(), &paths);
    let baseline = origin.daemon_stats();

    const PER_CLIENT: usize = 25;
    drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);

    let s = proxy.stats();
    assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
    assert!(s.fresh_hits > 0, "Δ=60s workload must hit the cache: {s:?}");
    assert_origin_accounting(&s, &baseline, &origin.daemon_stats());

    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn validation_heavy_load_conserves_and_pools() {
    let done = watchdog(Duration::from_secs(120));
    // Δ=1ms: virtually every repeat revalidates upstream, exercising the
    // connection pool on nearly every request.
    let (origin, proxy) = start_chain(
        ConcurrencyMode::Sharded { shards: 8 },
        DurationMs::from_millis(1),
    );
    let paths: Vec<String> = origin.paths.clone();
    let reference = reference_bodies(origin.addr(), &paths);
    let baseline = origin.daemon_stats();

    const PER_CLIENT: usize = 15;
    drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);

    let s = proxy.stats();
    assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
    assert!(s.not_modified > 0, "Δ=1ms workload must revalidate: {s:?}");
    assert_origin_accounting(&s, &baseline, &origin.daemon_stats());

    let pool = proxy.pool_stats().expect("sharded mode pools");
    assert!(
        pool.reuses > 0,
        "validation-heavy load must reuse pooled origin connections: {pool:?}"
    );

    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn small_cache_thrash_stays_live_and_conserved() {
    let done = watchdog(Duration::from_secs(120));
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.mode = ConcurrencyMode::Sharded { shards: 4 };
    cfg.capacity_bytes = 16 * 1024; // force constant eviction across shards
    cfg.serve.workers = 64;
    let proxy = start_proxy(cfg).unwrap();
    let paths: Vec<String> = origin.paths.clone();
    let reference = reference_bodies(origin.addr(), &paths);

    const PER_CLIENT: usize = 15;
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let paths = &paths;
            let reference = &reference;
            let addr = proxy.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..PER_CLIENT {
                    let path = &paths[(t * 7 + i) % paths.len()];
                    let resp = client.get(path, &[]).unwrap();
                    assert_eq!(resp.status, 200);
                    // Under thrash a validated entry can race an eviction
                    // and serve the empty body (the seed did the same);
                    // what it must never serve is a *wrong* body.
                    assert!(
                        resp.body.is_empty() || resp.body == reference[path],
                        "corrupted body for {path}"
                    );
                }
            });
        }
    });

    let s = proxy.stats();
    assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn ab_sharded_beats_legacy_throughput() {
    let done = watchdog(Duration::from_secs(300));
    // Validation-heavy workload: Δ=1ms means almost every request goes
    // upstream, so Legacy pays a fresh TCP connect per exchange while
    // Sharded reuses pooled keep-alive connections.
    const PER_CLIENT: usize = 30;
    let run = |mode: ConcurrencyMode| -> (f64, ProxyStats) {
        let (origin, proxy) = start_chain(mode, DurationMs::from_millis(1));
        let paths: Vec<String> = origin.paths.clone();
        let reference = reference_bodies(origin.addr(), &paths);
        let elapsed = drive(proxy.addr(), &paths, &reference, CLIENTS, PER_CLIENT);
        let s = proxy.stats();
        assert_conserved(&s, (CLIENTS * PER_CLIENT) as u64);
        proxy.stop();
        origin.stop();
        ((CLIENTS * PER_CLIENT) as f64 / elapsed.as_secs_f64(), s)
    };

    // Same-machine timing is noisy; give the comparison a few attempts
    // before declaring the optimisation regressed.
    let mut summary = String::new();
    for attempt in 1..=3 {
        let (legacy_rps, _) = run(ConcurrencyMode::Legacy);
        let (sharded_rps, _) = run(ConcurrencyMode::Sharded { shards: 8 });
        summary = format!(
            "A/B summary (attempt {attempt}): legacy={legacy_rps:.0} req/s \
             sharded={sharded_rps:.0} req/s speedup={:.2}x \
             ({CLIENTS} clients x {PER_CLIENT} reqs, Δ=1ms)",
            sharded_rps / legacy_rps
        );
        println!("{summary}");
        if sharded_rps > legacy_rps {
            done.store(true, Ordering::SeqCst);
            return;
        }
    }
    panic!("sharded throughput must be strictly higher than legacy: {summary}");
}
