//! Failure injection against the live network components: truncated
//! responses, mid-body disconnects, garbage protocol data, and slow-start
//! servers. The proxy must degrade to 502s and keep serving — never hang
//! or panic.

use piggyback::httpwire::{Request, Response};
use piggyback::proxyd::client::{run_sequence, HttpClient};
use piggyback::proxyd::netem::{Conditioner, NetProfile, ShimConfig};
use piggyback::proxyd::origin::{start_origin, OriginConfig};
use piggyback::proxyd::proxy::{start_proxy, ProxyConfig, ProxyHandle};
use piggyback::proxyd::util::serve;
use piggyback::proxyd::volume_center::{start_volume_center, VolumeCenterConfig};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An origin that truncates every response body mid-stream.
fn truncating_origin() -> piggyback::proxyd::util::ServerHandle {
    serve(0, "truncating", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        if Request::read(&mut r).is_ok() {
            // Claim 1000 bytes, send 10, slam the connection.
            let _ = w.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\nabcdefghij");
            let _ = w.flush();
        }
        // Drop => RST/FIN.
    })
    .unwrap()
}

/// An origin that speaks garbage.
fn garbage_origin() -> piggyback::proxyd::util::ServerHandle {
    serve(0, "garbage", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut buf = [0u8; 1024];
        let _ = r.get_mut().read(&mut buf); // swallow whatever arrives
        let _ = w.write_all(b"\x00\x01\x02 NOT HTTP AT ALL \xff\xfe\r\n\r\n");
    })
    .unwrap()
}

/// An origin that alternates: fail the first request on each connection,
/// then answer correctly.
fn flaky_origin() -> (piggyback::proxyd::util::ServerHandle, Arc<AtomicUsize>) {
    let conns = Arc::new(AtomicUsize::new(0));
    let conns2 = Arc::clone(&conns);
    let handle = serve(0, "flaky", move |stream| {
        let n = conns2.fetch_add(1, Ordering::SeqCst);
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        loop {
            let req = match Request::read(&mut r) {
                Ok(q) => q,
                Err(_) => return,
            };
            if n == 0 {
                // First connection: die mid-exchange.
                return;
            }
            let keep = req.keep_alive();
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = b"recovered".into();
            if resp.write(&mut w).is_err() || !keep {
                return;
            }
        }
    })
    .unwrap();
    (handle, conns)
}

#[test]
fn truncated_origin_response_becomes_502() {
    let origin = truncating_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let resp = client.get("/x.html", &[]).unwrap();
    assert_eq!(resp.status, 502);
    // The proxy survives and keeps answering.
    let resp = client.get("/y.html", &[]).unwrap();
    assert_eq!(resp.status, 502);
    assert!(proxy.stats().upstream_errors >= 2);
    proxy.stop();
    origin.stop();
}

#[test]
fn garbage_origin_response_becomes_502() {
    let origin = garbage_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let resp = client.get("/x.html", &[]).unwrap();
    assert_eq!(resp.status, 502);
    proxy.stop();
    origin.stop();
}

#[test]
fn proxy_reconnects_after_dropped_upstream_connection() {
    let (origin, conns) = flaky_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    // First exchange: upstream dies; the proxy retries on a fresh
    // connection and succeeds.
    let resp = client.get("/x.html", &[]).unwrap();
    assert_eq!(resp.status, 200, "reconnect should recover");
    assert_eq!(resp.body, b"recovered");
    assert!(conns.load(Ordering::SeqCst) >= 2);
    proxy.stop();
    origin.stop();
}

#[test]
fn origin_survives_malformed_clients() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    // Throw raw garbage at the origin.
    {
        let mut s = std::net::TcpStream::connect(origin.addr()).unwrap();
        s.write_all(b"\x00\xffTOTAL NONSENSE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf); // origin just closes
    }
    // Then a well-formed request still works.
    let mut client = HttpClient::connect(origin.addr()).unwrap();
    let resp = client.get(&origin.paths[0].clone(), &[]).unwrap();
    assert_eq!(resp.status, 200);
    origin.stop();
}

#[test]
fn origin_rejects_bad_filter_gracefully() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut client = HttpClient::connect(origin.addr()).unwrap();
    // Malformed Piggy-filter: the origin must serve the resource and just
    // skip the piggyback.
    let resp = client
        .get(
            &origin.paths[0].clone(),
            &[("TE", "chunked"), ("Piggy-filter", "!!not=a=filter!!")],
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.trailers.get("P-volume").is_none());
    assert!(resp.headers.get("P-volume").is_none());
    origin.stop();
}

/// An origin that answers correctly (keep-alive) but slowly.
fn slow_origin(delay: Duration) -> piggyback::proxyd::util::ServerHandle {
    serve(0, "slow", move |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        loop {
            let req = match Request::read(&mut r) {
                Ok(q) => q,
                Err(_) => return,
            };
            std::thread::sleep(delay);
            let keep = req.keep_alive();
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = b"slow but sound".into();
            if resp.write(&mut w).is_err() || !keep {
                return;
            }
        }
    })
    .unwrap()
}

/// An origin that serves one valid response per connection, then closes:
/// every pooled connection dies right after checkin.
fn one_shot_origin() -> piggyback::proxyd::util::ServerHandle {
    serve(0, "one-shot", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        if Request::read(&mut r).is_ok() {
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = b"one shot".into();
            let _ = resp.write(&mut w);
        }
    })
    .unwrap()
}

/// An origin that appends unsolicited garbage after every complete,
/// valid response — poisoning the keep-alive framing.
fn chatty_origin() -> piggyback::proxyd::util::ServerHandle {
    serve(0, "chatty", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        loop {
            let req = match Request::read(&mut r) {
                Ok(q) => q,
                Err(_) => return,
            };
            let keep = req.keep_alive();
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = b"payload".into();
            if resp.write(&mut w).is_err() {
                return;
            }
            if w.write_all(b"%%%POISON%%%").is_err() || w.flush().is_err() || !keep {
                return;
            }
        }
    })
    .unwrap()
}

/// 8 clients × `per_client` distinct-path GETs; returns the statuses seen.
fn hammer(proxy: SocketAddr, per_client: usize) -> Vec<u16> {
    let results: Vec<Vec<u16>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                s.spawn(move || {
                    let mut client = HttpClient::connect(proxy).unwrap();
                    (0..per_client)
                        .map(|i| {
                            // Distinct paths: every request goes upstream.
                            let path = format!("/t{t}/r{i}.html");
                            client.get(&path, &[]).map_or(0, |r| r.status)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    results.into_iter().flatten().collect()
}

fn conserved(proxy: &ProxyHandle, expected: u64) {
    let s = proxy.stats();
    assert_eq!(s.requests, expected);
    assert_eq!(s.outcomes(), s.requests, "counters must conserve: {s:?}");
}

#[test]
fn truncating_origin_under_parallel_clients() {
    let origin = truncating_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let statuses = hammer(proxy.addr(), 4);
    assert_eq!(statuses.len(), 32);
    assert!(
        statuses.iter().all(|&s| s == 502),
        "every truncated fetch must become a 502: {statuses:?}"
    );
    conserved(&proxy, 32);
    assert_eq!(proxy.stats().upstream_errors, 32);
    proxy.stop();
    origin.stop();
}

#[test]
fn garbage_origin_under_parallel_clients() {
    let origin = garbage_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let statuses = hammer(proxy.addr(), 4);
    assert_eq!(statuses.len(), 32);
    assert!(
        statuses.iter().all(|&s| s == 502),
        "garbage must become 502s: {statuses:?}"
    );
    conserved(&proxy, 32);
    proxy.stop();
    origin.stop();
}

#[test]
fn slow_origin_under_parallel_clients() {
    let origin = slow_origin(Duration::from_millis(20));
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let statuses = hammer(proxy.addr(), 3);
    assert!(
        statuses.iter().all(|&s| s == 200),
        "slow is not broken: {statuses:?}"
    );
    conserved(&proxy, 24);
    proxy.stop();
    origin.stop();
}

#[test]
fn pool_evicts_dead_connections_under_parallel_load() {
    let origin = one_shot_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let statuses = hammer(proxy.addr(), 5);
    assert!(
        statuses.iter().all(|&s| s == 200),
        "dead pooled connections must be evicted or retried, never surfaced: {statuses:?}"
    );
    conserved(&proxy, 40);
    let pool = proxy.pool_stats().expect("sharded mode pools");
    let s = proxy.stats();
    // Every checked-in connection dies; each is caught either at checkout
    // (peek sees FIN => evicted) or mid-exchange (retry on a fresh one).
    assert!(
        pool.evicted_unhealthy + s.upstream_retries > 0,
        "the pool must notice dying origin connections: {pool:?} {s:?}"
    );
    proxy.stop();
    origin.stop();
}

#[test]
fn pool_sheds_poisoned_connections_under_parallel_load() {
    let origin = chatty_origin();
    let proxy = start_proxy(ProxyConfig::new(origin.addr)).unwrap();
    let statuses = hammer(proxy.addr(), 5);
    assert!(
        statuses.iter().all(|&s| s == 200),
        "poisoned framing must never corrupt a response: {statuses:?}"
    );
    conserved(&proxy, 40);
    let pool = proxy.pool_stats().expect("sharded mode pools");
    let s = proxy.stats();
    // Trailing garbage is caught as a dirty checkin (still buffered), an
    // unhealthy checkout (unsolicited bytes on the wire), or a failed
    // reuse that retries fresh — it must never be parsed as a response.
    assert!(
        pool.discarded_dirty + pool.evicted_unhealthy + s.upstream_retries > 0,
        "the pool must shed poisoned connections: {pool:?} {s:?}"
    );
    proxy.stop();
    origin.stop();
}

/// The adverse-network shim is a *schedule*, not a dice roll: the plan for
/// exchange `i` is a pure function of `(seed, i)`, so two conditioners
/// built from the same profile and seed agree on every failure decision
/// and every delay, and a different seed produces a different schedule.
#[test]
fn shim_schedule_is_seed_deterministic() {
    let profile = NetProfile::dsl().with_error_rate(0.3);
    let a = Conditioner::new(profile.clone(), 42);
    let b = Conditioner::new(profile.clone(), 42);
    let other = Conditioner::new(profile, 43);
    let mut any_differs = false;
    for i in 0..512u64 {
        let pa = a.plan_for(i);
        assert_eq!(pa, b.plan_for(i), "same seed must agree on exchange {i}");
        assert_eq!(a.up_delay(&pa, 700), b.up_delay(&pa, 700));
        assert_eq!(a.down_delay(&pa, 9000), b.down_delay(&pa, 9000));
        any_differs |= pa != other.plan_for(i);
    }
    assert!(
        any_differs,
        "a different seed must produce a different schedule"
    );
}

/// A proxy → shimmed volume center → live origin chain. The profile's time
/// constants are zeroed (`scaled(0.0)`) so these tests exercise the error
/// schedule, not the clock.
fn shimmed_stack(
    error_rate: f64,
) -> (
    piggyback::proxyd::origin::OriginHandle,
    piggyback::proxyd::volume_center::VolumeCenterHandle,
    ProxyHandle,
) {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let center = start_volume_center(VolumeCenterConfig {
        port: 0,
        origin: origin.addr(),
        volume_level: 1,
        shim: Some(ShimConfig {
            profile: NetProfile::lan().scaled(0.0).with_error_rate(error_rate),
            seed: 1,
        }),
        transparent: false,
    })
    .unwrap();
    let mut cfg = ProxyConfig::new(center.addr());
    cfg.rpv = None;
    cfg.report_hits = false;
    let proxy = start_proxy(cfg).unwrap();
    (origin, center, proxy)
}

/// error-rate 1.0 kills every exchange: the proxy's retry-once path runs
/// (and also dies), every client request surfaces as a 502, and both the
/// proxy ledger and the shim ledger account for every attempt.
#[test]
fn shim_error_rate_one_fails_every_exchange() {
    let (origin, center, proxy) = shimmed_stack(1.0);
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let n = 4u64;
    for i in 0..n {
        let resp = client.get(&format!("/shim/e{i}.html"), &[]).unwrap();
        assert_eq!(
            resp.status, 502,
            "a fully-adverse network must surface as 502"
        );
    }
    let s = proxy.stats();
    assert_eq!(s.upstream_errors, n);
    assert_eq!(
        s.upstream_retries, n,
        "every failure must have been retried once"
    );
    conserved(&proxy, n);
    let shim = center.shim_stats().expect("shimmed center reports stats");
    assert_eq!(
        shim.exchanges, 0,
        "nothing may pass through at error rate 1.0"
    );
    assert_eq!(
        shim.failures,
        2 * n,
        "both the first attempt and the retry must be killed"
    );
    proxy.stop();
    center.stop();
    origin.stop();
}

/// error-rate 0 with zeroed time constants is a transparent relay: every
/// request succeeds, the shim counts exactly one passed exchange per
/// upstream fetch, and injects no failures.
#[test]
fn shim_error_rate_zero_is_transparent() {
    let (origin, center, proxy) = shimmed_stack(0.0);
    let paths: Vec<String> = origin.paths.iter().take(5).cloned().collect();
    let report = run_sequence(proxy.addr(), &paths).unwrap();
    assert_eq!(report.ok, 5);
    assert_eq!(report.errors, 0);
    conserved(&proxy, 5);
    let shim = center.shim_stats().expect("shimmed center reports stats");
    assert_eq!(shim.failures, 0);
    assert_eq!(shim.exchanges, 5, "one shim exchange per upstream fetch");
    proxy.stop();
    center.stop();
    origin.stop();
}

/// A non-zero profile actually delays the exchange: one fetch through a
/// half-scale DSL profile must take at least the profile's RTT.
#[test]
fn shim_imposes_profile_latency() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let center = start_volume_center(VolumeCenterConfig {
        port: 0,
        origin: origin.addr(),
        volume_level: 1,
        shim: Some(ShimConfig {
            profile: NetProfile::dsl().scaled(0.5),
            seed: 7,
        }),
        transparent: false,
    })
    .unwrap();
    let mut cfg = ProxyConfig::new(center.addr());
    cfg.rpv = None;
    cfg.report_hits = false;
    let proxy = start_proxy(cfg).unwrap();
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let path = origin.paths[0].clone();
    let start = std::time::Instant::now();
    let resp = client.get(&path, &[]).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(resp.status, 200);
    // Half-scale DSL is a 20 ms RTT before jitter and serialization.
    assert!(
        elapsed >= Duration::from_millis(15),
        "shim must impose the profile's latency, got {elapsed:?}"
    );
    let shim = center.shim_stats().unwrap();
    assert!(shim.delay_us >= 15_000, "delay must be accounted: {shim:?}");
    proxy.stop();
    center.stop();
    origin.stop();
}

/// A stalled reader must cost the reactor a buffer, not a thread: with a
/// SINGLE reactor shard, a client that pipelines a burst of ~12 KiB
/// cached hits and then refuses to read anything would wedge the whole
/// proxy if response writes blocked. A second client proves the shard
/// keeps serving; the stalled client then drains byte-by-byte and must
/// receive every response intact.
#[cfg(target_os = "linux")]
#[test]
fn slow_reader_does_not_stall_reactor_shard() {
    use piggyback::proxyd::IoMode;
    const BODY_LEN: usize = 12 * 1024;
    const BURST: usize = 64;

    let origin = serve(0, "big-page", |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        loop {
            let req = match Request::read(&mut r) {
                Ok(q) => q,
                Err(_) => return,
            };
            let keep = req.keep_alive();
            let mut resp = Response::new(200);
            resp.headers
                .insert("Last-Modified", "Wed, 28 Jan 1998 00:00:00 GMT");
            resp.body = vec![b'x'; BODY_LEN].into();
            if resp.write(&mut w).is_err() || !keep {
                return;
            }
        }
    })
    .unwrap();

    let mut cfg = ProxyConfig::new(origin.addr);
    cfg.io = IoMode::Reactor { reactors: 1 };
    cfg.freshness = piggyback::core::types::DurationMs::from_secs(3600);
    cfg.rpv = None;
    cfg.report_hits = false;
    let proxy = start_proxy(cfg).unwrap();

    // Warm the page, then capture one cached-hit response verbatim — the
    // burst must come back as exactly this, BURST times over.
    let mut warm = HttpClient::connect(proxy.addr()).unwrap();
    assert_eq!(warm.get("/big.html", &[]).unwrap().status, 200);
    drop(warm);
    let req = b"GET /big.html HTTP/1.1\r\nHost: t\r\n\r\n";
    let one_hit = {
        let mut probe = std::net::TcpStream::connect(proxy.addr()).unwrap();
        probe.write_all(req).unwrap();
        let mut buf = vec![0u8; 64 * 1024];
        let mut filled = 0;
        loop {
            // One cached hit is Content-Length framed; read until the
            // header block plus BODY_LEN bytes have arrived.
            if let Some(p) = buf[..filled].windows(4).position(|w| w == b"\r\n\r\n") {
                if filled >= p + 4 + BODY_LEN {
                    buf.truncate(p + 4 + BODY_LEN);
                    break buf;
                }
            }
            let n = probe.read(&mut buf[filled..]).unwrap();
            assert!(n > 0, "proxy closed the probe");
            filled += n;
        }
    };

    // The slow client: fire the whole burst, then go silent.
    let mut slow = std::net::TcpStream::connect(proxy.addr()).unwrap();
    let mut burst = Vec::with_capacity(BURST * req.len());
    for _ in 0..BURST {
        burst.extend_from_slice(req);
    }
    slow.write_all(&burst).unwrap();

    // While the slow client stalls, the single shard must keep serving
    // other connections — if any response write blocked the reactor
    // thread, these would hang (the 10s read timeout turns that into a
    // failure instead of a wedged test run).
    let mut live = HttpClient::connect(proxy.addr()).unwrap();
    for i in 0..50 {
        let resp = live.get("/big.html", &[]).unwrap();
        assert_eq!(resp.status, 200, "concurrent request {i} during the stall");
        assert_eq!(resp.body.len(), BODY_LEN);
    }
    drop(live);

    // Drain: first at a trickle (1 byte per read, the pathological
    // partial-writer case), then in bulk. Every burst response must
    // arrive byte-identical to the probe's hit.
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let want = one_hit.len() * BURST;
    let mut got = Vec::with_capacity(want);
    let mut one = [0u8; 1];
    for _ in 0..4096 {
        assert_eq!(slow.read(&mut one).unwrap(), 1, "proxy closed mid-trickle");
        got.push(one[0]);
    }
    let mut chunk = [0u8; 16 * 1024];
    while got.len() < want {
        let n = slow.read(&mut chunk).unwrap();
        assert!(n > 0, "proxy closed before the burst was delivered");
        got.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(
        got.len(),
        want,
        "exactly BURST responses, no trailing bytes"
    );
    for (i, resp) in got.chunks(one_hit.len()).enumerate() {
        assert_eq!(resp, &one_hit[..], "burst response {i} corrupt");
    }

    let s = proxy.stats();
    assert_eq!(s.outcomes(), s.requests, "counters must conserve: {s:?}");
    assert_eq!(s.upstream_errors, 0, "{s:?}");
    proxy.stop();
    origin.stop();
}

/// An origin that consumes the request, then closes the connection
/// without answering — a clean mid-exchange kill after the proxy has
/// committed its request bytes.
fn accept_then_close_origin() -> piggyback::proxyd::util::ServerHandle {
    serve(0, "accept-close", |stream| {
        let mut r = BufReader::new(stream);
        let _ = Request::read(&mut r);
        // Drop: FIN after the request was read, before any response.
    })
    .unwrap()
}

/// ISSUE 9 satellite: an origin killed mid-exchange costs exactly one
/// retry on a fresh connection and then a 502 — identically in both
/// I/O modes (the reactor's nonblocking upstream state machine must
/// replicate the threaded pool's retry-once semantics).
fn origin_kill_run(io: piggyback::proxyd::IoMode) {
    let origin = accept_then_close_origin();
    let mut cfg = ProxyConfig::new(origin.addr);
    cfg.io = io;
    let proxy = start_proxy(cfg).unwrap();

    let n = 6u64;
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    for i in 0..n {
        let resp = client.get(&format!("/kill{i}.html"), &[]).unwrap();
        assert_eq!(resp.status, 502, "request {i}");
    }

    let s = proxy.stats();
    assert_eq!(s.upstream_errors, n, "{s:?}");
    assert_eq!(
        s.upstream_retries, n,
        "exactly one fresh-connection retry per killed exchange: {s:?}"
    );
    conserved(&proxy, n);
    proxy.stop();
    origin.stop();
}

#[test]
fn origin_killed_mid_exchange_retries_once_then_502_threaded() {
    origin_kill_run(piggyback::proxyd::IoMode::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn origin_killed_mid_exchange_retries_once_then_502_reactor() {
    origin_kill_run(piggyback::proxyd::IoMode::Reactor { reactors: 2 });
}

/// ISSUE 9 satellite: a stalled origin (accepts, reads the request,
/// never answers) must be reaped by the reactor's upstream timer wheel
/// under `--upstream-timeout-secs` — once on the first attempt, once on
/// the retry — and surface as a 502, with the per-shard timeout counter
/// visible on the metrics endpoint.
#[cfg(target_os = "linux")]
#[test]
fn stalled_origin_hits_reactor_upstream_timeout() {
    let origin = serve(0, "stalled", |stream| {
        let mut r = BufReader::new(stream);
        let _ = Request::read(&mut r);
        // Never answer; hold the socket long past the proxy's timeout.
        std::thread::sleep(Duration::from_secs(8));
    })
    .unwrap();

    let mut cfg = ProxyConfig::new(origin.addr);
    cfg.io = piggyback::proxyd::IoMode::Reactor { reactors: 1 };
    cfg.upstream_timeout = Duration::from_millis(300);
    let proxy = start_proxy(cfg).unwrap();

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let resp = client.get("/stall.html", &[]).unwrap();
    assert_eq!(resp.status, 502, "stalled origin must time out into a 502");

    let s = proxy.stats();
    assert_eq!(s.upstream_errors, 1, "{s:?}");
    assert_eq!(
        s.upstream_retries, 1,
        "one fresh-conn retry, also reaped: {s:?}"
    );
    conserved(&proxy, 1);

    let scrape = client.get(piggyback::proxyd::METRICS_PATH, &[]).unwrap();
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body.to_vec()).unwrap();
    let timeouts: u64 = text
        .lines()
        .filter(|l| l.starts_with("pb_proxy_reactor_upstream_timeouts_total{shard="))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(
        timeouts >= 2,
        "both the first attempt and the retry must be wheel-reaped:\n{text}"
    );
    proxy.stop();
    origin.stop();
}

#[test]
fn concurrent_load_with_failures_stays_consistent() {
    let origin = start_origin(OriginConfig::default()).unwrap();
    let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
    let paths: Vec<String> = origin.paths.iter().take(10).cloned().collect();

    let mut handles = Vec::new();
    for t in 0..6 {
        let addr = proxy.addr();
        let paths = paths.clone();
        handles.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            let mut client = HttpClient::connect(addr).unwrap();
            for i in 0..30 {
                let p = &paths[(t + i) % paths.len()];
                if let Ok(resp) = client.get(p, &[]) {
                    if resp.status == 200 {
                        ok += 1;
                    }
                }
            }
            ok
        }));
    }
    let total_ok: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total_ok, 6 * 30, "every request must succeed");
    let stats = proxy.stats();
    assert_eq!(stats.requests, 180);
    assert!(stats.fresh_hits > 0, "shared cache must absorb repeats");
    proxy.stop();
    origin.stop();
}

// ---------------------------------------------------------------------------
// Streaming relay faults (PROTOCOL.md §14)
// ---------------------------------------------------------------------------

/// An origin serving one large object fully — except for the request at
/// index `die_on`, which gets a complete head and a truncated body before
/// the connection drops.
fn big_origin_dying_mid_body(
    total: usize,
    die_on: usize,
) -> (piggyback::proxyd::util::ServerHandle, Arc<AtomicUsize>) {
    let counter = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&counter);
    let handle = serve(0, "big-dying-origin", move |stream| {
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        while Request::read(&mut r).is_ok() {
            let n = seen.fetch_add(1, Ordering::SeqCst);
            let body: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
            let head = format!(
                "HTTP/1.1 200 OK\r\nLast-Modified: Thu, 01 Jan 1998 00:00:00 GMT\r\n\
                 Content-Length: {total}\r\n\r\n"
            );
            if w.write_all(head.as_bytes()).is_err() {
                return;
            }
            if n == die_on {
                let _ = w.write_all(&body[..total / 3]);
                let _ = w.flush();
                return; // die mid-body
            }
            if w.write_all(&body).is_err() || w.flush().is_err() {
                return;
            }
        }
    })
    .unwrap();
    (handle, counter)
}

/// One fresh-connection GET, raw: returns the response head and however
/// many body bytes arrived before the connection closed.
fn raw_get(addr: SocketAddr, path: &str) -> (String, Vec<u8>) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw); // truncation closes mid-body
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head arrives intact")
        + 4;
    (
        String::from_utf8_lossy(&raw[..head_end]).to_string(),
        raw[head_end..].to_vec(),
    )
}

/// The origin dies mid-suffix during a prefix-hit relay. The head and
/// cached prefix are already on the client wire, so the proxy cannot
/// 502: it must truncate the client connection, count exactly one
/// terminal outcome, and keep the (still-valid) prefix — the next
/// request prefix-hits again and completes.
#[test]
fn origin_dies_mid_suffix_truncates_client_and_keeps_prefix() {
    const TOTAL: usize = 600 * 1024;
    let (origin, origin_requests) = big_origin_dying_mid_body(TOTAL, 1);
    let mut cfg = ProxyConfig::new(origin.addr);
    cfg.report_hits = false;
    cfg.rpv = None;
    let proxy = start_proxy(cfg).unwrap();
    let expect: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();

    // Miss: streamed through, the first 64 KiB retained as a prefix.
    let (head, body) = raw_get(proxy.addr(), "/big.bin");
    assert!(head.contains("X-Cache: MISS"), "{head}");
    assert_eq!(body, expect);

    // Prefix hit whose suffix refetch dies mid-body: the client gets the
    // promised head plus a truncated-but-clean body prefix, never a 502.
    let (head, body) = raw_get(proxy.addr(), "/big.bin");
    assert!(head.contains("X-Cache: PREFIX"), "{head}");
    assert!(head.contains(&format!("Content-Length: {TOTAL}")), "{head}");
    assert!(
        body.len() < TOTAL,
        "body must be truncated, got {}",
        body.len()
    );
    assert!(
        body.len() >= 64 * 1024,
        "the cached prefix was flushed before the fault"
    );
    assert_eq!(
        &body[..],
        &expect[..body.len()],
        "whatever arrived must be a clean prefix of the object"
    );

    // The prefix was not poisoned: with the origin healthy again, the
    // next request is a complete, byte-identical prefix hit.
    let (head, body) = raw_get(proxy.addr(), "/big.bin");
    assert!(head.contains("X-Cache: PREFIX"), "{head}");
    assert_eq!(body, expect);

    let s = proxy.stats();
    assert_eq!(s.requests, 3);
    assert_eq!(
        s.outcomes(),
        3,
        "exact conservation through the fault: {s:?}"
    );
    assert_eq!(s.streamed_misses, 1);
    assert_eq!(s.prefix_hits, 1, "only the clean repeat is a hit: {s:?}");
    assert_eq!(
        s.upstream_errors, 1,
        "mid-suffix death is one terminal error"
    );
    assert_eq!(origin_requests.load(Ordering::SeqCst), 3);
    proxy.stop();
    origin.stop();
}
