//! Property tests for the from-scratch HTTP/1.1 stack: arbitrary bytes
//! must never panic or hang the parser, and every serializable message
//! must round-trip exactly.

use piggyback::httpwire::{
    read_chunked, BodyReader, BodyWriter, ConnScratch, HeaderMap, Request, Response,
};
use proptest::prelude::*;
use std::io::BufReader;

fn arb_token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}".prop_map(|s| s)
}

fn arb_header_value() -> impl Strategy<Value = String> {
    // Printable ASCII without CR/LF, trimmed (serialization adds one SP).
    "[ -~]{0,60}".prop_map(|s| s.trim().to_owned())
}

fn arb_target() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_.-]{1,10}", 1..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// Feeding arbitrary bytes to the request parser returns Ok or Err —
    /// never panics, never loops forever.
    #[test]
    fn request_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Request::read(&mut BufReader::new(bytes.as_slice()));
    }

    /// Same for the response parser (both HEAD and GET framing).
    #[test]
    fn response_parser_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        head in any::<bool>(),
    ) {
        let _ = Response::read(&mut BufReader::new(bytes.as_slice()), head);
    }

    /// And the chunked decoder.
    #[test]
    fn chunked_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = read_chunked(&mut BufReader::new(bytes.as_slice()));
    }

    /// Serialized requests parse back to identical structures.
    #[test]
    fn request_round_trip(
        method in prop_oneof![Just("GET"), Just("POST"), Just("HEAD")],
        target in arb_target(),
        headers in proptest::collection::vec((arb_token(), arb_header_value()), 0..8),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut req = Request::new(method, &target);
        for (n, v) in &headers {
            // Skip names that collide with framing headers we compute.
            if n.eq_ignore_ascii_case("content-length")
                || n.eq_ignore_ascii_case("transfer-encoding") {
                continue;
            }
            req.headers.insert(n, v);
        }
        if method == "POST" {
            req.body = body.into();
        }
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let parsed = Request::read(&mut BufReader::new(wire.as_slice())).unwrap();
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(parsed.target, req.target);
        prop_assert_eq!(parsed.body, req.body);
        // Compare full per-name lists: `get` returns the first
        // case-insensitive match, so generated names that collide only in
        // case (e.g. "P" and "p") must be checked as ordered multisets.
        for (n, _) in req.headers.iter() {
            let sent: Vec<&str> = req.headers.get_all(n).collect();
            let got: Vec<&str> = parsed.headers.get_all(n).collect();
            prop_assert_eq!(got, sent, "header {} lost", n);
        }
    }

    /// Serialized responses parse back identically, across plain and
    /// chunked/trailer framing.
    #[test]
    fn response_round_trip(
        status in prop_oneof![Just(200u16), Just(204), Just(304), Just(404), Just(500)],
        body in proptest::collection::vec(any::<u8>(), 0..512),
        trailer in proptest::option::of(arb_header_value()),
    ) {
        let mut resp = Response::new(status);
        resp.headers.insert("Content-Type", "text/html");
        if !Response::bodiless_status(status) {
            resp.body = body.into();
        }
        if let Some(t) = &trailer {
            resp.trailers.insert("P-volume", t);
        }
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let parsed = Response::read(&mut BufReader::new(wire.as_slice()), false).unwrap();
        prop_assert_eq!(parsed.status, resp.status);
        if Response::bodiless_status(status) {
            prop_assert!(parsed.body.is_empty());
        } else {
            prop_assert_eq!(&parsed.body, &resp.body);
            if let Some(t) = &trailer {
                // Trailers only survive on body-bearing chunked responses.
                prop_assert_eq!(parsed.trailers.get("P-volume"), Some(t.as_str()));
            }
        }
    }

    /// Pipelined messages on one connection parse in order without
    /// consuming each other's bytes.
    #[test]
    fn pipelined_requests_parse_in_order(targets in proptest::collection::vec(arb_target(), 1..6)) {
        let mut wire = Vec::new();
        for t in &targets {
            Request::new("GET", t).write(&mut wire).unwrap();
        }
        let mut reader = BufReader::new(wire.as_slice());
        for t in &targets {
            let parsed = Request::read(&mut reader).unwrap();
            prop_assert_eq!(&parsed.target, t);
        }
        prop_assert!(Request::read(&mut reader).is_err(), "stream exhausted");
    }

    /// The scratch-threaded request serializer emits bytes identical to
    /// the seed serializer, including when the scratch is reused across
    /// messages (the steady-state shape on a keep-alive connection).
    #[test]
    fn request_write_with_is_byte_identical(
        method in prop_oneof![Just("GET"), Just("POST"), Just("HEAD")],
        target in arb_target(),
        headers in proptest::collection::vec((arb_token(), arb_header_value()), 0..8),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut req = Request::new(method, &target);
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length")
                || n.eq_ignore_ascii_case("transfer-encoding") {
                continue;
            }
            req.headers.insert(n, v);
        }
        if method == "POST" {
            req.body = body.into();
        }
        let mut seed = Vec::new();
        req.write(&mut seed).unwrap();
        let mut scratch = ConnScratch::new();
        for _ in 0..2 {
            let mut wire = Vec::new();
            req.write_with(&mut wire, &mut scratch).unwrap();
            prop_assert_eq!(&wire, &seed);
        }
    }

    /// Same for responses, across every framing the serializer can emit:
    /// identity (Content-Length), chunked via a Transfer-Encoding header,
    /// chunked via trailers, and bodiless statuses.
    #[test]
    fn response_write_with_is_byte_identical(
        status in prop_oneof![Just(200u16), Just(204), Just(304), Just(404), Just(500)],
        headers in proptest::collection::vec((arb_token(), arb_header_value()), 0..8),
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        chunked in any::<bool>(),
        trailer in proptest::option::of(arb_header_value()),
    ) {
        let mut resp = Response::new(status);
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length")
                || n.eq_ignore_ascii_case("transfer-encoding")
                || n.eq_ignore_ascii_case("trailer") {
                continue;
            }
            resp.headers.insert(n, v);
        }
        if chunked {
            resp.headers.insert("Transfer-Encoding", "chunked");
        }
        if !Response::bodiless_status(status) {
            resp.body = body.into();
        }
        if let Some(t) = &trailer {
            resp.trailers.insert("P-volume", t);
        }
        let mut seed = Vec::new();
        resp.write(&mut seed).unwrap();
        let mut scratch = ConnScratch::new();
        for _ in 0..2 {
            let mut wire = Vec::new();
            resp.write_with(&mut wire, &mut scratch).unwrap();
            prop_assert_eq!(&wire, &seed);
        }
    }

    /// Header values carrying CR or LF are rejected before they can reach
    /// either serializer — response splitting is impossible by
    /// construction on both wire paths.
    #[test]
    fn headers_reject_crlf_injection(
        name in arb_token(),
        prefix in "[ -~]{0,20}",
        evil in prop_oneof![Just('\r'), Just('\n')],
        suffix in "[ -~]{0,20}",
    ) {
        let value = format!("{prefix}{evil}{suffix}");
        let mut map = HeaderMap::new();
        prop_assert!(map.try_insert(&name, &value).is_err());
        prop_assert_eq!(map.len(), 0);
    }

    /// Header maps behave like case-insensitive multimaps under arbitrary
    /// insert/remove sequences.
    #[test]
    fn header_map_model(ops in proptest::collection::vec(
        (arb_token(), arb_header_value(), 0u8..3), 0..40)
    ) {
        let mut map = HeaderMap::new();
        let mut model: Vec<(String, String)> = Vec::new();
        for (name, value, op) in ops {
            match op {
                0 => {
                    if map.try_insert(&name, &value).is_ok() {
                        model.push((name.to_ascii_lowercase(), value.trim().to_owned()));
                    }
                }
                1 => {
                    map.remove(&name);
                    model.retain(|(n, _)| *n != name.to_ascii_lowercase());
                }
                _ => {
                    let got = map.get(&name);
                    let want = model
                        .iter()
                        .find(|(n, _)| *n == name.to_ascii_lowercase())
                        .map(|(_, v)| v.as_str());
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
    }

    /// The streaming body encoders are segmentation-transparent
    /// (PROTOCOL.md §14): however a body is cut into `push` segments,
    /// Content-Length framing emits exactly the body bytes, and chunked
    /// framing decodes back to them with trailers intact.
    #[test]
    fn segmented_body_writer_is_byte_identical(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(0usize..4097, 0..8),
    ) {
        let mut splits: Vec<usize> = cuts.iter().map(|&c| c.min(body.len())).collect();
        splits.push(body.len());
        splits.sort_unstable();
        splits.dedup();

        // Content-Length framing: the wire IS the body.
        let mut lw = BodyWriter::length(body.len());
        let mut wire = Vec::new();
        let mut prev = 0;
        for &cut in &splits {
            lw.push(&body[prev..cut], &mut wire).unwrap();
            prev = cut;
        }
        lw.finish(&HeaderMap::new(), &mut wire).unwrap();
        prop_assert_eq!(lw.written(), body.len());
        prop_assert_eq!(&wire, &body);

        // Chunked framing: any segmentation decodes back to the body.
        let mut cw = BodyWriter::chunked();
        let mut wire = Vec::new();
        let mut prev = 0;
        for &cut in &splits {
            cw.push(&body[prev..cut], &mut wire).unwrap();
            prev = cut;
        }
        let mut trailers = HeaderMap::new();
        trailers.insert("X-Probe", "v");
        cw.finish(&trailers, &mut wire).unwrap();
        let mut rd = BodyReader::chunked();
        let mut decoded = Vec::new();
        let consumed = rd.push(&wire, &mut decoded).unwrap();
        prop_assert_eq!(consumed, wire.len());
        prop_assert!(rd.is_done());
        prop_assert_eq!(&decoded, &body);
        prop_assert_eq!(rd.trailers().get("X-Probe"), Some("v"));
    }
}
