//! Cross-check the streaming metrics engine against a naive quadratic
//! reference implementation on small randomized traces.
//!
//! The reference works only for *static* volume providers (probability
//! volumes) with the plain filter and no RPV/pacing, where the piggyback
//! for every request is a pure function of the requested resource.

use piggyback::core::filter::ProxyFilter;
use piggyback::core::metrics::{replay, ReplayConfig, Request};
use piggyback::core::table::ResourceTable;
use piggyback::core::types::{ResourceId, SourceId, Timestamp};
use piggyback::core::volume::ProbabilityVolumes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

const T: u64 = 300_000; // ms
const C: u64 = 7_200_000;

/// Naive recomputation of predicted / update counters.
struct Reference {
    predicted: u64,
    prev_within_c: u64,
    prev_within_t: u64,
    updated_by_piggyback: u64,
    piggyback_messages: u64,
    piggybacked_elements: u64,
}

fn volume_elements(vols: &ProbabilityVolumes, r: ResourceId) -> Vec<ResourceId> {
    vols.volume(r)
        .iter()
        .map(|&(s, _)| s)
        .filter(|&s| s != r)
        .collect()
}

fn reference(requests: &[Request], vols: &ProbabilityVolumes) -> Reference {
    let mut out = Reference {
        predicted: 0,
        prev_within_c: 0,
        prev_within_t: 0,
        updated_by_piggyback: 0,
        piggyback_messages: 0,
        piggybacked_elements: 0,
    };
    for (i, req) in requests.iter().enumerate() {
        let t_i = req.time.as_millis();
        // Quadratic scan for a predicting piggyback: any earlier request
        // by the same source within T whose (static) piggyback contains
        // r_i. (Requests at the same instant are processed in order, so
        // strictly earlier index.)
        let predicted = requests[..i].iter().any(|prev| {
            prev.source == req.source
                && t_i - prev.time.as_millis() <= T
                && volume_elements(vols, prev.resource).contains(&req.resource)
        });
        if predicted {
            out.predicted += 1;
        }
        // Previous occurrence of the same resource by the same source.
        let prev_occ = requests[..i]
            .iter()
            .rev()
            .find(|p| p.source == req.source && p.resource == req.resource)
            .map(|p| p.time.as_millis());
        if let Some(tp) = prev_occ {
            let age = t_i - tp;
            if age <= C {
                out.prev_within_c += 1;
                if age <= T {
                    out.prev_within_t += 1;
                } else if predicted {
                    out.updated_by_piggyback += 1;
                }
            }
        }
        // Piggyback accounting.
        let elems = volume_elements(vols, req.resource);
        if !elems.is_empty() {
            out.piggyback_messages += 1;
            out.piggybacked_elements += elems.len() as u64;
        }
    }
    out
}

/// Random trace + random static volumes.
fn random_case(seed: u64) -> (Vec<Request>, ProbabilityVolumes, ResourceTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_resources = rng.random_range(3..12u32);
    let n_sources = rng.random_range(1..4u32);
    let n_requests = rng.random_range(20..120usize);

    let mut table = ResourceTable::new();
    for i in 0..n_resources {
        table.register_path(&format!("/r{i}"), 100, Timestamp::ZERO);
    }

    // Random implication lists.
    let mut impls: HashMap<ResourceId, Vec<(ResourceId, f32)>> = HashMap::new();
    for r in 0..n_resources {
        if rng.random::<f64>() < 0.7 {
            let mut list = Vec::new();
            for s in 0..n_resources {
                if s != r && rng.random::<f64>() < 0.3 {
                    list.push((ResourceId(s), rng.random::<f32>()));
                }
            }
            if !list.is_empty() {
                impls.insert(ResourceId(r), list);
            }
        }
    }
    let vols = ProbabilityVolumes::from_implications(0.0, impls);

    let mut t = 0u64;
    let mut requests = Vec::with_capacity(n_requests);
    for _ in 0..n_requests {
        t += rng.random_range(0..400_000u64); // gaps up to ~6.7 min straddle T
        requests.push(Request {
            time: Timestamp::from_millis(t),
            source: SourceId(rng.random_range(0..n_sources)),
            resource: ResourceId(rng.random_range(0..n_resources)),
        });
    }
    (requests, vols, table)
}

#[test]
fn engine_matches_reference_on_random_traces() {
    for seed in 0..40u64 {
        let (requests, vols, mut table) = random_case(seed);
        let expected = reference(&requests, &vols);
        let mut provider = vols.clone();
        let report = replay(
            requests.iter().copied(),
            &mut table,
            &mut provider,
            &ReplayConfig {
                base_filter: ProxyFilter::default(),
                ..Default::default()
            },
        );
        assert_eq!(report.requests, requests.len() as u64, "seed {seed}");
        assert_eq!(
            report.predicted, expected.predicted,
            "predicted, seed {seed}"
        );
        assert_eq!(
            report.prev_within_c, expected.prev_within_c,
            "prev_within_c, seed {seed}"
        );
        assert_eq!(
            report.prev_within_t, expected.prev_within_t,
            "prev_within_t, seed {seed}"
        );
        assert_eq!(
            report.updated_by_piggyback, expected.updated_by_piggyback,
            "updated, seed {seed}"
        );
        assert_eq!(
            report.piggyback_messages, expected.piggyback_messages,
            "messages, seed {seed}"
        );
        assert_eq!(
            report.piggybacked_elements, expected.piggybacked_elements,
            "elements, seed {seed}"
        );
        // True predictions can't exceed events, and both are bounded by
        // elements sent.
        assert!(report.true_predictions <= report.prediction_events);
        assert!(report.prediction_events <= report.piggybacked_elements.max(1));
    }
}

#[test]
fn prediction_event_semantics_spotcheck() {
    // One source, volume: a -> {b}. Requests: a, a (within T), b.
    // Two piggybacks of b within one interval => ONE prediction event,
    // fulfilled by the request for b.
    let mut impls = HashMap::new();
    impls.insert(ResourceId(0), vec![(ResourceId(1), 0.9f32)]);
    let vols = ProbabilityVolumes::from_implications(0.0, impls);
    let mut table = ResourceTable::new();
    table.register_path("/a", 1, Timestamp::ZERO);
    table.register_path("/b", 1, Timestamp::ZERO);

    let requests = vec![
        Request {
            time: Timestamp::from_secs(0),
            source: SourceId(1),
            resource: ResourceId(0),
        },
        Request {
            time: Timestamp::from_secs(10),
            source: SourceId(1),
            resource: ResourceId(0),
        },
        Request {
            time: Timestamp::from_secs(20),
            source: SourceId(1),
            resource: ResourceId(1),
        },
    ];
    let mut provider = vols.clone();
    let report = replay(
        requests,
        &mut table,
        &mut provider,
        &ReplayConfig::default(),
    );
    assert_eq!(report.prediction_events, 1);
    assert_eq!(report.true_predictions, 1);
    assert_eq!(report.predicted, 1, "the request for b was predicted");
}
