//! End-to-end scrape of the `/__pb/metrics` admin endpoint under
//! concurrent load.
//!
//! M client threads hammer an origin ↔ proxy chain over loopback TCP
//! while a scraper thread polls the Prometheus endpoint the whole time
//! (the endpoint takes no cache/table lock, so concurrent scrapes must
//! never wedge or be wedged by traffic). Once quiescent, the suite checks
//! the stats conservation invariant *from the scraped text alone*:
//!
//! ```text
//! pb_proxy_requests_total == Σ pb_proxy_outcome_requests_total{outcome=*}
//!                         == Σ pb_proxy_request_duration_seconds_count{outcome=*}
//! ```

use piggyback::core::types::DurationMs;
use piggyback::proxyd::client::HttpClient;
use piggyback::proxyd::origin::{start_origin, OriginConfig};
use piggyback::proxyd::proxy::{start_proxy, ConcurrencyMode, ProxyConfig};
use piggyback::proxyd::METRICS_PATH;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 25;

/// Abort (don't hang CI) if the scenario deadlocks.
fn watchdog(limit: Duration) -> Arc<AtomicBool> {
    let done = Arc::new(AtomicBool::new(false));
    let done2 = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < limit {
            std::thread::sleep(Duration::from_millis(100));
            if done2.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: metrics scenario exceeded {limit:?} — deadlock?");
        std::process::exit(101);
    });
    done
}

fn scrape(addr: SocketAddr) -> String {
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client.get(METRICS_PATH, &[]).unwrap();
    assert_eq!(resp.status, 200, "metrics scrape failed");
    assert_eq!(
        resp.headers.get("Content-Type"),
        Some("text/plain; version=0.0.4")
    );
    String::from_utf8(resp.body.to_vec()).expect("exposition is UTF-8")
}

/// The value of the unique sample named exactly `name` (no labels).
fn sample(text: &str, name: &str) -> u64 {
    let line = text
        .lines()
        .find(|l| l.split(' ').next() == Some(name))
        .unwrap_or_else(|| panic!("no sample {name} in:\n{text}"));
    line.rsplit(' ').next().unwrap().parse().unwrap()
}

/// Sum of every sample whose name+labels start with `prefix`.
fn sample_sum(text: &str, prefix: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(prefix) && !l.starts_with("# "))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

#[test]
fn scraped_metrics_conserve_under_concurrency() {
    let done = watchdog(Duration::from_secs(120));
    let origin = start_origin(OriginConfig::default()).unwrap();
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.mode = ConcurrencyMode::Sharded { shards: 8 };
    // Short Δ so the workload mixes fresh hits, validations, and fetches.
    cfg.freshness = DurationMs::from_millis(50);
    cfg.serve.workers = 64;
    let proxy = start_proxy(cfg).unwrap();
    let paths: Vec<String> = origin.paths.clone();

    // Drive load while a scraper polls the endpoint concurrently. Every
    // mid-flight scrape must parse and stay internally monotone; the
    // endpoint must never deadlock against traffic.
    let stop_scraper = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let scraper = {
            let stop = Arc::clone(&stop_scraper);
            let addr = proxy.addr();
            s.spawn(move || {
                let mut scrapes = 0u64;
                let mut last_requests = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let text = scrape(addr);
                    let requests = sample(&text, "pb_proxy_requests_total");
                    assert!(
                        requests >= last_requests,
                        "request counter went backwards: {requests} < {last_requests}"
                    );
                    last_requests = requests;
                    scrapes += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                scrapes
            })
        };
        for t in 0..CLIENTS {
            let paths = &paths;
            let addr = proxy.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..PER_CLIENT {
                    let path = &paths[(t * 7 + i) % paths.len()];
                    let resp = client.get(path, &[]).unwrap();
                    assert_eq!(resp.status, 200, "client {t} req {i} ({path})");
                    if i % 5 == 4 {
                        std::thread::sleep(Duration::from_millis(3));
                    }
                }
            });
        }
        // A monitor stops the scraper once every client request is
        // visible in the scraped counter (scoped threads join on exit,
        // so the scraper must be told to finish).
        s.spawn({
            let stop = Arc::clone(&stop_scraper);
            let addr = proxy.addr();
            let expected = (CLIENTS * PER_CLIENT) as u64;
            move || {
                // Poll until all client requests are visible, then stop
                // the scraper.
                loop {
                    let text = scrape(addr);
                    if sample(&text, "pb_proxy_requests_total") >= expected {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                stop.store(true, Ordering::SeqCst);
            }
        });
        let scrapes = scraper.join().unwrap();
        assert!(scrapes > 0, "scraper never ran");
    });

    // Quiescent: conservation must be checkable from the scrape alone.
    let text = scrape(proxy.addr());
    let requests = sample(&text, "pb_proxy_requests_total");
    assert_eq!(requests, (CLIENTS * PER_CLIENT) as u64);
    let outcome_sum = sample_sum(&text, "pb_proxy_outcome_requests_total{");
    assert_eq!(
        outcome_sum, requests,
        "scraped outcome counters must conserve requests:\n{text}"
    );
    let histogram_sum = sample_sum(&text, "pb_proxy_request_duration_seconds_count");
    assert_eq!(
        histogram_sum, requests,
        "per-outcome histogram totals must equal the request count:\n{text}"
    );
    // Scrapes themselves never entered the ledger.
    assert_eq!(sample(&text, "pb_proxy_requests_total"), requests);

    // Cross-check against the in-process accessors the tests always had.
    let stats = proxy.stats();
    assert_eq!(stats.requests, requests);
    assert_eq!(stats.outcomes(), outcome_sum);

    // Shard occupancy gauges are present and account for cached bytes.
    let shard_bytes = sample_sum(&text, "pb_proxy_cache_shard_bytes{");
    assert!(shard_bytes > 0, "cache must hold bytes after the run");
    assert!(shard_bytes <= sample(&text, "pb_proxy_cache_capacity_bytes"));

    proxy.stop();
    origin.stop();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn origin_metrics_balance_their_own_ledger() {
    let done = watchdog(Duration::from_secs(60));
    let origin = start_origin(OriginConfig::default()).unwrap();
    let paths: Vec<String> = origin.paths.clone();
    std::thread::scope(|s| {
        for t in 0..4 {
            let paths = &paths;
            let addr = origin.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..20 {
                    let path = &paths[(t * 5 + i) % paths.len()];
                    assert_eq!(client.get(path, &[]).unwrap().status, 200);
                }
            });
        }
    });
    let text = scrape(origin.addr());
    let requests = sample(&text, "pb_origin_requests_total");
    assert_eq!(requests, 80, "scrapes stay out of the ledger:\n{text}");
    let responses = sample_sum(&text, "pb_origin_responses_total{");
    assert_eq!(responses, requests, "every request answered:\n{text}");
    let histogram_sum = sample_sum(&text, "pb_origin_response_duration_seconds_count");
    assert_eq!(histogram_sum, requests, "{text}");
    origin.stop();
    done.store(true, Ordering::SeqCst);
}
