//! Property-based tests (proptest) on the core invariants: header
//! round-trips, chunked-coding round-trips, filter semantics, RPV
//! soundness, cache capacity, and probability bounds.

use piggyback::core::element::{PiggybackElement, PiggybackMessage, WireCost};
use piggyback::core::filter::ProxyFilter;
use piggyback::core::rpv::RpvList;
use piggyback::core::table::ResourceTable;
use piggyback::core::types::{
    ContentType, ContentTypeSet, DurationMs, ResourceId, SourceId, Timestamp, VolumeId,
};
use piggyback::core::volume::{
    DirectoryVolumes, ProbabilityVolumesBuilder, SamplingMode, VolumeProvider,
};
use piggyback::core::wire::{decode_p_volume, encode_p_volume};
use piggyback::httpwire::{read_chunked, write_chunked, HeaderMap};
use piggyback::webcache::{Cache, CacheEntry, PolicyKind};
use proptest::prelude::*;
use std::io::BufReader;

fn arb_content_types() -> impl Strategy<Value = Option<ContentTypeSet>> {
    proptest::option::of(
        proptest::collection::vec(0usize..5, 1..5)
            .prop_map(|idx| ContentTypeSet::new(idx.into_iter().map(|i| ContentType::ALL[i]))),
    )
}

fn arb_filter() -> impl Strategy<Value = ProxyFilter> {
    (
        any::<bool>(),
        proptest::option::of(0u32..1000),
        proptest::collection::vec(0u32..100_000, 0..8),
        proptest::option::of(0u64..1_000_000),
        proptest::option::of(0u32..=100),
        proptest::option::of(0u64..10_000_000),
        arb_content_types(),
    )
        .prop_map(
            |(enabled, max_piggy, rpv, minacc, pt, maxsize, types)| ProxyFilter {
                enabled,
                max_piggy,
                rpv: rpv.into_iter().map(VolumeId).collect(),
                min_access_count: minacc,
                prob_threshold: pt.map(|p| p as f64 / 100.0),
                max_size: maxsize,
                content_types: types,
            },
        )
}

proptest! {
    /// Piggy-filter header values round-trip through format + parse.
    /// (A disabled filter serializes as just "off", dropping other fields
    /// — the server must not piggyback at all — so compare semantics.)
    #[test]
    fn filter_header_round_trip(f in arb_filter()) {
        let header = f.to_header_value();
        let parsed = ProxyFilter::parse(&header).unwrap();
        if f.enabled {
            prop_assert_eq!(parsed, f);
        } else {
            prop_assert!(!parsed.enabled);
        }
    }

    /// Chunked transfer-coding round-trips arbitrary bodies and trailer
    /// values at arbitrary chunk sizes.
    #[test]
    fn chunked_round_trip(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk_size in 1usize..2048,
        trailer_value in "[ -~]{0,100}",
    ) {
        let mut trailers = HeaderMap::new();
        trailers.try_insert("P-volume", trailer_value.trim()).ok();
        let mut wire = Vec::new();
        write_chunked(&mut wire, &body, &trailers, chunk_size).unwrap();
        let (got_body, got_trailers) = read_chunked(&mut BufReader::new(wire.as_slice())).unwrap();
        prop_assert_eq!(got_body, body);
        if let Some(v) = trailers.get("P-volume") {
            prop_assert_eq!(got_trailers.get("P-volume"), Some(v));
        }
    }

    /// P-volume wire encoding round-trips arbitrary messages.
    #[test]
    fn p_volume_round_trip(
        vol in 0u32..100_000,
        elems in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000_000), 0..20),
    ) {
        let mut table = ResourceTable::new();
        let mut msg = PiggybackMessage::new(VolumeId(vol));
        for (i, &(size, lm)) in elems.iter().enumerate() {
            let id = table.register_path(
                &format!("/dir{}/res{i}.html", i % 3),
                size,
                Timestamp::from_secs(lm),
            );
            msg.elements.push(PiggybackElement {
                resource: id,
                size,
                last_modified: Timestamp::from_secs(lm),
            });
        }
        let encoded = encode_p_volume(&msg, &table).unwrap();
        let wire = decode_p_volume(&encoded).unwrap();
        prop_assert_eq!(wire.volume, VolumeId(vol));
        prop_assert_eq!(wire.elements.len(), msg.elements.len());
        for (w, e) in wire.elements.iter().zip(&msg.elements) {
            prop_assert_eq!(w.size, e.size);
            prop_assert_eq!(w.last_modified, e.last_modified);
            prop_assert_eq!(Some(w.path.as_str()), table.path(e.resource));
        }
    }

    /// Every element of a directory-volume piggyback satisfies the filter:
    /// admitted by content constraints, within the cap, never the
    /// requested resource, and the volume not RPV-suppressed.
    #[test]
    fn piggyback_elements_satisfy_filter(
        f in arb_filter(),
        accesses in proptest::collection::vec((0u32..30, 0u32..4), 1..120),
    ) {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(1);
        for i in 0..30u32 {
            let path = format!("/d{}/r{i}.{}", i % 5, if i % 3 == 0 { "html" } else { "gif" });
            let id = table.register_path(&path, 100 + 50_000 * (i as u64 % 4), Timestamp::ZERO);
            vols.assign(id, &path);
        }
        for (step, &(r, src)) in accesses.iter().enumerate() {
            let id = ResourceId(r);
            table.count_access(id);
            vols.record_access(id, SourceId(src), Timestamp::from_secs(step as u64), &table);
        }

        let now = Timestamp::from_secs(accesses.len() as u64 + 1);
        for r in 0..30u32 {
            let requested = ResourceId(r);
            if let Some(msg) = vols.piggyback(requested, &f, now, &table) {
                prop_assert!(f.enabled, "disabled filter must yield no piggyback");
                prop_assert!(!f.rpv.contains(&msg.volume), "RPV-suppressed volume piggybacked");
                prop_assert!(msg.len() <= f.cap());
                prop_assert!(!msg.is_empty());
                for e in &msg.elements {
                    prop_assert_ne!(e.resource, requested, "self in piggyback");
                    let meta = table.meta(e.resource).unwrap();
                    prop_assert!(f.admits(meta), "element violates content filter");
                    prop_assert_eq!(
                        vols.volume_of(e.resource),
                        vols.volume_of(requested),
                        "element outside the requested volume"
                    );
                }
            }
        }
    }

    /// RPV lists never exceed their bound, never contain expired entries,
    /// and always contain the most recently recorded volume.
    #[test]
    fn rpv_invariants(
        ops in proptest::collection::vec((0u32..12, 0u64..10_000), 1..200),
        max_len in 1usize..10,
        timeout_s in 1u64..500,
    ) {
        let mut list = RpvList::new(max_len, DurationMs::from_secs(timeout_s));
        let mut t = 0u64;
        for &(vol, dt) in &ops {
            t += dt;
            let now = Timestamp::from_secs(t);
            list.record(VolumeId(vol), now);
            let ids = list.filter_ids(now);
            prop_assert!(ids.len() <= max_len);
            prop_assert_eq!(*ids.last().unwrap(), VolumeId(vol), "most recent at back");
            // No duplicates.
            let mut sorted: Vec<u32> = ids.iter().map(|v| v.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ids.len(), "duplicate volume in RPV");
        }
    }

    /// The cache never exceeds capacity, never loses byte accounting, and
    /// oversized objects bypass it, under arbitrary op sequences and every
    /// replacement policy.
    #[test]
    fn cache_never_exceeds_capacity(
        ops in proptest::collection::vec((0u32..50, 1u64..4000, 0u8..3), 1..300),
        capacity in 1000u64..10_000,
        policy_idx in 0usize..3,
    ) {
        let policy = [PolicyKind::Lru, PolicyKind::GdSize, PolicyKind::PiggybackAware][policy_idx];
        let mut cache = Cache::new(capacity, policy.build());
        for (step, &(r, size, op)) in ops.iter().enumerate() {
            let now = Timestamp::from_secs(step as u64);
            let id = ResourceId(r);
            match op {
                0 => {
                    cache.insert(id, CacheEntry {
                        size,
                        last_modified: Timestamp::ZERO,
                        expires: now + DurationMs::from_secs(60),
                        prefetched: false,
                        used: false,
                    }, now);
                }
                1 => { cache.lookup(id, now); }
                _ => { cache.remove(id); }
            }
            prop_assert!(cache.used_bytes() <= cache.capacity());
            let total: u64 = cache.iter().map(|(_, e)| e.size).sum();
            prop_assert_eq!(total, cache.used_bytes(), "byte accounting drift");
        }
    }

    /// Probability estimates from the builder are always within [0, 1],
    /// and build(p_t) only keeps implications with p >= p_t.
    #[test]
    fn probability_bounds(
        reqs in proptest::collection::vec((0u32..8, 0u32..3, 0u64..100), 2..200),
        pt in 1u32..=100,
    ) {
        let pt = pt as f64 / 100.0;
        let mut builder = ProbabilityVolumesBuilder::new(
            DurationMs::from_secs(300), 0.01, SamplingMode::Exact);
        let mut t = 0u64;
        for &(r, src, dt) in &reqs {
            t += dt;
            builder.observe(SourceId(src), ResourceId(r), Timestamp::from_secs(t));
        }
        for r in 0..8u32 {
            for s in 0..8u32 {
                if let Some(p) = builder.probability(ResourceId(r), ResourceId(s)) {
                    prop_assert!((0.0..=1.0).contains(&p), "p({s}|{r}) = {p}");
                }
            }
        }
        let vols = builder.build(pt);
        for (r, s, p) in vols.iter() {
            // Membership is decided on exact f64 ratios; the stored f32 may
            // round a hair below the threshold.
            prop_assert!(p as f64 >= pt - 1e-6, "kept implication below threshold: {p} < {pt}");
            prop_assert!(p <= 1.0);
            let _ = (r, s);
        }
    }

    /// Wire-cost accounting is internally consistent.
    #[test]
    fn wire_cost_consistency(n in 0usize..500, spare in 0u64..2000, mss in 1u64..3000) {
        let cost = WireCost::default();
        let bytes = cost.message_bytes(n);
        prop_assert_eq!(bytes, cost.volume_id_bytes + cost.element_bytes() * n as u64);
        let pkts = cost.extra_packets(n, spare, mss);
        if bytes <= spare {
            prop_assert_eq!(pkts, 0);
        } else {
            prop_assert!(pkts >= 1);
            prop_assert!(pkts * mss >= bytes - spare);
        }
    }
}
