//! Property tests over the recorded-traffic inventory format
//! (PROTOCOL.md §11): serialize → parse round-trips every field exactly —
//! CRLF-bearing bodies, piggyback payloads, leading-space header values —
//! and the per-entry body hash rejects corruption instead of replaying it.

use piggyback::trace::inventory::{Inventory, InventoryError};
use piggyback::trace::record::{body_hash, RecordedExchange};
use proptest::prelude::*;

/// Header names never contain spaces or colons; values are arbitrary
/// printable ASCII, including leading/trailing spaces (the format writes
/// `Name: value` and strips exactly one space after the colon on parse).
fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,11}", "[ -~]{0,24}"), 0..5)
}

fn arb_entry() -> impl Strategy<Value = RecordedExchange> {
    (
        (
            prop_oneof![Just("GET"), Just("POST"), Just("HEAD")],
            "/[a-zA-Z0-9_./-]{0,24}",
            100u16..600,
            any::<bool>(),
        ),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        arb_headers(),
        arb_headers(),
        proptest::option::of("[ -~]{0,40}"),
        proptest::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(
            |((method, path, status, chunked), times, reqh, resph, piggyback, body)| {
                RecordedExchange {
                    seq: 0, // assigned by the caller
                    method: method.to_owned(),
                    path,
                    status,
                    chunked,
                    start_us: times.0 as u64,
                    ttfb_us: times.1 as u64,
                    transfer_us: times.2 as u64,
                    request_headers: reqh,
                    response_headers: resph,
                    piggyback,
                    body,
                }
            },
        )
}

proptest! {
    /// The core law: `parse(to_text(inv)) == inv` for arbitrary
    /// inventories, and rendering is a fixed point of the round trip.
    #[test]
    fn inventory_round_trips_exactly(
        name in "[a-z0-9_-]{1,16}",
        mut entries in proptest::collection::vec(arb_entry(), 0..8),
    ) {
        for (i, e) in entries.iter_mut().enumerate() {
            e.seq = i as u32;
        }
        let inv = Inventory { name, entries };
        let text = inv.to_text();
        let parsed = Inventory::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &inv);
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// Bodies full of CRLF runs and HTTP framing bytes — the worst case
    /// for a line-oriented container — survive byte-for-byte.
    #[test]
    fn crlf_bodies_survive(extra in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut body =
            b"0\r\n\r\nHTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        body.extend(extra);
        let mut inv = Inventory::new("crlf");
        inv.entries
            .push(RecordedExchange::new(0, "GET", "/x", 200, body.clone()));
        let parsed = Inventory::parse(&inv.to_text()).unwrap();
        prop_assert_eq!(parsed.entries[0].body.clone(), body);
    }

    /// Flipping any bit of a stored body while keeping the recorded hash
    /// is detected as a `HashMismatch`, never silently replayed.
    #[test]
    fn corrupted_bodies_are_rejected(
        body in proptest::collection::vec(any::<u8>(), 1..100),
        at in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut mutated = body.clone();
        let i = at % mutated.len();
        mutated[i] ^= 1 << bit;
        prop_assume!(body_hash(&mutated) != body_hash(&body));

        let mut forged_inv = Inventory::new("forged");
        forged_inv
            .entries
            .push(RecordedExchange::new(0, "GET", "/x", 200, mutated.clone()));
        // Splice the original (now wrong) hash over the mutated body's.
        let forged = forged_inv.to_text().replacen(
            &format!("hash {:016x}", body_hash(&mutated)),
            &format!("hash {:016x}", body_hash(&body)),
            1,
        );
        prop_assert!(matches!(
            Inventory::parse(&forged),
            Err(InventoryError::HashMismatch { seq: 0, .. })
        ));
    }

    /// `paths()` lists each recorded path once, in first-appearance order.
    #[test]
    fn paths_are_deduped_in_order(
        mut entries in proptest::collection::vec(arb_entry(), 1..12),
    ) {
        for (i, e) in entries.iter_mut().enumerate() {
            e.seq = i as u32;
        }
        let inv = Inventory { name: "p".into(), entries };
        let paths = inv.paths();
        let mut expected = Vec::new();
        for e in &inv.entries {
            if !expected.contains(&e.path) {
                expected.push(e.path.clone());
            }
        }
        prop_assert_eq!(paths, expected);
    }
}
