//! Directional assertions over miniature versions of the paper's
//! experiments — the claims that define the reproduction's "shape", at a
//! scale small enough for the regular test suite.

use piggyback::core::filter::ProxyFilter;
use piggyback::core::metrics::{replay, ReplayConfig, RpvConfig};
use piggyback::core::types::DurationMs;
use piggyback::core::volume::effective::thin_with_trace;
use piggyback::core::volume::{
    DirectoryVolumes, ProbabilityVolumesBuilder, SamplingMode, VolumeProvider,
};
use piggyback::trace::profiles;
use piggyback::trace::ServerLog;

fn tiny(name: &str) -> ServerLog {
    match name {
        "aiusa" => profiles::aiusa(0.05).generate(),
        "sun" => profiles::sun(0.001).generate(),
        "marimba" => profiles::marimba(0.05).generate(),
        _ => unreachable!(),
    }
}

fn dir_replay(
    log: &ServerLog,
    level: usize,
    filter: ProxyFilter,
    rpv: Option<u64>,
) -> piggyback::core::metrics::MetricsReport {
    let mut table = log.table.clone();
    for e in &log.entries {
        table.count_access(e.resource);
    }
    let mut vols = DirectoryVolumes::new(level);
    for (id, path, _) in table.iter() {
        vols.assign(id, path);
    }
    let cfg = ReplayConfig {
        base_filter: filter,
        rpv: rpv.map(|s| RpvConfig {
            max_len: 64,
            timeout: DurationMs::from_secs(s),
        }),
        ..Default::default()
    };
    replay(log.requests(), &mut table, &mut vols, &cfg)
}

/// Figure 2: deeper prefixes and stronger access filters shrink piggybacks.
#[test]
fn deeper_levels_and_filters_shrink_piggybacks() {
    let log = tiny("aiusa");
    let base = ProxyFilter::builder().max_piggy(200).build();
    let l0 = dir_replay(&log, 0, base.clone(), None);
    let l2 = dir_replay(&log, 2, base, None);
    assert!(
        l2.avg_piggyback_size() < l0.avg_piggyback_size(),
        "level-2 {} !< level-0 {}",
        l2.avg_piggyback_size(),
        l0.avg_piggyback_size()
    );

    let filtered = ProxyFilter::builder()
        .max_piggy(200)
        .min_access_count(50)
        .build();
    let l0f = dir_replay(&log, 0, filtered, None);
    assert!(l0f.avg_piggyback_size() < l0.avg_piggyback_size());
}

/// Figure 4: RPV pacing slashes piggyback traffic with little recall loss.
#[test]
fn rpv_reduces_traffic_not_recall() {
    let log = tiny("aiusa");
    let base = ProxyFilter::builder().max_piggy(200).build();
    let unpaced = dir_replay(&log, 1, base.clone(), None);
    let paced = dir_replay(&log, 1, base, Some(30));
    assert!(
        (paced.piggyback_messages as f64) < 0.8 * unpaced.piggyback_messages as f64,
        "paced {} vs unpaced {}",
        paced.piggyback_messages,
        unpaced.piggyback_messages
    );
    assert!(
        paced.fraction_predicted() > 0.6 * unpaced.fraction_predicted(),
        "recall collapsed: {} vs {}",
        paced.fraction_predicted(),
        unpaced.fraction_predicted()
    );
}

/// Figures 6–7: probability volumes beat directory volumes on piggyback
/// size at comparable recall, and thinning raises precision.
#[test]
fn probability_volumes_are_smaller_and_thinning_raises_precision() {
    let log = tiny("aiusa");
    let mut builder =
        ProbabilityVolumesBuilder::new(DurationMs::from_secs(300), 0.05, SamplingMode::Exact);
    for (t, src, r) in log.triples() {
        builder.observe(src, r, t);
    }
    let base = builder.build(0.2);
    let thinned = thin_with_trace(&base, DurationMs::from_secs(300), log.triples(), 0.2);

    let run = |vols: &piggyback::core::volume::ProbabilityVolumes| {
        let mut table = log.table.clone();
        for e in &log.entries {
            table.count_access(e.resource);
        }
        let mut v = vols.clone();
        replay(log.requests(), &mut table, &mut v, &ReplayConfig::default())
    };
    let base_report = run(&base);
    let thin_report = run(&thinned);

    // Directory level-0 for comparison.
    let dir_report = dir_replay(&log, 0, ProxyFilter::builder().max_piggy(200).build(), None);
    assert!(
        base_report.avg_piggyback_size() < dir_report.avg_piggyback_size(),
        "probability {} !< directory {}",
        base_report.avg_piggyback_size(),
        dir_report.avg_piggyback_size()
    );
    assert!(
        thin_report.true_prediction_fraction() >= base_report.true_prediction_fraction(),
        "thinning must not lower precision: {} vs {}",
        thin_report.true_prediction_fraction(),
        base_report.true_prediction_fraction()
    );
    assert!(thin_report.avg_piggyback_size() <= base_report.avg_piggyback_size());
}

/// Appendix A: Marimba's prediction probabilities collapse relative to a
/// structured site at equal settings.
#[test]
fn marimba_predicts_poorly() {
    let marimba = tiny("marimba");
    let aiusa = tiny("aiusa");
    let m = dir_replay(&marimba, 0, ProxyFilter::default(), None);
    let a = dir_replay(&aiusa, 0, ProxyFilter::default(), None);
    // Marimba has no bursty page+images structure and near-uniform access:
    // per-source short-horizon predictability is far below AIUSA's.
    assert!(
        m.fraction_predicted() < a.fraction_predicted(),
        "marimba {} !< aiusa {}",
        m.fraction_predicted(),
        a.fraction_predicted()
    );
}

/// Section 3.3.1 online estimation: an online provider converges to the
/// offline build of the same trace.
#[test]
fn online_volumes_converge_to_offline() {
    use piggyback::core::volume::OnlineProbabilityVolumes;
    let log = tiny("aiusa");

    // Offline reference.
    let mut offline =
        ProbabilityVolumesBuilder::new(DurationMs::from_secs(300), 0.2, SamplingMode::Exact);
    for (t, src, r) in log.triples() {
        offline.observe(src, r, t);
    }
    let offline_vols = offline.build(0.2);

    // Online provider fed the same trace through the metrics engine.
    let mut table = log.table.clone();
    let mut online =
        OnlineProbabilityVolumes::new(DurationMs::from_secs(300), 0.2, SamplingMode::Exact, 2_000);
    let _ = replay(
        log.requests(),
        &mut table,
        &mut online,
        &ReplayConfig::default(),
    );
    online.rebuild_now();
    assert!(online.rebuild_count() >= 2);
    assert_eq!(
        online.snapshot().implication_count(),
        offline_vols.implication_count(),
        "online counters must match offline after the final rebuild"
    );
}

/// Section 3.3.1: sampled counter creation saves memory while keeping the
/// high-probability pairs that define volumes.
#[test]
fn sampling_ablation() {
    let log = tiny("aiusa");
    let mut exact =
        ProbabilityVolumesBuilder::new(DurationMs::from_secs(300), 0.2, SamplingMode::Exact);
    let mut sampled = ProbabilityVolumesBuilder::new(
        DurationMs::from_secs(300),
        0.2,
        SamplingMode::Sampled { factor: 2.0 },
    );
    for (t, src, r) in log.triples() {
        exact.observe(src, r, t);
        sampled.observe(src, r, t);
    }
    assert!(
        sampled.counter_count() < exact.counter_count(),
        "sampling should drop counters: {} vs {}",
        sampled.counter_count(),
        exact.counter_count()
    );
    // The strong implications survive: volumes built from sampled counters
    // retain a majority of the exact volumes' implications.
    let ve = exact.build(0.3);
    let vs = sampled.build(0.3);
    let kept = vs.implication_count() as f64 / ve.implication_count().max(1) as f64;
    assert!(kept > 0.5, "sampled kept only {kept:.2} of implications");
}
