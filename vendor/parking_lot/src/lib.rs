//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape the
//! workspace uses: `lock()`/`read()`/`write()` returning guards directly,
//! and no lock poisoning — a panicked holder simply releases the lock
//! (matching `parking_lot` semantics via `PoisonError::into_inner`).

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
