//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, `any::<T>()`, regex-literal string strategies (a
//! character-class/repetition subset), [`collection::vec`], [`option::of`],
//! `prop_oneof!`/`Just`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a per-test
//! deterministic seed (stable across runs and machines), there is no
//! shrinking — the failing case's inputs are printed verbatim instead —
//! and `.proptest-regressions` files are ignored.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09E667F3BCC909,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!` backend).
pub struct Union<S>(pub Vec<S>);

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "empty prop_oneof!");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A `&str` is interpreted as a regex in the subset proptest's own string
/// strategies use here: literal characters, `[...]` classes with ranges,
/// and `{m}`/`{m,n}` repetitions.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen(self, rng)
    }
}

fn regex_gen(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let class = &chars[i + 1..close];
            i = close + 1;
            expand_class(class, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional repetition: {m} or {m,n}.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repetition bound"),
                    n.trim().parse::<usize>().expect("repetition bound"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("repetition count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(char::from_u32(c).expect("class range"));
            }
            i += 3;
        } else {
            set.push(class[i]);
            i += 1;
        }
    }
    set
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors whose length is drawn from `size` (half-open, as upstream).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `None` roughly one time in four, as upstream's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Per-test configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Stable 64-bit FNV-1a over the test's full name, mixed with the case
/// index, so every test gets its own reproducible stream.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection machinery: an assumption failure skips the case.
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($strategy),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::from_seed($crate::case_seed(__test_name, __case));
                let __vals = ($($crate::Strategy::generate(&{$strategy}, &mut __rng),)+);
                let __printable = format!("{:?}", __vals);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($arg,)+) = __vals;
                    $body
                }));
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {__test_name}: case {__case}/{} failed with inputs:\n  {__printable}",
                        __cfg.cases
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[A-Za-z][A-Za-z0-9-]{0,15}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 16, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));

            let p = crate::Strategy::generate(&"[ -~]{0,60}", &mut rng);
            assert!(p.len() <= 60);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn macro_wires_up(v in crate::collection::vec(0u32..10, 1..5), flip in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = flip;
        }

        #[test]
        fn oneof_and_just(method in prop_oneof![Just("GET"), Just("POST")]) {
            prop_assert!(method == "GET" || method == "POST");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_form_accepted(x in 0u8..4) {
            prop_assert!(x < 4);
        }
    }
}
