//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Throughput`,
//! `sample_size`, `iter`) as a plain wall-clock harness: warm up, run a
//! fixed number of timed samples, report mean/min per iteration. No
//! statistics, plots, or CLI — but `cargo bench` produces comparable
//! numbers and the bench sources compile unchanged against real criterion.

use std::time::{Duration, Instant};

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_size: 30,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput.as_ref(), f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, keeping each return value opaque.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    tp: Option<&Throughput>,
    mut f: F,
) {
    // Calibrate the per-sample iteration count to land near ~10ms/sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / (iters as u32);
        best = best.min(per);
        total += per;
    }
    let mean = total / (samples as u32);
    let rate = match tp {
        Some(Throughput::Bytes(n)) => format!(
            "  {:.1} MiB/s",
            *n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", *n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{name:<40} mean {mean:>12.3?}  min {best:>12.3?}{rate}");
}

pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
