//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the (small) subset of the `rand` 0.10 API the workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random`, `random_range`, and
//! `random_bool`. The generator is xoshiro256++ (public domain reference
//! by Blackman & Vigna) seeded through SplitMix64 — statistically strong
//! and fully deterministic per seed, which is all the workspace's seeded
//! simulations and tests require. Stream values differ from upstream
//! `rand`; nothing in-tree depends on upstream's exact streams.

/// Low-level generator interface (the `RngCore` of upstream `rand`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random (`StandardUniform` upstream).
pub trait StandardSample: Sized {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reject_mod(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (reject_mod(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by rejection sampling (no modulo bias).
fn reject_mod<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>().to_bits(), c.random::<f64>().to_bits());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.random_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
