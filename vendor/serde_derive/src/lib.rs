//! Offline stand-in for `serde_derive`.
//!
//! No serializer backend exists in this offline workspace, so the derives
//! expand to nothing: `#[derive(Serialize, Deserialize)]` annotations in
//! the tree compile, and the marker traits in the vendored `serde` stub
//! are blanket-implemented instead of derived.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
