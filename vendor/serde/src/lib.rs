//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few wire types for
//! downstream consumers, but no serializer crate is present in the offline
//! dependency set, so the traits are inert markers (blanket-implemented;
//! the re-exported derives expand to nothing). Swapping this stub for real
//! `serde` requires no source changes in the workspace.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
