//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the rayon 1.x API the workspace uses —
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`], the `prelude` parallel
//! iterator traits with `map`/`for_each`/`collect`, and
//! [`current_num_threads`] — over plain `std::thread::scope` workers.
//!
//! Work distribution is dynamic (a shared index queue, so expensive cells
//! don't serialize behind cheap ones) while results are always reassembled
//! in input order, so `collect()` is deterministic regardless of thread
//! count or scheduling. A pool of size 1 short-circuits to a plain
//! sequential loop with no thread or lock overhead, which keeps
//! `PB_THREADS=1` an honest serial baseline. Swapping back to the real
//! rayon is a manifest-only change.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Pool size installed by [`ThreadPool::install`] on this thread;
    /// 0 means "no pool installed" (use all available cores).
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads the ambient pool would use.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_POOL_THREADS.with(|c| c.get());
    if installed == 0 {
        default_threads()
    } else {
        installed
    }
}

/// Error building a thread pool (this stand-in never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 (the default) means one thread per available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A sized pool. Workers are spawned per parallel call via scoped threads;
/// the pool only fixes the degree of parallelism.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool installed as the ambient pool: parallel
    /// iterators inside use `self.num_threads` workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = CURRENT_POOL_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        CURRENT_POOL_THREADS.with(|c| c.set(prev));
        result
    }
}

/// Map `f` over `items`, distributing dynamically over `threads` workers;
/// results come back in input order.
fn par_map_vec<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(len);
    // Items are claimed by index from a shared cursor; each worker owns a
    // disjoint subset, so the Mutex slot access never contends per item.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<O>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("claimed once");
                let o = f(item);
                *out[i].lock().unwrap() = Some(o);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

pub mod iter {
    use super::{current_num_threads, par_map_vec};

    /// Core parallel-iterator trait: a source of `Send` items plus a
    /// composed per-item pipeline, executed by [`run_with`](Self::run_with).
    pub trait ParallelIterator: Sized + Send {
        type Item: Send;

        /// Execute, applying `f` to every item in parallel; results are in
        /// input order.
        fn run_with<O, F>(self, f: F) -> Vec<O>
        where
            O: Send,
            F: Fn(Self::Item) -> O + Sync;

        fn map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: Send,
            F: Fn(Self::Item) -> O + Sync + Send,
        {
            Map { base: self, f }
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            self.run_with(f);
        }

        fn count(self) -> usize {
            self.run_with(|_| ()).len()
        }

        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_vec(self.run_with(|x| x))
        }
    }

    /// Collection types buildable from a parallel iterator.
    pub trait FromParallelIterator<T: Send> {
        fn from_par_vec(v: Vec<T>) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(v: Vec<T>) -> Self {
            v
        }
    }

    /// A map stage; the closure is fused into the leaf execution so every
    /// stage of the pipeline runs inside the worker threads.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        O: Send,
        F: Fn(B::Item) -> O + Sync + Send,
    {
        type Item = O;

        fn run_with<O2, G>(self, g: G) -> Vec<O2>
        where
            O2: Send,
            G: Fn(O) -> O2 + Sync,
        {
            let f = self.f;
            self.base.run_with(move |x| g(f(x)))
        }
    }

    /// Leaf iterator over owned items.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;

        fn run_with<O, F>(self, f: F) -> Vec<O>
        where
            O: Send,
            F: Fn(T) -> O + Sync,
        {
            par_map_vec(self.items, current_num_threads(), f)
        }
    }

    /// Conversion into an owning parallel iterator.
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    macro_rules! impl_range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for core::ops::Range<$t> {
                type Item = $t;
                type Iter = VecParIter<$t>;
                fn into_par_iter(self) -> VecParIter<$t> {
                    VecParIter { items: self.collect() }
                }
            }
        )*};
    }
    impl_range_par_iter!(usize, u32, u64, i32, i64);

    macro_rules! impl_range_inclusive_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for core::ops::RangeInclusive<$t> {
                type Item = $t;
                type Iter = VecParIter<$t>;
                fn into_par_iter(self) -> VecParIter<$t> {
                    VecParIter { items: self.collect() }
                }
            }
        )*};
    }
    impl_range_inclusive_par_iter!(usize, u32, u64, i32, i64);

    /// `par_iter()` by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send + 'a;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = VecParIter<&'a T>;
        fn par_iter(&'a self) -> VecParIter<&'a T> {
            VecParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = VecParIter<&'a T>;
        fn par_iter(&'a self) -> VecParIter<&'a T> {
            VecParIter {
                items: self.iter().collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> =
            pool.install(|| (0..100usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let input: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = {
            let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            pool.install(|| input.par_iter().map(|&x| x * x + 1).collect())
        };
        let parallel: Vec<u64> = {
            let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
            pool.install(|| input.par_iter().map(|&x| x * x + 1).collect())
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
        // Outside install the ambient default applies again.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (1..=100u64).into_par_iter().for_each(|i| {
                total.fetch_add(i, Ordering::Relaxed);
            })
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn nested_maps_fuse() {
        let out: Vec<String> = (0..10usize)
            .into_par_iter()
            .map(|i| i + 1)
            .map(|i| format!("#{i}"))
            .collect();
        assert_eq!(out[0], "#1");
        assert_eq!(out[9], "#10");
    }
}
