//! Per-connection scratch buffers and single-syscall vectored writes.
//!
//! A [`ConnScratch`] is owned by the worker serving a connection and
//! reused across every request on it. Parsing reads lines into
//! `scratch.line` instead of allocating a `String` per header; chunked
//! decoding grows `scratch.body_vec` in place; serialization encodes the
//! head, framing, and trailers into `scratch.out` and records the wire
//! layout as [`Seg`] ranges in `scratch.segs` — body bytes are
//! *referenced*, never copied into the output buffer. [`flush_segments`]
//! then emits the whole message with batched `write_vectored` calls.
//! After the first few requests every buffer has reached its steady-state
//! capacity and the serve loop performs no heap allocation at all.

use crate::headers::HeaderMap;
use std::io::{self, IoSlice, Write};

/// One piece of a serialized message: a range into the scratch `out`
/// buffer (head, framing, trailers) or into the message body.
///
/// Ranges rather than slices so the list can be built while `out` is
/// still growing (a `Vec` reallocation would invalidate stored slices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seg {
    /// `out[start..end]` — bytes the encoder wrote into scratch.
    Out(usize, usize),
    /// `body[start..end]` — bytes referenced from the message body.
    Body(usize, usize),
}

/// Reusable per-connection buffers. Create one per accepted connection
/// (or per worker) and thread it through parse and write calls.
#[derive(Debug, Default)]
pub struct ConnScratch {
    /// Line buffer for `read_line_into` (request/status/header lines).
    pub line: Vec<u8>,
    /// Serialization buffer: head + framing + trailers of one message.
    pub out: Vec<u8>,
    /// Wire layout of the message being serialized (ranges, see [`Seg`]).
    pub segs: Vec<Seg>,
    /// Body accumulation buffer for chunked decoding / fixed-length reads.
    pub body_vec: Vec<u8>,
    /// Trailer scratch for chunked request bodies (parsed, then
    /// discarded, so the entry strings recycle across messages).
    pub trailers: HeaderMap,
}

impl ConnScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// How many `IoSlice`s to hand the kernel per `write_vectored` call.
/// Linux caps `writev` at `IOV_MAX` (1024); 64 keeps the stack frame
/// small and is far more than a typical response needs (a chunked body
/// at 8 KiB chunks emits ~2 segments per chunk, so one batch moves a
/// quarter megabyte).
const MAX_BATCH: usize = 64;

/// Write `count` logical slices (resolved by index) fully, using batched
/// vectored writes and handling arbitrary partial progress.
fn write_all_resolved<'a, W: Write>(
    w: &mut W,
    count: usize,
    resolve: impl Fn(usize) -> &'a [u8],
) -> io::Result<()> {
    let mut idx = 0; // first slice not fully written
    let mut offset = 0; // bytes of slice `idx` already written
    while idx < count {
        // Assemble up to MAX_BATCH non-empty IoSlices starting at
        // (idx, offset). IoSlice is Copy, so a stack array works.
        let mut batch = [IoSlice::new(&[]); MAX_BATCH];
        let mut n = 0;
        let mut off = offset;
        let mut j = idx;
        while j < count && n < MAX_BATCH {
            let s = &resolve(j)[off..];
            off = 0;
            j += 1;
            if s.is_empty() {
                continue;
            }
            batch[n] = IoSlice::new(s);
            n += 1;
        }
        if n == 0 {
            return Ok(()); // only empty slices remained
        }
        let written = match w.write_vectored(&batch[..n]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole message",
                ))
            }
            Ok(k) => k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Advance (idx, offset) past `written` bytes. Writers are free to
        // make partial progress anywhere, including mid-slice.
        let mut rem = written;
        while rem > 0 {
            let left = resolve(idx).len() - offset;
            if rem >= left {
                rem -= left;
                idx += 1;
                offset = 0;
            } else {
                offset += rem;
                rem = 0;
            }
        }
        // Skip any now-leading empty slices so `resolve(idx)` above stays
        // in bounds on the next round.
        while idx < count && resolve(idx).len() == offset {
            idx += 1;
            offset = 0;
        }
    }
    Ok(())
}

/// Emit a serialized message: each [`Seg`] resolves against `out`
/// (scratch bytes) or `body` (referenced payload bytes), and the whole
/// sequence is written with batched `write_vectored` calls — no copy of
/// the body into the output buffer, no per-segment syscall.
pub fn flush_segments<W: Write>(
    w: &mut W,
    out: &[u8],
    body: &[u8],
    segs: &[Seg],
) -> io::Result<()> {
    write_all_resolved(w, segs.len(), |i| match segs[i] {
        Seg::Out(s, e) => &out[s..e],
        Seg::Body(s, e) => &body[s..e],
    })
}

/// Write a small fixed set of byte slices fully, in one vectored call
/// when the writer cooperates. Used by hand-rolled hot paths (the
/// proxy's cached-hit response) that assemble head-in-scratch +
/// body-by-reference without a full `Response`.
pub fn write_all_parts<W: Write>(w: &mut W, parts: &[&[u8]]) -> io::Result<()> {
    write_all_resolved(w, parts.len(), |i| parts[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call and ignores all
    /// but the first vectored buffer, exercising the partial-progress and
    /// batching logic.
    struct Dribble {
        data: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap).max(1).min(buf.len());
            self.data.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn segments_resolve_and_interleave() {
        let out = b"HEAD|TAIL";
        let body = b"0123456789";
        let segs = [
            Seg::Out(0, 4),
            Seg::Body(2, 6),
            Seg::Out(5, 9),
            Seg::Body(0, 0), // empty segment is skipped
            Seg::Body(9, 10),
        ];
        let mut wire = Vec::new();
        flush_segments(&mut wire, out, body, &segs).unwrap();
        assert_eq!(wire, b"HEAD2345TAIL9");
    }

    #[test]
    fn partial_writers_still_get_everything() {
        let out: Vec<u8> = (0u8..100).collect();
        let body: Vec<u8> = (100u8..200).collect();
        let segs: Vec<Seg> = (0..50)
            .flat_map(|i| [Seg::Out(i * 2, i * 2 + 2), Seg::Body(i, i + 3)])
            .collect();
        let mut expect = Vec::new();
        for i in 0..50usize {
            expect.extend_from_slice(&out[i * 2..i * 2 + 2]);
            expect.extend_from_slice(&body[i..i + 3]);
        }
        for cap in [1, 2, 3, 7, 64, 1000] {
            let mut w = Dribble {
                data: Vec::new(),
                cap,
            };
            flush_segments(&mut w, &out, &body, &segs).unwrap();
            assert_eq!(w.data, expect, "cap {cap}");
        }
    }

    #[test]
    fn more_segments_than_one_batch() {
        let body: Vec<u8> = (0..=255u8).collect();
        let segs: Vec<Seg> = (0..256).map(|i| Seg::Body(i, i + 1)).collect();
        assert!(segs.len() > MAX_BATCH);
        let mut wire = Vec::new();
        flush_segments(&mut wire, &[], &body, &segs).unwrap();
        assert_eq!(wire, body);
    }

    #[test]
    fn all_empty_segments_is_a_noop() {
        let mut wire = Vec::new();
        flush_segments(&mut wire, b"x", b"y", &[Seg::Out(0, 0), Seg::Body(1, 1)]).unwrap();
        assert!(wire.is_empty());
    }

    #[test]
    fn parts_helper_writes_in_order() {
        let mut wire = Vec::new();
        write_all_parts(&mut wire, &[b"status ", b"", b"headers ", b"body"]).unwrap();
        assert_eq!(wire, b"status headers body");
        let mut w = Dribble {
            data: Vec::new(),
            cap: 2,
        };
        write_all_parts(&mut w, &[b"abc", b"defg", b"h"]).unwrap();
        assert_eq!(w.data, b"abcdefgh");
    }
}
