//! Chunked transfer-coding with trailers (RFC 7230 §4.1).
//!
//! This is the corner of HTTP/1.1 the piggyback protocol lives in: the
//! server sends the response body in chunks and appends the `P-volume`
//! header in the trailer after the terminal zero-length chunk, so the
//! piggyback never delays the body (paper Section 2.3).

use crate::error::HttpError;
use crate::headers::HeaderMap;
use crate::parse::{read_line_into, MAX_BODY, MAX_HEADERS};
use std::io::{BufRead, Write};

/// Write `body` as chunked transfer-coding, followed by `trailers` and the
/// terminating blank line. Bodies are split into chunks of at most
/// `chunk_size` bytes; an empty body still produces the mandatory
/// zero-length final chunk.
pub fn write_chunked<W: Write>(
    w: &mut W,
    body: &[u8],
    trailers: &HeaderMap,
    chunk_size: usize,
) -> std::io::Result<()> {
    let chunk_size = chunk_size.max(1);
    for chunk in body.chunks(chunk_size) {
        write!(w, "{:x}\r\n", chunk.len())?;
        w.write_all(chunk)?;
        w.write_all(b"\r\n")?;
    }
    // Terminal chunk.
    w.write_all(b"0\r\n")?;
    for (name, value) in trailers.iter() {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    Ok(())
}

/// Read a chunked body and its trailer section into caller-owned
/// buffers: `body` accumulates the decoded payload in place (chunks read
/// directly into its tail — no per-chunk temporary), `trailers` is reset
/// and refilled with recycled entry strings, and `line` is the line
/// scratch. A connection that holds these buffers decodes every chunked
/// message after the first without heap allocation.
pub fn read_chunked_into<R: BufRead>(
    r: &mut R,
    body: &mut Vec<u8>,
    trailers: &mut HeaderMap,
    line: &mut Vec<u8>,
) -> Result<(), HttpError> {
    read_chunked_into_capped(r, body, trailers, line, MAX_BODY)
}

/// [`read_chunked_into`] with a caller-chosen body cap (at most
/// [`MAX_BODY`]). The proxy uses this to bound what a client or origin
/// can make it buffer.
pub fn read_chunked_into_capped<R: BufRead>(
    r: &mut R,
    body: &mut Vec<u8>,
    trailers: &mut HeaderMap,
    line: &mut Vec<u8>,
    cap: usize,
) -> Result<(), HttpError> {
    let cap = cap.min(MAX_BODY);
    body.clear();
    trailers.reset();
    loop {
        let size_line = read_line_into(r, line)?;
        // Chunk extensions (";ext=...") are allowed and ignored.
        let size_part = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_part, 16)
            .map_err(|_| HttpError::BadChunkSize(size_line.to_owned()))?;
        // checked_add: an adversarial chunk-size line like
        // "ffffffffffffffff" must hit the limit, not wrap the sum in
        // release mode and bypass it into a huge allocation.
        if body.len().checked_add(size).is_none_or(|total| total > cap) {
            return Err(HttpError::LimitExceeded("chunked body size"));
        }
        if size == 0 {
            break;
        }
        // Read the chunk straight into the body's tail.
        let at = body.len();
        body.resize(at + size, 0);
        r.read_exact(&mut body[at..])?;
        // The CRLF after the chunk data.
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::BadChunkSize("missing chunk CRLF".into()));
        }
    }
    // Trailer section: header lines until the blank line.
    loop {
        let trailer_line = read_line_into(r, line)?;
        if trailer_line.is_empty() {
            break;
        }
        if trailers.len() >= MAX_HEADERS {
            return Err(HttpError::LimitExceeded("trailer count"));
        }
        let (name, value) = trailer_line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(trailer_line.to_owned()))?;
        trailers
            .try_insert_recycled(name.trim(), value.trim())
            .map_err(|_| HttpError::BadHeader(trailer_line.to_owned()))?;
    }
    Ok(())
}

/// Read a chunked body and its trailer section. Returns `(body, trailers)`.
pub fn read_chunked<R: BufRead>(r: &mut R) -> Result<(Vec<u8>, HeaderMap), HttpError> {
    let mut body = Vec::new();
    let mut trailers = HeaderMap::new();
    let mut line = Vec::with_capacity(64);
    read_chunked_into(r, &mut body, &mut trailers, &mut line)?;
    Ok((body, trailers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(body: &[u8], trailers: &HeaderMap, chunk: usize) -> (Vec<u8>, HeaderMap) {
        let mut wire = Vec::new();
        write_chunked(&mut wire, body, trailers, chunk).unwrap();
        let mut r = BufReader::new(wire.as_slice());
        read_chunked(&mut r).unwrap()
    }

    #[test]
    fn empty_body_no_trailers() {
        let (body, trailers) = round_trip(b"", &HeaderMap::new(), 8);
        assert!(body.is_empty());
        assert!(trailers.is_empty());
    }

    #[test]
    fn body_round_trips_across_chunk_sizes() {
        let data = b"The quick brown fox jumps over the lazy dog".to_vec();
        for chunk in [1, 2, 7, 16, 1024] {
            let (body, _) = round_trip(&data, &HeaderMap::new(), chunk);
            assert_eq!(body, data, "chunk size {chunk}");
        }
    }

    #[test]
    fn trailers_round_trip() {
        let mut t = HeaderMap::new();
        t.insert("P-volume", "7; \"/a/b.html\" 887725423 5243");
        t.insert("X-Extra", "1");
        let (body, got) = round_trip(b"hello", &t, 4);
        assert_eq!(body, b"hello");
        assert_eq!(got.get("p-volume"), Some("7; \"/a/b.html\" 887725423 5243"));
        assert_eq!(got.get("x-extra"), Some("1"));
    }

    #[test]
    fn wire_format_is_canonical() {
        let mut wire = Vec::new();
        write_chunked(&mut wire, b"hi", &HeaderMap::new(), 1024).unwrap();
        assert_eq!(wire, b"2\r\nhi\r\n0\r\n\r\n");
        let mut t = HeaderMap::new();
        t.insert("T", "v");
        let mut wire = Vec::new();
        write_chunked(&mut wire, b"", &t, 1024).unwrap();
        assert_eq!(wire, b"0\r\nT: v\r\n\r\n");
    }

    #[test]
    fn chunk_extensions_ignored() {
        let wire = b"5;ext=1\r\nhello\r\n0\r\n\r\n";
        let mut r = BufReader::new(wire.as_slice());
        let (body, _) = read_chunked(&mut r).unwrap();
        assert_eq!(body, b"hello");
    }

    #[test]
    fn rejects_bad_chunk_sizes() {
        let wire = b"zz\r\n";
        let mut r = BufReader::new(wire.as_slice());
        assert!(matches!(
            read_chunked(&mut r),
            Err(HttpError::BadChunkSize(_))
        ));
        // Missing CRLF after chunk data.
        let wire = b"2\r\nhiXX0\r\n\r\n";
        let mut r = BufReader::new(wire.as_slice());
        assert!(read_chunked(&mut r).is_err());
    }

    #[test]
    fn adversarial_chunk_size_cannot_overflow_the_limit() {
        // usize::MAX as a hex chunk size: `body.len() + size` wrapped to a
        // small number in release builds, bypassing MAX_BODY and then
        // attempting a usize::MAX-byte allocation.
        let wire = b"ffffffffffffffff\r\n";
        let mut r = BufReader::new(wire.as_slice());
        assert!(matches!(
            read_chunked(&mut r),
            Err(HttpError::LimitExceeded("chunked body size"))
        ));
        // Wrap via accumulation: a valid first chunk, then the huge one.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"5\r\nhello\r\nfffffffffffffffb\r\n");
        let mut r = BufReader::new(wire.as_slice());
        assert!(matches!(
            read_chunked(&mut r),
            Err(HttpError::LimitExceeded("chunked body size"))
        ));
        // Just over the limit without overflow still rejects.
        let wire = format!("{:x}\r\n", MAX_BODY + 1);
        let mut r = BufReader::new(wire.as_bytes());
        assert!(matches!(
            read_chunked(&mut r),
            Err(HttpError::LimitExceeded("chunked body size"))
        ));
    }

    #[test]
    fn caller_cap_tightens_the_limit() {
        let mut wire = Vec::new();
        write_chunked(&mut wire, &vec![b'x'; 100], &HeaderMap::new(), 16).unwrap();
        let mut body = Vec::new();
        let mut trailers = HeaderMap::new();
        let mut line = Vec::new();
        let mut r = BufReader::new(wire.as_slice());
        assert!(matches!(
            read_chunked_into_capped(&mut r, &mut body, &mut trailers, &mut line, 50),
            Err(HttpError::LimitExceeded("chunked body size"))
        ));
        // Under the cap it decodes normally.
        let mut r = BufReader::new(wire.as_slice());
        read_chunked_into_capped(&mut r, &mut body, &mut trailers, &mut line, 100).unwrap();
        assert_eq!(body.len(), 100);
    }

    #[test]
    fn truncated_stream_is_connection_closed() {
        let wire = b"5\r\nhel";
        let mut r = BufReader::new(wire.as_slice());
        assert!(matches!(
            read_chunked(&mut r),
            Err(HttpError::ConnectionClosed)
        ));
    }

    #[test]
    fn rejects_malformed_trailer() {
        let wire = b"0\r\nnotaheader\r\n\r\n";
        let mut r = BufReader::new(wire.as_slice());
        assert!(matches!(read_chunked(&mut r), Err(HttpError::BadHeader(_))));
    }
}
