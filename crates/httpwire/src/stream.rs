//! Incremental body framing for the streaming cut-through path.
//!
//! The buffered readers ([`crate::Request::read_into`],
//! [`crate::Response::read`]) materialize the whole body before a single
//! downstream byte moves, which makes TTFB equal the full transfer time
//! for multi-MB objects. This module frames bodies in *bounded segments*
//! instead:
//!
//! * [`BodyReader`] is a resumable decoder: feed it byte slices as they
//!   arrive (from a `BufRead` fill or a reactor read buffer) and it
//!   appends decoded payload bytes to a caller-owned sink, telling you
//!   exactly how many input bytes it consumed — leftover bytes belong to
//!   the next message on a keep-alive connection.
//! * [`BodyWriter`] is the matching encoder: push payload segments and it
//!   emits wire bytes that are **byte-identical** to the buffered writers
//!   (`Content-Length` passthrough, or chunked at the same 8 KiB chunk
//!   granularity as [`crate::Response::write`], regardless of how the
//!   segments were sliced).
//! * [`encode_stream_head`] serializes a response head for a body that is
//!   not materialized yet, identical to the head `Response::write` would
//!   produce for the same headers and framing.
//!
//! Neither type allocates per segment in steady state: the reader's line
//! buffer and the writer's pending-chunk buffer reach a fixed capacity
//! and are reused, which is what the streaming-relay alloc lane asserts.

use crate::error::HttpError;
use crate::headers::HeaderMap;
use crate::message::Response;
use crate::parse::{MAX_BODY, MAX_HEADERS, MAX_LINE};
use std::io::{BufRead, Write};

/// Chunk granularity of the buffered chunked writer
/// ([`crate::Response::write`] / `write_with`). [`BodyWriter`] re-chunks
/// arbitrary segments to this size so streamed wire output is
/// byte-identical to the buffered path.
pub const STREAM_CHUNK: usize = 8 * 1024;

/// How a streamed body is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFraming {
    /// `Content-Length: n` — raw payload bytes follow the head.
    Length(usize),
    /// `Transfer-Encoding: chunked` — re-chunked at [`STREAM_CHUNK`].
    Chunked,
}

#[derive(Debug)]
enum RState {
    /// Fixed-length body: `remaining` payload bytes left.
    Length {
        remaining: usize,
    },
    /// Accumulating a chunk-size line into `line`.
    ChunkSize,
    /// Inside chunk data: `remaining` payload bytes left in this chunk.
    ChunkData {
        remaining: usize,
    },
    /// Expecting the `\r` after chunk data.
    ChunkCr,
    /// Expecting the `\n` after chunk data.
    ChunkLf,
    /// Accumulating trailer lines into `line`.
    Trailers,
    Done,
}

/// Resumable incremental body decoder.
///
/// Construct with [`length`](BodyReader::length) or
/// [`chunked`](BodyReader::chunked) once the message head has been
/// parsed, then [`push`](BodyReader::push) input slices as they arrive.
/// Decoded payload bytes are appended to the caller's sink; the return
/// value says how much input was consumed (the rest belongs to the next
/// message). Chunked trailers accumulate in
/// [`trailers`](BodyReader::trailers).
#[derive(Debug)]
pub struct BodyReader {
    state: RState,
    line: Vec<u8>,
    trailers: HeaderMap,
    decoded: usize,
    cap: usize,
}

impl BodyReader {
    /// Decoder for a `Content-Length: total` body.
    pub fn length(total: usize) -> Self {
        BodyReader {
            state: if total == 0 {
                RState::Done
            } else {
                RState::Length { remaining: total }
            },
            line: Vec::new(),
            trailers: HeaderMap::new(),
            decoded: 0,
            cap: usize::MAX,
        }
    }

    /// Decoder for a chunked body. Total decoded size is guarded by the
    /// same [`MAX_BODY`] limit as the buffered reader (the streaming
    /// relay never buffers that much, but a lying peer still can't stream
    /// forever into a capped consumer).
    pub fn chunked() -> Self {
        BodyReader {
            state: RState::ChunkSize,
            line: Vec::new(),
            trailers: HeaderMap::new(),
            decoded: 0,
            cap: MAX_BODY,
        }
    }

    /// Has the body (including any trailer section) been fully decoded?
    pub fn is_done(&self) -> bool {
        matches!(self.state, RState::Done)
    }

    /// Total payload bytes decoded so far.
    pub fn decoded(&self) -> usize {
        self.decoded
    }

    /// Trailer headers (populated once a chunked body reaches its
    /// trailer section; empty for fixed-length bodies).
    pub fn trailers(&self) -> &HeaderMap {
        &self.trailers
    }

    /// Feed `input`; decoded payload bytes are appended to `sink`.
    /// Returns the number of input bytes consumed. Once the body is done
    /// the remaining bytes are left unconsumed for the next message.
    pub fn push(&mut self, input: &[u8], sink: &mut Vec<u8>) -> Result<usize, HttpError> {
        let mut pos = 0;
        while pos < input.len() {
            match self.state {
                RState::Done => break,
                RState::Length { ref mut remaining } => {
                    let take = (*remaining).min(input.len() - pos);
                    sink.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    self.decoded += take;
                    *remaining -= take;
                    if *remaining == 0 {
                        self.state = RState::Done;
                    }
                }
                RState::ChunkData { ref mut remaining } => {
                    let take = (*remaining).min(input.len() - pos);
                    sink.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    self.decoded += take;
                    *remaining -= take;
                    if *remaining == 0 {
                        self.state = RState::ChunkCr;
                    }
                }
                RState::ChunkCr => {
                    if input[pos] != b'\r' {
                        return Err(HttpError::BadChunkSize("missing chunk CRLF".into()));
                    }
                    pos += 1;
                    self.state = RState::ChunkLf;
                }
                RState::ChunkLf => {
                    if input[pos] != b'\n' {
                        return Err(HttpError::BadChunkSize("missing chunk CRLF".into()));
                    }
                    pos += 1;
                    self.state = RState::ChunkSize;
                }
                RState::ChunkSize => {
                    if !self.take_line(input, &mut pos)? {
                        break; // need more input
                    }
                    let text = std::str::from_utf8(&self.line)
                        .map_err(|_| HttpError::BadChunkSize("non-UTF8 size line".into()))?;
                    // Chunk extensions (";ext=...") are allowed and ignored.
                    let size_part = text.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_part, 16)
                        .map_err(|_| HttpError::BadChunkSize(text.to_owned()))?;
                    if self
                        .decoded
                        .checked_add(size)
                        .is_none_or(|total| total > self.cap)
                    {
                        return Err(HttpError::LimitExceeded("chunked body size"));
                    }
                    self.line.clear();
                    self.state = if size == 0 {
                        RState::Trailers
                    } else {
                        RState::ChunkData { remaining: size }
                    };
                }
                RState::Trailers => {
                    if !self.take_line(input, &mut pos)? {
                        break;
                    }
                    if self.line.is_empty() {
                        self.state = RState::Done;
                        continue;
                    }
                    if self.trailers.len() >= MAX_HEADERS {
                        return Err(HttpError::LimitExceeded("trailer count"));
                    }
                    let text = std::str::from_utf8(&self.line)
                        .map_err(|_| HttpError::BadHeader("non-UTF8 trailer".into()))?;
                    let (name, value) = text
                        .split_once(':')
                        .ok_or_else(|| HttpError::BadHeader(text.to_owned()))?;
                    self.trailers
                        .try_insert_recycled(name.trim(), value.trim())
                        .map_err(|_| HttpError::BadHeader(text.to_owned()))?;
                    self.line.clear();
                }
            }
        }
        Ok(pos)
    }

    /// Accumulate bytes of `input` into `self.line` until a full line
    /// (terminator stripped, CRLF or bare LF) is present. Returns whether
    /// a complete line is ready; `pos` advances past consumed bytes.
    fn take_line(&mut self, input: &[u8], pos: &mut usize) -> Result<bool, HttpError> {
        match input[*pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                self.line.extend_from_slice(&input[*pos..*pos + nl]);
                *pos += nl + 1;
                if self.line.last() == Some(&b'\r') {
                    self.line.pop();
                }
                if self.line.len() > MAX_LINE {
                    return Err(HttpError::LimitExceeded("line length"));
                }
                Ok(true)
            }
            None => {
                self.line.extend_from_slice(&input[*pos..]);
                *pos = input.len();
                if self.line.len() > MAX_LINE {
                    return Err(HttpError::LimitExceeded("line length"));
                }
                Ok(false)
            }
        }
    }

    /// Blocking convenience for the threaded engine: decode from `r`
    /// until `sink` holds at least `min_fill` payload bytes or the body
    /// is complete. `sink` is cleared first. Returns the segment length
    /// (0 only when the body was already done).
    pub fn read_segment<R: BufRead>(
        &mut self,
        r: &mut R,
        sink: &mut Vec<u8>,
        min_fill: usize,
    ) -> Result<usize, HttpError> {
        sink.clear();
        while !self.is_done() && sink.len() < min_fill.max(1) {
            let available = r.fill_buf()?;
            if available.is_empty() {
                return Err(HttpError::ConnectionClosed);
            }
            // Borrow-split: push can't take `r` and `available` together.
            let consumed = {
                let mut tmp = std::mem::take(sink);
                let res = self.push(available, &mut tmp);
                *sink = tmp;
                res?
            };
            r.consume(consumed);
        }
        Ok(sink.len())
    }
}

#[derive(Debug)]
enum WMode {
    /// Raw passthrough; `remaining` payload bytes still owed.
    Length { remaining: usize },
    /// Re-chunking at [`STREAM_CHUNK`]; `pending` holds a partial chunk.
    Chunked { pending: Vec<u8> },
}

/// Incremental body encoder, byte-identical to the buffered writers.
///
/// Push payload segments of any size; full [`STREAM_CHUNK`]-sized chunks
/// are emitted as soon as available and the final partial chunk (plus the
/// terminal chunk and trailer section) on [`finish`](BodyWriter::finish),
/// so the wire bytes match `write_chunked(body, trailers, 8 * 1024)`
/// exactly no matter how the body was segmented.
#[derive(Debug)]
pub struct BodyWriter {
    mode: WMode,
    hdr: Vec<u8>,
    written: usize,
}

impl BodyWriter {
    /// Encoder for a `Content-Length: total` body (raw passthrough).
    pub fn length(total: usize) -> Self {
        BodyWriter {
            mode: WMode::Length { remaining: total },
            hdr: Vec::new(),
            written: 0,
        }
    }

    /// Encoder for a chunked body.
    pub fn chunked() -> Self {
        BodyWriter {
            mode: WMode::Chunked {
                pending: Vec::with_capacity(STREAM_CHUNK),
            },
            hdr: Vec::new(),
            written: 0,
        }
    }

    /// Total payload bytes accepted so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Encode one payload segment onto `w`.
    pub fn push<W: Write>(&mut self, seg: &[u8], w: &mut W) -> std::io::Result<()> {
        self.written += seg.len();
        match self.mode {
            WMode::Length { ref mut remaining } => {
                if seg.len() > *remaining {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "body longer than declared Content-Length",
                    ));
                }
                *remaining -= seg.len();
                w.write_all(seg)
            }
            WMode::Chunked { ref mut pending } => {
                let mut seg = seg;
                // Top up a pending partial chunk first.
                if !pending.is_empty() {
                    let take = (STREAM_CHUNK - pending.len()).min(seg.len());
                    pending.extend_from_slice(&seg[..take]);
                    seg = &seg[take..];
                    if pending.len() == STREAM_CHUNK {
                        Self::emit_chunk(&mut self.hdr, pending, w)?;
                        pending.clear();
                    }
                }
                // Full chunks straight from the segment, no copy.
                while seg.len() >= STREAM_CHUNK {
                    Self::emit_chunk(&mut self.hdr, &seg[..STREAM_CHUNK], w)?;
                    seg = &seg[STREAM_CHUNK..];
                }
                pending.extend_from_slice(seg);
                Ok(())
            }
        }
    }

    fn emit_chunk<W: Write>(hdr: &mut Vec<u8>, chunk: &[u8], w: &mut W) -> std::io::Result<()> {
        hdr.clear();
        write!(hdr, "{:x}\r\n", chunk.len())?;
        crate::scratch::write_all_parts(w, &[hdr.as_slice(), chunk, b"\r\n"])
    }

    /// Finish the body: flush any partial chunk, then the terminal chunk
    /// and trailer section (chunked), or validate the declared length was
    /// met (`Content-Length`).
    pub fn finish<W: Write>(&mut self, trailers: &HeaderMap, w: &mut W) -> std::io::Result<()> {
        match self.mode {
            WMode::Length { remaining } => {
                if remaining != 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "body shorter than declared Content-Length",
                    ));
                }
                Ok(())
            }
            WMode::Chunked { ref mut pending } => {
                if !pending.is_empty() {
                    Self::emit_chunk(&mut self.hdr, pending, w)?;
                    pending.clear();
                }
                self.hdr.clear();
                self.hdr.extend_from_slice(b"0\r\n");
                for (name, value) in trailers.iter() {
                    write!(self.hdr, "{name}: {value}\r\n")?;
                }
                self.hdr.extend_from_slice(b"\r\n");
                w.write_all(&self.hdr)
            }
        }
    }
}

/// Serialize the head of `resp` for a streamed body, byte-identical to
/// the head [`Response::write`] emits for the same headers and framing.
/// Framing headers in `resp.headers` (`Content-Length`,
/// `Transfer-Encoding`, `Trailer`) are skipped and recomputed from
/// `framing`; the `Trailer` announce line comes from `resp.trailers`
/// (callers that will send no trailers leave it empty).
pub fn encode_stream_head(resp: &Response, framing: StreamFraming, out: &mut Vec<u8>) {
    use std::fmt::Write as _;
    let mut head = String::new();
    let _ = write!(
        head,
        "{} {} {}\r\n",
        resp.version.as_str(),
        resp.status,
        resp.reason
    );
    out.extend_from_slice(head.as_bytes());
    head.clear();
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("Content-Length")
            || name.eq_ignore_ascii_case("Transfer-Encoding")
            || name.eq_ignore_ascii_case("Trailer")
        {
            continue;
        }
        let _ = write!(head, "{name}: {value}\r\n");
        out.extend_from_slice(head.as_bytes());
        head.clear();
    }
    match framing {
        StreamFraming::Chunked => {
            out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
            if !resp.trailers.is_empty() {
                out.extend_from_slice(b"Trailer: ");
                let mut first = true;
                for (name, _) in resp.trailers.iter() {
                    if !first {
                        out.extend_from_slice(b", ");
                    }
                    out.extend_from_slice(name.as_bytes());
                    first = false;
                }
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"\r\n");
        }
        StreamFraming::Length(n) => {
            let _ = write!(head, "Content-Length: {n}\r\n\r\n");
            out.extend_from_slice(head.as_bytes());
            head.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked::write_chunked;
    use std::io::BufReader;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    /// Push `wire` into a reader in slices of `step` bytes, collecting
    /// decoded output. Returns (decoded, consumed).
    fn decode_in_steps(r: &mut BodyReader, wire: &[u8], step: usize) -> (Vec<u8>, usize) {
        let mut sink = Vec::new();
        let mut consumed = 0;
        while consumed < wire.len() && !r.is_done() {
            let end = (consumed + step).min(wire.len());
            consumed += r.push(&wire[consumed..end], &mut sink).unwrap();
            if r.is_done() {
                break;
            }
        }
        (sink, consumed)
    }

    #[test]
    fn length_reader_decodes_and_stops_at_boundary() {
        let body = pattern(1000);
        let mut wire = body.clone();
        wire.extend_from_slice(b"NEXT MESSAGE");
        for step in [1, 7, 64, 4096] {
            let mut r = BodyReader::length(1000);
            let (sink, consumed) = decode_in_steps(&mut r, &wire, step);
            assert!(r.is_done());
            assert_eq!(sink, body, "step {step}");
            assert_eq!(consumed, 1000, "step {step}: must not eat the next message");
            assert_eq!(r.decoded(), 1000);
        }
        let mut r = BodyReader::length(0);
        assert!(r.is_done());
        assert_eq!(r.push(b"xyz", &mut Vec::new()).unwrap(), 0);
    }

    #[test]
    fn chunked_reader_matches_buffered_decoder_at_any_slicing() {
        let body = pattern(20_000);
        let mut trailers = HeaderMap::new();
        trailers.insert("P-volume", "7; \"/a.html\" 886000000 1024");
        trailers.insert("X-Extra", "1");
        let mut wire = Vec::new();
        write_chunked(&mut wire, &body, &trailers, 8 * 1024).unwrap();
        wire.extend_from_slice(b"GET /next HTTP/1.1\r\n");
        let tail = wire.len() - b"GET /next HTTP/1.1\r\n".len();
        for step in [1, 2, 3, 13, 1024, 100_000] {
            let mut r = BodyReader::chunked();
            let (sink, consumed) = decode_in_steps(&mut r, &wire, step);
            assert!(r.is_done(), "step {step}");
            assert_eq!(sink, body, "step {step}");
            assert_eq!(consumed, tail, "step {step}");
            assert_eq!(
                r.trailers().get("p-volume"),
                Some("7; \"/a.html\" 886000000 1024")
            );
            assert_eq!(r.trailers().get("x-extra"), Some("1"));
        }
    }

    #[test]
    fn chunked_reader_handles_extensions_and_rejects_garbage() {
        let mut r = BodyReader::chunked();
        let mut sink = Vec::new();
        r.push(b"5;ext=1\r\nhello\r\n0\r\n\r\n", &mut sink).unwrap();
        assert!(r.is_done());
        assert_eq!(sink, b"hello");

        let mut r = BodyReader::chunked();
        assert!(matches!(
            r.push(b"zz\r\n", &mut Vec::new()),
            Err(HttpError::BadChunkSize(_))
        ));
        let mut r = BodyReader::chunked();
        assert!(matches!(
            r.push(b"2\r\nhiXX", &mut Vec::new()),
            Err(HttpError::BadChunkSize(_))
        ));
        // Adversarial size line cannot overflow the cap.
        let mut r = BodyReader::chunked();
        assert!(matches!(
            r.push(b"ffffffffffffffff\r\n", &mut Vec::new()),
            Err(HttpError::LimitExceeded("chunked body size"))
        ));
    }

    #[test]
    fn read_segment_bounds_each_fill() {
        let body = pattern(100_000);
        let mut wire = Vec::new();
        write_chunked(&mut wire, &body, &HeaderMap::new(), 8 * 1024).unwrap();
        let mut reader = BufReader::with_capacity(4096, wire.as_slice());
        let mut r = BodyReader::chunked();
        let mut sink = Vec::new();
        let mut got = Vec::new();
        let mut segments = 0;
        loop {
            let n = r.read_segment(&mut reader, &mut sink, 16 * 1024).unwrap();
            if n == 0 {
                break;
            }
            assert!(sink.len() <= 16 * 1024 + 4096, "bounded segment");
            got.extend_from_slice(&sink);
            segments += 1;
        }
        assert_eq!(got, body);
        assert!(segments >= 5, "body spanned multiple segments: {segments}");
        // Truncation surfaces as ConnectionClosed.
        let mut short = BufReader::new(&wire[..wire.len() / 2]);
        let mut r = BodyReader::chunked();
        loop {
            match r.read_segment(&mut short, &mut sink, 16 * 1024) {
                Ok(0) => panic!("truncated body must not complete"),
                Ok(_) => continue,
                Err(HttpError::ConnectionClosed) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn writer_is_byte_identical_to_buffered_chunked_writer() {
        let mut trailers = HeaderMap::new();
        trailers.insert("P-volume", "3; \"/x\" 1 2");
        for len in [0usize, 1, 8191, 8192, 8193, 20_000, 65_536] {
            let body = pattern(len);
            let mut seed = Vec::new();
            write_chunked(&mut seed, &body, &trailers, 8 * 1024).unwrap();
            for step in [1, 7, 1000, 8192, 12_345, 100_000] {
                let mut w = BodyWriter::chunked();
                let mut wire = Vec::new();
                for seg in body.chunks(step.max(1)) {
                    w.push(seg, &mut wire).unwrap();
                }
                w.finish(&trailers, &mut wire).unwrap();
                assert_eq!(wire, seed, "len {len} step {step}");
                assert_eq!(w.written(), len);
            }
        }
    }

    #[test]
    fn length_writer_validates_declared_size() {
        let mut w = BodyWriter::length(5);
        let mut wire = Vec::new();
        w.push(b"he", &mut wire).unwrap();
        w.push(b"llo", &mut wire).unwrap();
        w.finish(&HeaderMap::new(), &mut wire).unwrap();
        assert_eq!(wire, b"hello");

        let mut w = BodyWriter::length(3);
        assert!(w.push(b"toolong", &mut Vec::new()).is_err());
        let mut w = BodyWriter::length(9);
        w.push(b"short", &mut Vec::new()).unwrap();
        assert!(w.finish(&HeaderMap::new(), &mut Vec::new()).is_err());
    }

    /// head + streamed body must equal `Response::write` byte-for-byte.
    #[test]
    fn streamed_response_is_byte_identical_to_buffered_write() {
        // Content-Length framing.
        let mut resp = Response::new(200);
        resp.headers.insert("Content-Type", "text/html");
        resp.headers.insert("X-Cache", "MISS");
        resp.body = pattern(30_000).into();
        let mut seed = Vec::new();
        resp.write(&mut seed).unwrap();
        let mut wire = Vec::new();
        encode_stream_head(&resp, StreamFraming::Length(resp.body.len()), &mut wire);
        let mut w = BodyWriter::length(resp.body.len());
        for seg in resp.body.as_slice().chunks(4096) {
            w.push(seg, &mut wire).unwrap();
        }
        w.finish(&HeaderMap::new(), &mut wire).unwrap();
        assert_eq!(wire, seed);

        // Chunked framing with trailers.
        let mut resp = Response::new(200);
        resp.headers.insert("X-Cache", "MISS");
        resp.body = pattern(20_000).into();
        resp.trailers.insert("P-volume", "7; \"/a.html\" 1 2");
        let mut seed = Vec::new();
        resp.write(&mut seed).unwrap();
        let mut wire = Vec::new();
        encode_stream_head(&resp, StreamFraming::Chunked, &mut wire);
        let mut w = BodyWriter::chunked();
        for seg in resp.body.as_slice().chunks(1000) {
            w.push(seg, &mut wire).unwrap();
        }
        w.finish(&resp.trailers, &mut wire).unwrap();
        assert_eq!(wire, seed);

        // Chunked framing, no trailers (client-facing relay shape): the
        // buffered equivalent is a response with an explicit TE header.
        let mut resp = Response::new(200);
        resp.headers.insert("Transfer-Encoding", "chunked");
        resp.body = pattern(9000).into();
        let mut seed = Vec::new();
        resp.write(&mut seed).unwrap();
        let mut wire = Vec::new();
        encode_stream_head(&resp, StreamFraming::Chunked, &mut wire);
        let mut w = BodyWriter::chunked();
        w.push(resp.body.as_slice(), &mut wire).unwrap();
        w.finish(&HeaderMap::new(), &mut wire).unwrap();
        assert_eq!(wire, seed);
    }

    /// Decode → re-encode round trip: a relay that reads with BodyReader
    /// and writes with BodyWriter reproduces the original chunked wire.
    #[test]
    fn relay_round_trip_reproduces_wire() {
        let body = pattern(50_000);
        let mut trailers = HeaderMap::new();
        trailers.insert("T", "v");
        let mut origin_wire = Vec::new();
        write_chunked(&mut origin_wire, &body, &trailers, 8 * 1024).unwrap();

        let mut r = BodyReader::chunked();
        let mut w = BodyWriter::chunked();
        let mut relayed = Vec::new();
        let mut sink = Vec::new();
        let mut pos = 0;
        while !r.is_done() {
            let end = (pos + 1500).min(origin_wire.len()); // MTU-ish slices
            sink.clear();
            pos += r.push(&origin_wire[pos..end], &mut sink).unwrap();
            w.push(&sink, &mut relayed).unwrap();
        }
        w.finish(r.trailers(), &mut relayed).unwrap();
        assert_eq!(relayed, origin_wire);
    }
}
