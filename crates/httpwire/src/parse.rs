//! Low-level line and header-section reading, with protocol limits.

use crate::error::HttpError;
use crate::headers::HeaderMap;
use std::io::BufRead;

/// Maximum length of a single line (request line, status line, header).
pub const MAX_LINE: usize = 16 * 1024;
/// Maximum number of headers per section.
pub const MAX_HEADERS: usize = 128;
/// Maximum body size we will buffer.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Read one CRLF- (or bare-LF-) terminated line, without the terminator,
/// into a caller-owned scratch buffer (cleared first). Returns the line
/// borrowed from that buffer, so the steady-state serve loop reads every
/// header line with zero heap allocation.
/// EOF before any byte is `ConnectionClosed`; EOF mid-line likewise.
pub fn read_line_into<'a, R: BufRead>(
    r: &mut R,
    buf: &'a mut Vec<u8>,
) -> Result<&'a str, HttpError> {
    buf.clear();
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Err(HttpError::ConnectionClosed);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&available[..pos]);
                r.consume(pos + 1);
                break;
            }
            None => {
                let len = available.len();
                buf.extend_from_slice(available);
                r.consume(len);
                if buf.len() > MAX_LINE {
                    return Err(HttpError::LimitExceeded("line length"));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > MAX_LINE {
        return Err(HttpError::LimitExceeded("line length"));
    }
    std::str::from_utf8(buf).map_err(|e| HttpError::BadHeader(format!("non-UTF8 line: {e}")))
}

/// [`read_line_into`] with a fresh buffer, returning an owned `String`.
/// Kept for tests and cold paths; hot loops should hold a scratch buffer.
pub fn read_line<R: BufRead>(r: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(64);
    let line = read_line_into(r, &mut buf)?;
    Ok(line.to_owned())
}

/// Read a header section (lines until the blank line) into a
/// caller-owned map, reusing `line` as line scratch. The map is reset
/// (not merely cleared) so recycled entry strings are refilled in place.
pub fn read_headers_into<R: BufRead>(
    r: &mut R,
    headers: &mut HeaderMap,
    line: &mut Vec<u8>,
) -> Result<(), HttpError> {
    headers.reset();
    loop {
        let line = read_line_into(r, line)?;
        if line.is_empty() {
            return Ok(());
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::LimitExceeded("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_owned()))?;
        headers
            .try_insert_recycled(name.trim(), value.trim())
            .map_err(|_| HttpError::BadHeader(line.to_owned()))?;
    }
}

/// Read a header section (lines until the blank line).
pub fn read_headers<R: BufRead>(r: &mut R) -> Result<HeaderMap, HttpError> {
    let mut headers = HeaderMap::new();
    let mut line = Vec::with_capacity(64);
    read_headers_into(r, &mut headers, &mut line)?;
    Ok(headers)
}

/// Parse a `Content-Length` header if present.
pub fn content_length(headers: &HeaderMap) -> Result<Option<usize>, HttpError> {
    match headers.get("Content-Length") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v.trim().parse().map_err(|_| HttpError::BadContentLength)?;
            if n > MAX_BODY {
                return Err(HttpError::LimitExceeded("content length"));
            }
            Ok(Some(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn reads_crlf_and_lf_lines() {
        let mut r = BufReader::new(&b"one\r\ntwo\nthree\r\n"[..]);
        assert_eq!(read_line(&mut r).unwrap(), "one");
        assert_eq!(read_line(&mut r).unwrap(), "two");
        assert_eq!(read_line(&mut r).unwrap(), "three");
        assert!(matches!(
            read_line(&mut r),
            Err(HttpError::ConnectionClosed)
        ));
    }

    #[test]
    fn line_split_across_buffer_boundaries() {
        // A tiny BufReader forces fill_buf to return partial lines.
        let data = b"abcdefghijklmnop\r\nqr\r\n".to_vec();
        let mut r = BufReader::with_capacity(4, data.as_slice());
        assert_eq!(read_line(&mut r).unwrap(), "abcdefghijklmnop");
        assert_eq!(read_line(&mut r).unwrap(), "qr");
    }

    #[test]
    fn line_length_limit() {
        let long = vec![b'a'; MAX_LINE + 10];
        let mut r = BufReader::new(long.as_slice());
        assert!(matches!(
            read_line(&mut r),
            Err(HttpError::LimitExceeded(_)) | Err(HttpError::ConnectionClosed)
        ));
    }

    #[test]
    fn header_section_parses() {
        let wire = b"Host: example.com\r\nTE: chunked\r\nPiggy-filter: maxpiggy=10\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let h = read_headers(&mut r).unwrap();
        assert_eq!(h.len(), 3);
        assert_eq!(h.get("host"), Some("example.com"));
        assert_eq!(h.get("piggy-filter"), Some("maxpiggy=10"));
    }

    #[test]
    fn header_without_colon_rejected() {
        let mut r = BufReader::new(&b"nocolonhere\r\n\r\n"[..]);
        assert!(matches!(read_headers(&mut r), Err(HttpError::BadHeader(_))));
    }

    #[test]
    fn content_length_parsing() {
        let mut h = HeaderMap::new();
        assert_eq!(content_length(&h).unwrap(), None);
        h.insert("Content-Length", "123");
        assert_eq!(content_length(&h).unwrap(), Some(123));
        h.set("Content-Length", "xyz");
        assert!(matches!(
            content_length(&h),
            Err(HttpError::BadContentLength)
        ));
        h.set("Content-Length", &format!("{}", MAX_BODY + 1));
        assert!(matches!(
            content_length(&h),
            Err(HttpError::LimitExceeded(_))
        ));
    }
}
