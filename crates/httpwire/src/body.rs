//! A cheaply-cloneable, sliceable byte container for message bodies.
//!
//! [`Body`] is a minimal `bytes::Bytes`: either a `&'static [u8]` or an
//! `Arc<[u8]>` plus a sub-range. Cloning bumps a refcount (or copies two
//! pointers for statics); slicing adjusts the range; neither copies bytes.
//! The proxy's cache stores one `Body` per resource and every cached hit
//! serves a clone of it, so the stored bytes flow to `write_vectored`
//! without a memcpy.
//!
//! Bytes are copied exactly once, when a message is *retained*: converting
//! a `Vec<u8>` (or `&[u8]`) into a `Body` performs the single
//! `Arc::from` copy. `from_static` is `const`, so canned bodies (the
//! origin's 404 page) can live in `static`s and serve with zero copies
//! ever.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared, immutable bytes with O(1) clone and slice.
#[derive(Clone)]
pub struct Body {
    repr: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
    /// The first bytes of a larger object (prefix caching): `head` is
    /// what we retained, `total_len` the full object length recorded at
    /// capture time. Serving a prefix hit validates the streamed suffix
    /// against `total_len`.
    Prefix {
        head: Arc<[u8]>,
        total_len: usize,
    },
}

impl Body {
    /// An empty body. `const`, so it costs nothing to construct.
    pub const fn empty() -> Self {
        Body::from_static(b"")
    }

    /// Wrap a `'static` byte slice without copying — usable in `static`
    /// items for canned responses.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Body {
            start: 0,
            end: bytes.len(),
            repr: Repr::Static(bytes),
        }
    }

    /// A prefix body: the first `head.len()` bytes of a `total_len`-byte
    /// object. The stored bytes are shared (`Arc`), so prefix hits serve
    /// the head zero-copy. Panics if `total_len < head.len()`.
    pub fn prefix(head: impl Into<Arc<[u8]>>, total_len: usize) -> Self {
        let head: Arc<[u8]> = head.into();
        assert!(
            total_len >= head.len(),
            "prefix head longer than the object it prefixes"
        );
        Body {
            start: 0,
            end: head.len(),
            repr: Repr::Prefix { head, total_len },
        }
    }

    /// Is this body a retained prefix of a larger object?
    pub fn is_prefix(&self) -> bool {
        matches!(self.repr, Repr::Prefix { .. })
    }

    /// The full length of the object this body belongs to: `total_len`
    /// for a prefix, the body's own length otherwise.
    pub fn total_len(&self) -> usize {
        match self.repr {
            Repr::Prefix { total_len, .. } => total_len,
            _ => self.len(),
        }
    }

    /// The full backing slice (ignoring this body's sub-range).
    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
            Repr::Prefix { head, .. } => head,
        }
    }

    /// The bytes of this body.
    pub fn as_slice(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-body sharing the same backing storage (no copy). The range is
    /// relative to this body and clamped to its bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Body {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        let hi = hi.min(self.len());
        let lo = lo.min(hi);
        // A slice of a prefix is just bytes: the prefix marker describes
        // the whole retained head, not arbitrary sub-ranges of it.
        let repr = match &self.repr {
            Repr::Prefix { head, .. } => Repr::Shared(Arc::clone(head)),
            other => other.clone(),
        };
        Body {
            repr,
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the bytes out into a fresh `Vec` (the one deliberate copy).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Body {
    fn default() -> Self {
        Body::empty()
    }
}

impl Deref for Body {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Body {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Body {
    /// The single retain-time copy: `Arc<[u8]>` from the vec.
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(v);
        Body {
            start: 0,
            end: arc.len(),
            repr: Repr::Shared(arc),
        }
    }
}

impl From<&[u8]> for Body {
    fn from(s: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(s);
        Body {
            start: 0,
            end: arc.len(),
            repr: Repr::Shared(arc),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Body {
    fn from(s: &[u8; N]) -> Self {
        Body::from(&s[..])
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body::from(s.into_bytes())
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Self {
        Body::from(s.as_bytes())
    }
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_prefix() {
            write!(
                f,
                "Body({} bytes, prefix of {})",
                self.len(),
                self.total_len()
            )
        } else {
            write!(f, "Body({} bytes)", self.len())
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        // A prefix is not equal to a full body with the same head bytes:
        // equality covers the object it claims to represent.
        self.is_prefix() == other.is_prefix()
            && self.total_len() == other.total_len()
            && self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

impl PartialEq<[u8]> for Body {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Body {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Body {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Body> for Vec<u8> {
    fn eq(&self, other: &Body) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Body {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Body {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_static_are_const() {
        static CANNED: Body = Body::from_static(b"not found\n");
        const EMPTY: Body = Body::empty();
        assert_eq!(CANNED, b"not found\n");
        assert_eq!(CANNED.len(), 10);
        assert!(EMPTY.is_empty());
        assert_eq!(EMPTY.len(), 0);
    }

    #[test]
    fn clone_shares_storage() {
        let b = Body::from(b"hello world".to_vec());
        let c = b.clone();
        assert_eq!(b, c);
        // Same backing allocation: the slices point into the same memory.
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn slice_is_zero_copy_and_clamped() {
        let b = Body::from(b"hello world".to_vec());
        let hello = b.slice(..5);
        let world = b.slice(6..);
        assert_eq!(hello, b"hello");
        assert_eq!(world, b"world");
        // Sub-slices share the parent's storage.
        assert_eq!(world.as_slice().as_ptr(), unsafe {
            b.as_slice().as_ptr().add(6)
        });
        // Nested slicing is relative to the slice, not the root.
        assert_eq!(world.slice(1..3), b"or");
        // Out-of-range bounds clamp instead of panicking.
        assert_eq!(b.slice(..100), b"hello world");
        assert_eq!(b.slice(20..30).len(), 0);
        // Inverted bounds clamp to empty too.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = b.slice(5..2);
        assert_eq!(inverted.len(), 0);
    }

    #[test]
    fn conversions_and_equality() {
        let v: Body = b"abc".to_vec().into();
        let s: Body = "abc".into();
        let a: Body = b"abc".into();
        assert_eq!(v, s);
        assert_eq!(s, a);
        assert_eq!(v, *b"abc");
        assert_eq!(v, b"abc");
        assert_eq!(v, b"abc".to_vec());
        assert_eq!(b"abc".to_vec(), v);
        assert_eq!(v.to_vec(), b"abc");
        assert_ne!(v, Body::empty());
        assert_eq!(format!("{v:?}"), "Body(3 bytes)");
    }

    #[test]
    fn prefix_bodies_carry_total_len_and_share_head_bytes() {
        let head: Arc<[u8]> = Arc::from(&b"first 8 b"[..9]);
        let p = Body::prefix(Arc::clone(&head), 1_000_000);
        assert!(p.is_prefix());
        assert_eq!(p.len(), 9);
        assert_eq!(p.total_len(), 1_000_000);
        // Zero-copy: clone and as_slice point at the shared head.
        assert_eq!(p.clone().as_slice().as_ptr(), head.as_ptr());
        // Slicing yields plain bytes, not a prefix claim.
        let s = p.slice(..5);
        assert!(!s.is_prefix());
        assert_eq!(s.total_len(), 5);
        assert_eq!(s.as_slice().as_ptr(), head.as_ptr());
        // Equality distinguishes a prefix from a full body with the same
        // bytes, and prefixes of different objects from each other.
        let full: Body = b"first 8 b".into();
        assert_ne!(p, full);
        assert_ne!(p, Body::prefix(Arc::clone(&head), 2_000_000));
        assert_eq!(p, Body::prefix(head, 1_000_000));
        // Byte-level comparisons stay byte-level.
        assert_eq!(p, b"first 8 b");
        assert!(format!("{p:?}").contains("prefix of 1000000"));
    }

    #[test]
    #[should_panic(expected = "prefix head longer")]
    fn prefix_total_len_must_cover_head() {
        let _ = Body::prefix(&b"123456"[..], 3);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let b = Body::from(b"chunky".to_vec());
        assert_eq!(&b[1..3], b"hu");
        assert!(b.starts_with(b"ch"));
        assert_eq!(b.iter().count(), 6);
    }
}
