//! Error type for HTTP parsing and I/O.

use std::fmt;
use std::io;

/// Errors reading or writing HTTP messages.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport failure.
    Io(io::Error),
    /// Peer closed the connection cleanly before a message started.
    ConnectionClosed,
    /// Malformed request line.
    BadRequestLine(String),
    /// Malformed status line.
    BadStatusLine(String),
    /// Malformed header line.
    BadHeader(String),
    /// Unknown or unsupported HTTP version.
    BadVersion(String),
    /// Malformed chunk size line in a chunked body.
    BadChunkSize(String),
    /// Content-Length missing or unparsable when required.
    BadContentLength,
    /// A protocol limit was exceeded (line length, header count, body size).
    LimitExceeded(&'static str),
}

impl HttpError {
    /// Did this error come from a body exceeding a size limit? Servers
    /// answer these with `413 Payload Too Large` instead of a generic
    /// `400`; clients treat them as a protocol error from the peer.
    pub fn body_too_large(&self) -> bool {
        matches!(
            self,
            HttpError::LimitExceeded("body cap")
                | HttpError::LimitExceeded("content length")
                | HttpError::LimitExceeded("chunked body size")
                | HttpError::LimitExceeded("body size")
        )
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::BadRequestLine(l) => write!(f, "bad request line: {l:?}"),
            HttpError::BadStatusLine(l) => write!(f, "bad status line: {l:?}"),
            HttpError::BadHeader(l) => write!(f, "bad header: {l:?}"),
            HttpError::BadVersion(v) => write!(f, "unsupported HTTP version: {v:?}"),
            HttpError::BadChunkSize(l) => write!(f, "bad chunk size: {l:?}"),
            HttpError::BadContentLength => write!(f, "missing or invalid Content-Length"),
            HttpError::LimitExceeded(what) => write!(f, "protocol limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::ConnectionClosed
        } else {
            HttpError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = HttpError::BadRequestLine("GET".into());
        assert!(e.to_string().contains("GET"));
        let e = HttpError::LimitExceeded("header count");
        assert!(e.to_string().contains("header count"));
    }

    #[test]
    fn unexpected_eof_maps_to_connection_closed() {
        let io_err = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            HttpError::from(io_err),
            HttpError::ConnectionClosed
        ));
        let io_err = io::Error::new(io::ErrorKind::BrokenPipe, "pipe");
        assert!(matches!(HttpError::from(io_err), HttpError::Io(_)));
    }
}
