//! HTTP request and response messages: types, serialization, and parsing.

use crate::body::Body;
use crate::chunked::{read_chunked_into_capped, write_chunked};
use crate::error::HttpError;
use crate::headers::HeaderMap;
use crate::parse::{
    content_length, read_headers, read_headers_into, read_line, read_line_into, MAX_BODY,
};
use crate::scratch::{flush_segments, ConnScratch, Seg};
use std::io::{BufRead, Read, Write};

/// Read a declared-length body in bounded windows instead of one
/// `read_exact` into a `resize(n)` buffer. A `Content-Length` header is
/// attacker-controlled: trusting it with an up-front allocation lets a
/// peer that never sends a byte pin `n` bytes of memory per connection.
/// Windowed growth allocates only for bytes that actually arrived
/// (plus at most one 64 KiB window).
fn read_body_windowed<R: Read>(r: &mut R, buf: &mut Vec<u8>, n: usize) -> Result<(), HttpError> {
    const WINDOW: usize = 64 * 1024;
    buf.clear();
    while buf.len() < n {
        let at = buf.len();
        let take = (n - at).min(WINDOW);
        buf.resize(at + take, 0);
        r.read_exact(&mut buf[at..])?;
    }
    Ok(())
}

/// HTTP protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    Http10,
    Http11,
}

impl Version {
    pub const fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }

    pub fn parse(s: &str) -> Result<Version, HttpError> {
        match s {
            "HTTP/1.0" => Ok(Version::Http10),
            "HTTP/1.1" => Ok(Version::Http11),
            other => Err(HttpError::BadVersion(other.to_owned())),
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub target: String,
    pub version: Version,
    pub headers: HeaderMap,
    pub body: Body,
}

impl Request {
    /// A bodiless HTTP/1.1 request.
    pub fn new(method: &str, target: &str) -> Self {
        Request {
            method: method.to_owned(),
            target: target.to_owned(),
            version: Version::Http11,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// A placeholder request for [`read_into`](Self::read_into) loops: the
    /// serve loop creates one per connection and refills it per message,
    /// reusing the method/target strings and the header map's entries.
    pub fn empty() -> Self {
        Request {
            method: String::new(),
            target: String::new(),
            version: Version::Http11,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// Should the connection stay open after this exchange?
    pub fn keep_alive(&self) -> bool {
        match self.version {
            Version::Http11 => !self.headers.list_contains("Connection", "close"),
            Version::Http10 => self.headers.list_contains("Connection", "keep-alive"),
        }
    }

    /// Serialize onto `w`. A non-empty body forces a `Content-Length`.
    pub fn write<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "{} {} {}\r\n",
            self.method,
            self.target,
            self.version.as_str()
        )?;
        let mut wrote_cl = false;
        for (name, value) in self.headers.iter() {
            if name.eq_ignore_ascii_case("Content-Length") {
                wrote_cl = true;
            }
            write!(w, "{name}: {value}\r\n")?;
        }
        if !self.body.is_empty() && !wrote_cl {
            write!(w, "Content-Length: {}\r\n", self.body.len())?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// [`write`](Self::write) through the connection's scratch buffer:
    /// the head is encoded into `scratch.out` and the whole message —
    /// body referenced, not copied — goes out in one vectored write.
    /// Wire bytes are identical to `write`.
    pub fn write_with<W: Write>(
        &self,
        w: &mut W,
        scratch: &mut ConnScratch,
    ) -> std::io::Result<()> {
        let ConnScratch { out, segs, .. } = scratch;
        out.clear();
        segs.clear();
        write!(
            out,
            "{} {} {}\r\n",
            self.method,
            self.target,
            self.version.as_str()
        )?;
        let mut wrote_cl = false;
        for (name, value) in self.headers.iter() {
            if name.eq_ignore_ascii_case("Content-Length") {
                wrote_cl = true;
            }
            write!(out, "{name}: {value}\r\n")?;
        }
        if !self.body.is_empty() && !wrote_cl {
            write!(out, "Content-Length: {}\r\n", self.body.len())?;
        }
        out.extend_from_slice(b"\r\n");
        segs.push(Seg::Out(0, out.len()));
        if !self.body.is_empty() {
            segs.push(Seg::Body(0, self.body.len()));
        }
        flush_segments(w, out, &self.body, segs)?;
        w.flush()
    }

    /// Parse a request from `r` (blocking until complete or error).
    pub fn read<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
        let mut req = Request::empty();
        let mut scratch = ConnScratch::new();
        req.read_into(r, &mut scratch)?;
        Ok(req)
    }

    /// Parse a request from `r` into `self`, reusing `self`'s strings and
    /// header entries plus the connection scratch. The steady-state serve
    /// loop (bodiless GETs on a persistent connection) refills everything
    /// in place: zero heap allocation per request.
    pub fn read_into<R: BufRead>(
        &mut self,
        r: &mut R,
        scratch: &mut ConnScratch,
    ) -> Result<(), HttpError> {
        self.read_into_capped(r, scratch, MAX_BODY)
    }

    /// [`read_into`](Self::read_into) with a caller-chosen body cap: a
    /// declared or chunked body larger than `cap` is rejected with
    /// [`HttpError::LimitExceeded`]`("body cap")` before any large
    /// allocation happens. The proxy maps this to a `413` response.
    pub fn read_into_capped<R: BufRead>(
        &mut self,
        r: &mut R,
        scratch: &mut ConnScratch,
        cap: usize,
    ) -> Result<(), HttpError> {
        {
            let line = read_line_into(r, &mut scratch.line)?;
            let mut parts = line.split_ascii_whitespace();
            let (method, target, version) =
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(m), Some(t), Some(v), None) => (m, t, v),
                    _ => return Err(HttpError::BadRequestLine(line.to_owned())),
                };
            self.version = Version::parse(version)?;
            self.method.clear();
            self.method.push_str(method);
            self.target.clear();
            self.target.push_str(target);
        }
        read_headers_into(r, &mut self.headers, &mut scratch.line)?;
        if self.headers.list_contains("Transfer-Encoding", "chunked") {
            // Request trailers are read (into scratch) and discarded,
            // matching the original parser.
            read_chunked_into_capped(
                r,
                &mut scratch.body_vec,
                &mut scratch.trailers,
                &mut scratch.line,
                cap,
            )?;
            self.body = Body::from(scratch.body_vec.as_slice());
        } else {
            match content_length(&self.headers)? {
                Some(n) if n > 0 => {
                    if n > cap {
                        return Err(HttpError::LimitExceeded("body cap"));
                    }
                    read_body_windowed(r, &mut scratch.body_vec, n)?;
                    self.body = Body::from(scratch.body_vec.as_slice());
                }
                _ => self.body = Body::empty(),
            }
        }
        Ok(())
    }
}

/// An HTTP response, including any trailer headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub version: Version,
    pub status: u16,
    pub reason: String,
    pub headers: HeaderMap,
    pub body: Body,
    /// Trailer headers (sent/received only with chunked transfer-coding).
    pub trailers: HeaderMap,
}

impl Response {
    pub fn new(status: u16) -> Self {
        Response {
            version: Version::Http11,
            status,
            reason: reason_phrase(status).to_owned(),
            headers: HeaderMap::new(),
            body: Body::empty(),
            trailers: HeaderMap::new(),
        }
    }

    /// Whether this status code forbids a body.
    pub fn bodiless_status(status: u16) -> bool {
        matches!(status, 100..=199 | 204 | 304)
    }

    pub fn keep_alive(&self) -> bool {
        match self.version {
            Version::Http11 => !self.headers.list_contains("Connection", "close"),
            Version::Http10 => self.headers.list_contains("Connection", "keep-alive"),
        }
    }

    /// Serialize. With non-empty trailers (or an explicit
    /// `Transfer-Encoding: chunked` header) the body is chunk-encoded and
    /// the `Trailer` header is emitted, per the paper's Section 2.3 flow;
    /// otherwise a `Content-Length` body is written.
    pub fn write<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let chunked = (!self.trailers.is_empty()
            || self.headers.list_contains("Transfer-Encoding", "chunked"))
            && !Self::bodiless_status(self.status);
        write!(
            w,
            "{} {} {}\r\n",
            self.version.as_str(),
            self.status,
            self.reason
        )?;
        for (name, value) in self.headers.iter() {
            // We compute framing headers ourselves.
            if name.eq_ignore_ascii_case("Content-Length")
                || name.eq_ignore_ascii_case("Transfer-Encoding")
                || name.eq_ignore_ascii_case("Trailer")
            {
                continue;
            }
            write!(w, "{name}: {value}\r\n")?;
        }
        if chunked {
            w.write_all(b"Transfer-Encoding: chunked\r\n")?;
            if !self.trailers.is_empty() {
                let names: Vec<&str> = self.trailers.iter().map(|(n, _)| n).collect();
                write!(w, "Trailer: {}\r\n", names.join(", "))?;
            }
            w.write_all(b"\r\n")?;
            write_chunked(w, &self.body, &self.trailers, 8 * 1024)?;
        } else if Self::bodiless_status(self.status) {
            w.write_all(b"\r\n")?;
        } else {
            write!(w, "Content-Length: {}\r\n\r\n", self.body.len())?;
            w.write_all(&self.body)?;
        }
        w.flush()
    }

    /// [`write`](Self::write) through the connection's scratch buffer.
    /// The head, chunk framing, and trailers are encoded into
    /// `scratch.out`; body bytes are *referenced* (recorded as [`Seg`]
    /// ranges), never copied; and the whole message is emitted with
    /// batched vectored writes. Wire bytes are identical to `write` —
    /// the byte-identity property tests hold the two together.
    pub fn write_with<W: Write>(
        &self,
        w: &mut W,
        scratch: &mut ConnScratch,
    ) -> std::io::Result<()> {
        let ConnScratch { out, segs, .. } = scratch;
        out.clear();
        segs.clear();
        let chunked = (!self.trailers.is_empty()
            || self.headers.list_contains("Transfer-Encoding", "chunked"))
            && !Self::bodiless_status(self.status);
        write!(
            out,
            "{} {} {}\r\n",
            self.version.as_str(),
            self.status,
            self.reason
        )?;
        for (name, value) in self.headers.iter() {
            // We compute framing headers ourselves.
            if name.eq_ignore_ascii_case("Content-Length")
                || name.eq_ignore_ascii_case("Transfer-Encoding")
                || name.eq_ignore_ascii_case("Trailer")
            {
                continue;
            }
            write!(out, "{name}: {value}\r\n")?;
        }
        if chunked {
            out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
            if !self.trailers.is_empty() {
                out.extend_from_slice(b"Trailer: ");
                let mut first = true;
                for (name, _) in self.trailers.iter() {
                    if !first {
                        out.extend_from_slice(b", ");
                    }
                    out.extend_from_slice(name.as_bytes());
                    first = false;
                }
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"\r\n");
            // Chunk framing: each size line closes the pending scratch
            // segment, the chunk data is referenced from the body, and
            // the chunk-terminating CRLF coalesces into the next
            // segment's scratch bytes.
            const CHUNK: usize = 8 * 1024;
            let mut mark = 0;
            let mut pos = 0;
            while pos < self.body.len() {
                let len = (self.body.len() - pos).min(CHUNK);
                write!(out, "{len:x}\r\n")?;
                segs.push(Seg::Out(mark, out.len()));
                segs.push(Seg::Body(pos, pos + len));
                mark = out.len();
                out.extend_from_slice(b"\r\n");
                pos += len;
            }
            // Terminal chunk, trailer section, final blank line.
            out.extend_from_slice(b"0\r\n");
            for (name, value) in self.trailers.iter() {
                write!(out, "{name}: {value}\r\n")?;
            }
            out.extend_from_slice(b"\r\n");
            segs.push(Seg::Out(mark, out.len()));
        } else if Self::bodiless_status(self.status) {
            out.extend_from_slice(b"\r\n");
            segs.push(Seg::Out(0, out.len()));
        } else {
            write!(out, "Content-Length: {}\r\n\r\n", self.body.len())?;
            segs.push(Seg::Out(0, out.len()));
            segs.push(Seg::Body(0, self.body.len()));
        }
        flush_segments(w, out, &self.body, segs)?;
        w.flush()
    }

    /// Parse a response. `head_request` suppresses body reading (responses
    /// to HEAD carry headers only).
    pub fn read<R: BufRead>(r: &mut R, head_request: bool) -> Result<Response, HttpError> {
        Self::read_capped(r, head_request, MAX_BODY)
    }

    /// Parse only the status line and headers, leaving the body (and any
    /// trailers) unread on `r`. The streaming relay uses this to decide —
    /// from `Content-Length`/`Transfer-Encoding` alone — whether to
    /// buffer the body as usual or cut it through segment by segment with
    /// a [`BodyReader`](crate::stream::BodyReader).
    pub fn read_head<R: BufRead>(r: &mut R) -> Result<Response, HttpError> {
        let line = read_line(r)?;
        let mut parts = line.splitn(3, ' ');
        let version = Version::parse(parts.next().unwrap_or(""))
            .map_err(|_| HttpError::BadStatusLine(line.clone()))?;
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::BadStatusLine(line.clone()))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = read_headers(r)?;
        Ok(Response {
            version,
            status,
            reason,
            headers,
            body: Body::empty(),
            trailers: HeaderMap::new(),
        })
    }

    /// Read the body (and trailers) that follow a [`read_head`](Self::read_head)
    /// call into `self`, honoring `cap` exactly like
    /// [`read_capped`](Self::read_capped). The buffered fallback for
    /// responses the streaming relay decides not to cut through.
    pub fn read_rest<R: BufRead>(&mut self, r: &mut R, cap: usize) -> Result<(), HttpError> {
        let cap = cap.min(MAX_BODY);
        if Self::bodiless_status(self.status) {
            self.body = Body::empty();
        } else if self.headers.list_contains("Transfer-Encoding", "chunked") {
            let mut body = Vec::new();
            let mut line = Vec::with_capacity(64);
            read_chunked_into_capped(r, &mut body, &mut self.trailers, &mut line, cap)?;
            self.body = body.into();
        } else if let Some(n) = content_length(&self.headers)? {
            if n > cap {
                return Err(HttpError::LimitExceeded("body cap"));
            }
            let mut body = Vec::new();
            read_body_windowed(r, &mut body, n)?;
            self.body = body.into();
        } else {
            let mut body = Vec::new();
            r.take(cap as u64 + 1).read_to_end(&mut body)?;
            if body.len() > cap {
                return Err(HttpError::LimitExceeded("body size"));
            }
            self.body = body.into();
        }
        Ok(())
    }

    /// [`read`](Self::read) with a caller-chosen body cap: a body larger
    /// than `cap` is a protocol error
    /// ([`HttpError::LimitExceeded`]`("body cap")`) rather than an
    /// allocation. A declared `Content-Length` is also read in bounded
    /// windows, so a lying peer can't pin `cap` bytes without sending
    /// them.
    pub fn read_capped<R: BufRead>(
        r: &mut R,
        head_request: bool,
        cap: usize,
    ) -> Result<Response, HttpError> {
        let line = read_line(r)?;
        let mut parts = line.splitn(3, ' ');
        let version = Version::parse(parts.next().unwrap_or(""))
            .map_err(|_| HttpError::BadStatusLine(line.clone()))?;
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::BadStatusLine(line.clone()))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = read_headers(r)?;

        let cap = cap.min(MAX_BODY);
        let mut trailers = HeaderMap::new();
        let body = if head_request || Self::bodiless_status(status) {
            Body::empty()
        } else if headers.list_contains("Transfer-Encoding", "chunked") {
            let mut body = Vec::new();
            let mut line = Vec::with_capacity(64);
            read_chunked_into_capped(r, &mut body, &mut trailers, &mut line, cap)?;
            body.into()
        } else if let Some(n) = content_length(&headers)? {
            if n > cap {
                return Err(HttpError::LimitExceeded("body cap"));
            }
            let mut body = Vec::new();
            read_body_windowed(r, &mut body, n)?;
            body.into()
        } else {
            // HTTP/1.0 style: body delimited by connection close.
            let mut body = Vec::new();
            r.take(cap as u64 + 1).read_to_end(&mut body)?;
            if body.len() > cap {
                return Err(HttpError::LimitExceeded("body size"));
            }
            body.into()
        };
        Ok(Response {
            version,
            status,
            reason,
            headers,
            body,
            trailers,
        })
    }
}

/// Canonical reason phrases for the statuses this stack emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn request_round_trip(req: &Request) -> Request {
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        Request::read(&mut BufReader::new(wire.as_slice())).unwrap()
    }

    fn response_round_trip(resp: &Response, head: bool) -> Response {
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        Response::read(&mut BufReader::new(wire.as_slice()), head).unwrap()
    }

    #[test]
    fn paper_example_request() {
        let mut req = Request::new("GET", "/mafia.html");
        req.headers.insert("host", "sig.com");
        req.headers.insert("TE", "chunked");
        req.headers
            .insert("Piggy-filter", "maxpiggy=10; rpv=\"3,4\"");
        let got = request_round_trip(&req);
        assert_eq!(got.method, "GET");
        assert_eq!(got.target, "/mafia.html");
        assert_eq!(
            got.headers.get("piggy-filter"),
            Some("maxpiggy=10; rpv=\"3,4\"")
        );
        assert!(got.body.is_empty());
        assert!(got.keep_alive());
    }

    #[test]
    fn request_with_body_gets_content_length() {
        let mut req = Request::new("POST", "/submit");
        req.body = b"payload".into();
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.contains("Content-Length: 7"));
        let got = request_round_trip(&req);
        assert_eq!(got.body, b"payload");
    }

    #[test]
    fn bad_request_lines_rejected() {
        for wire in [
            "GET /x\r\n\r\n",
            "\r\n\r\n",
            "GET /x HTTP/2.0 extra\r\n\r\n",
        ] {
            let r = Request::read(&mut BufReader::new(wire.as_bytes()));
            assert!(r.is_err(), "{wire:?} should fail");
        }
        let r = Request::read(&mut BufReader::new(&b"GET /x HTTP/3.0\r\n\r\n"[..]));
        assert!(matches!(r, Err(HttpError::BadVersion(_))));
    }

    #[test]
    fn response_content_length_round_trip() {
        let mut resp = Response::new(200);
        resp.headers.insert("Content-Type", "text/html");
        resp.body = b"<html>hi</html>".into();
        let got = response_round_trip(&resp, false);
        assert_eq!(got.status, 200);
        assert_eq!(got.reason, "OK");
        assert_eq!(got.body, resp.body);
        assert!(got.trailers.is_empty());
    }

    #[test]
    fn response_with_trailers_uses_chunked() {
        let mut resp = Response::new(200);
        resp.body = b"data".into();
        resp.trailers
            .insert("P-volume", "12; \"/a.html\" 886000000 100");
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("Trailer: P-volume"));
        // Trailer value appears after the terminal chunk.
        let zero_pos = text.find("\r\n0\r\n").expect("terminal chunk");
        let pv_pos = text.find("P-volume: 12").expect("trailer present");
        assert!(pv_pos > zero_pos, "piggyback must not delay the body");

        let got = response_round_trip(&resp, false);
        assert_eq!(got.body, b"data");
        assert_eq!(
            got.trailers.get("P-volume"),
            Some("12; \"/a.html\" 886000000 100")
        );
    }

    /// End-to-end injection guard: every construction path for header and
    /// trailer maps rejects CR/LF, so a serialized message can never carry
    /// a line the caller didn't put there.
    #[test]
    fn crlf_values_cannot_split_header_or_trailer_lines() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut resp = Response::new(200);
        resp.body = b"ok".into();
        // Untrusted path refuses...
        assert!(resp
            .headers
            .try_insert("X-Cache", "HIT\r\nInjected: header")
            .is_err());
        assert!(resp
            .trailers
            .try_insert("P-volume", "1;\r\nInjected: trailer")
            .is_err());
        // ...and the trusted path panics instead of writing it through.
        assert!(catch_unwind(AssertUnwindSafe(|| {
            resp.headers.insert("X-Cache", "HIT\r\nInjected: header")
        }))
        .is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| {
            resp.trailers.insert("P-volume", "1;\r\nInjected: trailer")
        }))
        .is_err());
        resp.headers.insert("X-Cache", "HIT");
        resp.trailers.insert("P-volume", "1;");
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("Injected"), "no injected line on the wire");
        // Same guarantee on the request side.
        let mut req = Request::new("GET", "/x");
        assert!(catch_unwind(AssertUnwindSafe(|| {
            req.headers
                .insert("Piggy-filter", "maxpiggy=5\r\nHost: evil")
        }))
        .is_err());
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        assert!(!String::from_utf8(wire).unwrap().contains("evil"));
    }

    #[test]
    fn not_modified_has_no_body() {
        let mut resp = Response::new(304);
        resp.trailers.insert("P-volume", "1;");
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        // 304 must not be chunked even if trailers were requested; the
        // piggyback is dropped rather than the framing corrupted.
        assert!(!text.contains("Transfer-Encoding"));
        let got = Response::read(&mut BufReader::new(text.as_bytes()), false).unwrap();
        assert_eq!(got.status, 304);
        assert!(got.body.is_empty());
    }

    #[test]
    fn head_response_body_suppressed() {
        let mut resp = Response::new(200);
        resp.headers.insert("Content-Length", "100");
        let mut wire = Vec::new();
        // Hand-write: headers claim 100 bytes but none follow (HEAD).
        resp.write(&mut wire).unwrap();
        // write() emits Content-Length: 0 since body is empty; build the
        // HEAD wire manually instead.
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n";
        let got = Response::read(&mut BufReader::new(&wire[..]), true).unwrap();
        assert!(got.body.is_empty());
    }

    #[test]
    fn http10_close_delimited_body() {
        let wire = b"HTTP/1.0 200 OK\r\n\r\nstream-until-close";
        let got = Response::read(&mut BufReader::new(&wire[..]), false).unwrap();
        assert_eq!(got.body, b"stream-until-close");
        assert!(!got.keep_alive());
    }

    #[test]
    fn keep_alive_semantics() {
        let mut req = Request::new("GET", "/");
        assert!(req.keep_alive(), "1.1 defaults to keep-alive");
        req.headers.insert("Connection", "close");
        assert!(!req.keep_alive());
        let mut r10 = Request::new("GET", "/");
        r10.version = Version::Http10;
        assert!(!r10.keep_alive(), "1.0 defaults to close");
        r10.headers.insert("Connection", "keep-alive");
        assert!(r10.keep_alive());
    }

    #[test]
    fn chunked_request_body() {
        let wire = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let got = Request::read(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(got.body, b"abc");
    }

    /// `write_with` must emit exactly the bytes `write` does, across every
    /// framing mode (Content-Length, chunked + trailers, bodiless), for
    /// bodies spanning multiple chunks, and when the scratch is reused.
    #[test]
    fn write_with_is_byte_identical_to_write() {
        let mut scratch = ConnScratch::new();
        let mut responses = Vec::new();
        let mut cl = Response::new(200);
        cl.headers.insert("Content-Type", "text/html");
        cl.body = b"<html>hi</html>".into();
        responses.push(cl);
        let mut chunked = Response::new(200);
        chunked.headers.insert("X-Cache", "MISS");
        chunked.body = vec![b'x'; 20_000].into(); // > 2 chunks at 8 KiB
        chunked
            .trailers
            .insert("P-volume", "7; \"/a.html\" 886000000 1024");
        chunked.trailers.insert("X-Extra", "1");
        responses.push(chunked);
        let mut empty_chunked = Response::new(200);
        empty_chunked.trailers.insert("P-volume", "1;");
        responses.push(empty_chunked);
        let mut bodiless = Response::new(304);
        bodiless.headers.insert("Last-Modified", "now");
        responses.push(bodiless);
        responses.push(Response::new(204));
        for resp in &responses {
            let mut seed = Vec::new();
            resp.write(&mut seed).unwrap();
            let mut fast = Vec::new();
            resp.write_with(&mut fast, &mut scratch).unwrap();
            assert_eq!(
                fast,
                seed,
                "status {} body {}B trailers {}",
                resp.status,
                resp.body.len(),
                resp.trailers.len()
            );
        }
        // Requests too.
        let mut req = Request::new("GET", "/mafia.html");
        req.headers.insert("Host", "sig.com");
        req.headers.insert("TE", "chunked");
        let mut post = Request::new("POST", "/submit");
        post.body = b"payload".into();
        for req in [&req, &post] {
            let mut seed = Vec::new();
            req.write(&mut seed).unwrap();
            let mut fast = Vec::new();
            req.write_with(&mut fast, &mut scratch).unwrap();
            assert_eq!(fast, seed, "{} {}", req.method, req.target);
        }
    }

    /// Regression: a `Content-Length` larger than the cap is rejected
    /// *before* any body-sized allocation, and a peer that declares a big
    /// body but never sends it can't pin more than one read window.
    #[test]
    fn adversarial_content_length_cannot_force_a_huge_allocation() {
        // Over the cap: rejected up front.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        let mut req = Request::empty();
        let mut scratch = ConnScratch::new();
        let err = req
            .read_into_capped(&mut BufReader::new(&wire[..]), &mut scratch, 64 * 1024)
            .unwrap_err();
        assert!(matches!(err, HttpError::LimitExceeded("body cap")));
        assert!(err.body_too_large());
        assert_eq!(scratch.body_vec.capacity(), 0, "no allocation happened");

        // Under the cap but the peer hangs up after 10 bytes: the buffer
        // only ever grew by bounded windows, not the full claim.
        let mut wire = b"POST /x HTTP/1.1\r\nContent-Length: 50000000\r\n\r\n".to_vec();
        wire.extend_from_slice(&[b'a'; 10]);
        let err = req
            .read_into(&mut BufReader::new(wire.as_slice()), &mut scratch)
            .unwrap_err();
        assert!(matches!(err, HttpError::ConnectionClosed));
        assert!(
            scratch.body_vec.capacity() <= 256 * 1024,
            "windowed read allocated {} for a 50 MB claim",
            scratch.body_vec.capacity()
        );

        // Same guarantee on the response side.
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 1000000\r\n\r\n";
        let err =
            Response::read_capped(&mut BufReader::new(&wire[..]), false, 64 * 1024).unwrap_err();
        assert!(matches!(err, HttpError::LimitExceeded("body cap")));
        assert!(err.body_too_large());

        // Chunked bodies honor the same cap.
        let mut wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        crate::chunked::write_chunked(&mut wire, &vec![b'x'; 100_000], &HeaderMap::new(), 8 * 1024)
            .unwrap();
        let err = Response::read_capped(&mut BufReader::new(wire.as_slice()), false, 64 * 1024)
            .unwrap_err();
        assert!(err.body_too_large());
    }

    #[test]
    fn capped_reads_accept_bodies_under_the_cap() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyz";
        let mut req = Request::empty();
        let mut scratch = ConnScratch::new();
        req.read_into_capped(&mut BufReader::new(&wire[..]), &mut scratch, 64)
            .unwrap();
        assert_eq!(req.body, b"wxyz");
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        let resp = Response::read_capped(&mut BufReader::new(&wire[..]), false, 64).unwrap();
        assert_eq!(resp.body, b"hi");
        assert_eq!(reason_phrase(413), "Payload Too Large");
    }

    /// `read_head` + `read_rest` must reconstruct exactly what one-shot
    /// `read` parses, across every framing mode.
    #[test]
    fn split_head_rest_reads_match_read() {
        let mut responses = Vec::new();
        let mut cl = Response::new(200);
        cl.headers.insert("Content-Type", "text/html");
        cl.body = vec![b'y'; 20_000].into();
        responses.push(cl);
        let mut chunked = Response::new(200);
        chunked.body = vec![b'z'; 30_000].into();
        chunked
            .trailers
            .insert("P-volume", "3; \"/v.html\" 886000000 64");
        responses.push(chunked);
        responses.push(Response::new(304));
        for resp in &responses {
            let mut wire = Vec::new();
            resp.write(&mut wire).unwrap();
            let whole = Response::read(&mut BufReader::new(wire.as_slice()), false).unwrap();
            let mut r = BufReader::new(wire.as_slice());
            let mut split = Response::read_head(&mut r).unwrap();
            assert!(split.body.is_empty(), "head read must not consume the body");
            split.read_rest(&mut r, MAX_BODY).unwrap();
            assert_eq!(split, whole, "status {}", resp.status);
        }
    }

    /// A reused `Request` + scratch parses a stream of pipelined requests
    /// with the same results as fresh `Request::read` calls.
    #[test]
    fn read_into_reuses_and_matches_read() {
        let wire = b"GET /a.html HTTP/1.1\r\nHost: one\r\nTE: chunked\r\n\r\n\
                     POST /b HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyz\
                     GET /ccc HTTP/1.0\r\n\r\n";
        let mut fresh_reader = BufReader::new(&wire[..]);
        let mut reuse_reader = BufReader::new(&wire[..]);
        let mut req = Request::empty();
        let mut scratch = ConnScratch::new();
        for _ in 0..3 {
            let fresh = Request::read(&mut fresh_reader).unwrap();
            req.read_into(&mut reuse_reader, &mut scratch).unwrap();
            assert_eq!(req, fresh);
        }
        assert!(matches!(
            req.read_into(&mut reuse_reader, &mut scratch),
            Err(HttpError::ConnectionClosed)
        ));
    }
}
