//! HTTP request and response messages: types, serialization, and parsing.

use crate::chunked::{read_chunked, write_chunked};
use crate::error::HttpError;
use crate::headers::HeaderMap;
use crate::parse::{content_length, read_headers, read_line, MAX_BODY};
use std::io::{BufRead, Read, Write};

/// HTTP protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    Http10,
    Http11,
}

impl Version {
    pub const fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }

    pub fn parse(s: &str) -> Result<Version, HttpError> {
        match s {
            "HTTP/1.0" => Ok(Version::Http10),
            "HTTP/1.1" => Ok(Version::Http11),
            other => Err(HttpError::BadVersion(other.to_owned())),
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub target: String,
    pub version: Version,
    pub headers: HeaderMap,
    pub body: Vec<u8>,
}

impl Request {
    /// A bodiless HTTP/1.1 request.
    pub fn new(method: &str, target: &str) -> Self {
        Request {
            method: method.to_owned(),
            target: target.to_owned(),
            version: Version::Http11,
            headers: HeaderMap::new(),
            body: Vec::new(),
        }
    }

    /// Should the connection stay open after this exchange?
    pub fn keep_alive(&self) -> bool {
        match self.version {
            Version::Http11 => !self.headers.list_contains("Connection", "close"),
            Version::Http10 => self.headers.list_contains("Connection", "keep-alive"),
        }
    }

    /// Serialize onto `w`. A non-empty body forces a `Content-Length`.
    pub fn write<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "{} {} {}\r\n",
            self.method,
            self.target,
            self.version.as_str()
        )?;
        let mut wrote_cl = false;
        for (name, value) in self.headers.iter() {
            if name.eq_ignore_ascii_case("Content-Length") {
                wrote_cl = true;
            }
            write!(w, "{name}: {value}\r\n")?;
        }
        if !self.body.is_empty() && !wrote_cl {
            write!(w, "Content-Length: {}\r\n", self.body.len())?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Parse a request from `r` (blocking until complete or error).
    pub fn read<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
        let line = read_line(r)?;
        let mut parts = line.split_ascii_whitespace();
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) => (m, t, v),
                _ => return Err(HttpError::BadRequestLine(line.clone())),
            };
        let version = Version::parse(version)?;
        let headers = read_headers(r)?;
        let body = if headers.list_contains("Transfer-Encoding", "chunked") {
            read_chunked(r)?.0
        } else {
            match content_length(&headers)? {
                Some(n) if n > 0 => {
                    let mut body = vec![0u8; n];
                    r.read_exact(&mut body)?;
                    body
                }
                _ => Vec::new(),
            }
        };
        Ok(Request {
            method: method.to_owned(),
            target: target.to_owned(),
            version,
            headers,
            body,
        })
    }
}

/// An HTTP response, including any trailer headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub version: Version,
    pub status: u16,
    pub reason: String,
    pub headers: HeaderMap,
    pub body: Vec<u8>,
    /// Trailer headers (sent/received only with chunked transfer-coding).
    pub trailers: HeaderMap,
}

impl Response {
    pub fn new(status: u16) -> Self {
        Response {
            version: Version::Http11,
            status,
            reason: reason_phrase(status).to_owned(),
            headers: HeaderMap::new(),
            body: Vec::new(),
            trailers: HeaderMap::new(),
        }
    }

    /// Whether this status code forbids a body.
    pub fn bodiless_status(status: u16) -> bool {
        matches!(status, 100..=199 | 204 | 304)
    }

    pub fn keep_alive(&self) -> bool {
        match self.version {
            Version::Http11 => !self.headers.list_contains("Connection", "close"),
            Version::Http10 => self.headers.list_contains("Connection", "keep-alive"),
        }
    }

    /// Serialize. With non-empty trailers (or an explicit
    /// `Transfer-Encoding: chunked` header) the body is chunk-encoded and
    /// the `Trailer` header is emitted, per the paper's Section 2.3 flow;
    /// otherwise a `Content-Length` body is written.
    pub fn write<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let chunked = (!self.trailers.is_empty()
            || self.headers.list_contains("Transfer-Encoding", "chunked"))
            && !Self::bodiless_status(self.status);
        write!(
            w,
            "{} {} {}\r\n",
            self.version.as_str(),
            self.status,
            self.reason
        )?;
        for (name, value) in self.headers.iter() {
            // We compute framing headers ourselves.
            if name.eq_ignore_ascii_case("Content-Length")
                || name.eq_ignore_ascii_case("Transfer-Encoding")
                || name.eq_ignore_ascii_case("Trailer")
            {
                continue;
            }
            write!(w, "{name}: {value}\r\n")?;
        }
        if chunked {
            w.write_all(b"Transfer-Encoding: chunked\r\n")?;
            if !self.trailers.is_empty() {
                let names: Vec<&str> = self.trailers.iter().map(|(n, _)| n).collect();
                write!(w, "Trailer: {}\r\n", names.join(", "))?;
            }
            w.write_all(b"\r\n")?;
            write_chunked(w, &self.body, &self.trailers, 8 * 1024)?;
        } else if Self::bodiless_status(self.status) {
            w.write_all(b"\r\n")?;
        } else {
            write!(w, "Content-Length: {}\r\n\r\n", self.body.len())?;
            w.write_all(&self.body)?;
        }
        w.flush()
    }

    /// Parse a response. `head_request` suppresses body reading (responses
    /// to HEAD carry headers only).
    pub fn read<R: BufRead>(r: &mut R, head_request: bool) -> Result<Response, HttpError> {
        let line = read_line(r)?;
        let mut parts = line.splitn(3, ' ');
        let version = Version::parse(parts.next().unwrap_or(""))
            .map_err(|_| HttpError::BadStatusLine(line.clone()))?;
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::BadStatusLine(line.clone()))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = read_headers(r)?;

        let mut trailers = HeaderMap::new();
        let body = if head_request || Self::bodiless_status(status) {
            Vec::new()
        } else if headers.list_contains("Transfer-Encoding", "chunked") {
            let (body, t) = read_chunked(r)?;
            trailers = t;
            body
        } else if let Some(n) = content_length(&headers)? {
            let mut body = vec![0u8; n];
            r.read_exact(&mut body)?;
            body
        } else {
            // HTTP/1.0 style: body delimited by connection close.
            let mut body = Vec::new();
            r.take(MAX_BODY as u64 + 1).read_to_end(&mut body)?;
            if body.len() > MAX_BODY {
                return Err(HttpError::LimitExceeded("body size"));
            }
            body
        };
        Ok(Response {
            version,
            status,
            reason,
            headers,
            body,
            trailers,
        })
    }
}

/// Canonical reason phrases for the statuses this stack emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn request_round_trip(req: &Request) -> Request {
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        Request::read(&mut BufReader::new(wire.as_slice())).unwrap()
    }

    fn response_round_trip(resp: &Response, head: bool) -> Response {
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        Response::read(&mut BufReader::new(wire.as_slice()), head).unwrap()
    }

    #[test]
    fn paper_example_request() {
        let mut req = Request::new("GET", "/mafia.html");
        req.headers.insert("host", "sig.com");
        req.headers.insert("TE", "chunked");
        req.headers
            .insert("Piggy-filter", "maxpiggy=10; rpv=\"3,4\"");
        let got = request_round_trip(&req);
        assert_eq!(got.method, "GET");
        assert_eq!(got.target, "/mafia.html");
        assert_eq!(
            got.headers.get("piggy-filter"),
            Some("maxpiggy=10; rpv=\"3,4\"")
        );
        assert!(got.body.is_empty());
        assert!(got.keep_alive());
    }

    #[test]
    fn request_with_body_gets_content_length() {
        let mut req = Request::new("POST", "/submit");
        req.body = b"payload".to_vec();
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.contains("Content-Length: 7"));
        let got = request_round_trip(&req);
        assert_eq!(got.body, b"payload");
    }

    #[test]
    fn bad_request_lines_rejected() {
        for wire in [
            "GET /x\r\n\r\n",
            "\r\n\r\n",
            "GET /x HTTP/2.0 extra\r\n\r\n",
        ] {
            let r = Request::read(&mut BufReader::new(wire.as_bytes()));
            assert!(r.is_err(), "{wire:?} should fail");
        }
        let r = Request::read(&mut BufReader::new(&b"GET /x HTTP/3.0\r\n\r\n"[..]));
        assert!(matches!(r, Err(HttpError::BadVersion(_))));
    }

    #[test]
    fn response_content_length_round_trip() {
        let mut resp = Response::new(200);
        resp.headers.insert("Content-Type", "text/html");
        resp.body = b"<html>hi</html>".to_vec();
        let got = response_round_trip(&resp, false);
        assert_eq!(got.status, 200);
        assert_eq!(got.reason, "OK");
        assert_eq!(got.body, resp.body);
        assert!(got.trailers.is_empty());
    }

    #[test]
    fn response_with_trailers_uses_chunked() {
        let mut resp = Response::new(200);
        resp.body = b"data".to_vec();
        resp.trailers
            .insert("P-volume", "12; \"/a.html\" 886000000 100");
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("Trailer: P-volume"));
        // Trailer value appears after the terminal chunk.
        let zero_pos = text.find("\r\n0\r\n").expect("terminal chunk");
        let pv_pos = text.find("P-volume: 12").expect("trailer present");
        assert!(pv_pos > zero_pos, "piggyback must not delay the body");

        let got = response_round_trip(&resp, false);
        assert_eq!(got.body, b"data");
        assert_eq!(
            got.trailers.get("P-volume"),
            Some("12; \"/a.html\" 886000000 100")
        );
    }

    /// End-to-end injection guard: every construction path for header and
    /// trailer maps rejects CR/LF, so a serialized message can never carry
    /// a line the caller didn't put there.
    #[test]
    fn crlf_values_cannot_split_header_or_trailer_lines() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut resp = Response::new(200);
        resp.body = b"ok".to_vec();
        // Untrusted path refuses...
        assert!(resp
            .headers
            .try_insert("X-Cache", "HIT\r\nInjected: header")
            .is_err());
        assert!(resp
            .trailers
            .try_insert("P-volume", "1;\r\nInjected: trailer")
            .is_err());
        // ...and the trusted path panics instead of writing it through.
        assert!(catch_unwind(AssertUnwindSafe(|| {
            resp.headers.insert("X-Cache", "HIT\r\nInjected: header")
        }))
        .is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| {
            resp.trailers.insert("P-volume", "1;\r\nInjected: trailer")
        }))
        .is_err());
        resp.headers.insert("X-Cache", "HIT");
        resp.trailers.insert("P-volume", "1;");
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("Injected"), "no injected line on the wire");
        // Same guarantee on the request side.
        let mut req = Request::new("GET", "/x");
        assert!(catch_unwind(AssertUnwindSafe(|| {
            req.headers
                .insert("Piggy-filter", "maxpiggy=5\r\nHost: evil")
        }))
        .is_err());
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        assert!(!String::from_utf8(wire).unwrap().contains("evil"));
    }

    #[test]
    fn not_modified_has_no_body() {
        let mut resp = Response::new(304);
        resp.trailers.insert("P-volume", "1;");
        let mut wire = Vec::new();
        resp.write(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        // 304 must not be chunked even if trailers were requested; the
        // piggyback is dropped rather than the framing corrupted.
        assert!(!text.contains("Transfer-Encoding"));
        let got = Response::read(&mut BufReader::new(text.as_bytes()), false).unwrap();
        assert_eq!(got.status, 304);
        assert!(got.body.is_empty());
    }

    #[test]
    fn head_response_body_suppressed() {
        let mut resp = Response::new(200);
        resp.headers.insert("Content-Length", "100");
        let mut wire = Vec::new();
        // Hand-write: headers claim 100 bytes but none follow (HEAD).
        resp.write(&mut wire).unwrap();
        // write() emits Content-Length: 0 since body is empty; build the
        // HEAD wire manually instead.
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n";
        let got = Response::read(&mut BufReader::new(&wire[..]), true).unwrap();
        assert!(got.body.is_empty());
    }

    #[test]
    fn http10_close_delimited_body() {
        let wire = b"HTTP/1.0 200 OK\r\n\r\nstream-until-close";
        let got = Response::read(&mut BufReader::new(&wire[..]), false).unwrap();
        assert_eq!(got.body, b"stream-until-close");
        assert!(!got.keep_alive());
    }

    #[test]
    fn keep_alive_semantics() {
        let mut req = Request::new("GET", "/");
        assert!(req.keep_alive(), "1.1 defaults to keep-alive");
        req.headers.insert("Connection", "close");
        assert!(!req.keep_alive());
        let mut r10 = Request::new("GET", "/");
        r10.version = Version::Http10;
        assert!(!r10.keep_alive(), "1.0 defaults to close");
        r10.headers.insert("Connection", "keep-alive");
        assert!(r10.keep_alive());
    }

    #[test]
    fn chunked_request_body() {
        let wire = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let got = Request::read(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(got.body, b"abc");
    }
}
