//! A case-insensitive, order-preserving header map.

use std::fmt;

/// HTTP header collection. Lookup is case-insensitive; insertion order is
/// preserved on the wire. Multiple headers with the same name are kept.
///
/// A map can be recycled across messages on a persistent connection:
/// [`reset`](Self::reset) keeps the `(String, String)` pairs (and their
/// capacity) in a spare pool, and [`try_insert_recycled`]
/// (Self::try_insert_recycled) refills them without allocating.
#[derive(Default)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
    /// Cleared pairs kept for reuse; never observable (not compared,
    /// cloned, or iterated).
    spare: Vec<(String, String)>,
}

/// Is `name` a valid RFC 7230 header field name (token)?
pub fn valid_header_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| {
            b.is_ascii_alphanumeric()
                || matches!(
                    b,
                    b'!' | b'#'
                        | b'$'
                        | b'%'
                        | b'&'
                        | b'\''
                        | b'*'
                        | b'+'
                        | b'-'
                        | b'.'
                        | b'^'
                        | b'_'
                        | b'`'
                        | b'|'
                        | b'~'
                )
        })
}

/// Is `value` a valid header field value (no CR/LF/NUL)?
pub fn valid_header_value(value: &str) -> bool {
    value.bytes().all(|b| b != b'\r' && b != b'\n' && b != 0)
}

impl HeaderMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header. Panics on syntactically invalid names or values —
    /// in release builds too, because a CR/LF smuggled into a value here
    /// would otherwise be written to the wire verbatim and split the
    /// header (or trailer) line into an injected one. Use
    /// [`try_insert`](Self::try_insert) for untrusted input.
    pub fn insert(&mut self, name: &str, value: &str) {
        assert!(valid_header_name(name), "invalid header name {name:?}");
        assert!(
            valid_header_value(value),
            "invalid value for header {name:?}"
        );
        self.entries.push((name.to_owned(), value.to_owned()));
    }

    /// Append a header the caller already owns — no `to_owned` copies.
    /// Same validation (and panic) contract as [`insert`](Self::insert).
    pub fn insert_owned(&mut self, name: String, value: String) {
        assert!(valid_header_name(&name), "invalid header name {name:?}");
        assert!(
            valid_header_value(&value),
            "invalid value for header {name:?}"
        );
        self.entries.push((name, value));
    }

    /// Append after validating.
    pub fn try_insert(&mut self, name: &str, value: &str) -> Result<(), InvalidHeader> {
        if !valid_header_name(name) {
            return Err(InvalidHeader::Name(name.to_owned()));
        }
        if !valid_header_value(value) {
            return Err(InvalidHeader::Value(name.to_owned()));
        }
        self.entries
            .push((name.to_owned(), value.trim().to_owned()));
        Ok(())
    }

    /// [`try_insert`](Self::try_insert), but the owned strings come from
    /// the spare pool when one is available: after the first few messages
    /// on a connection a recycled map inserts without heap allocation.
    /// Value whitespace is trimmed, matching `try_insert`.
    pub fn try_insert_recycled(&mut self, name: &str, value: &str) -> Result<(), InvalidHeader> {
        if !valid_header_name(name) {
            return Err(InvalidHeader::Name(name.to_owned()));
        }
        if !valid_header_value(value) {
            return Err(InvalidHeader::Value(name.to_owned()));
        }
        let (mut n, mut v) = self.spare.pop().unwrap_or_default();
        n.clear();
        n.push_str(name);
        v.clear();
        v.push_str(value.trim());
        self.entries.push((n, v));
        Ok(())
    }

    /// Clear the map, keeping the entry strings (and their capacity) for
    /// reuse by [`try_insert_recycled`](Self::try_insert_recycled).
    pub fn reset(&mut self) {
        self.spare.append(&mut self.entries);
    }

    /// Replace all occurrences of `name` with a single value.
    pub fn set(&mut self, name: &str, value: &str) {
        self.remove(name);
        self.insert(name, value);
    }

    /// First value for `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all occurrences; returns whether any existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.len() != before
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Does a comma-separated list header contain `token`
    /// (case-insensitive)? E.g. `Connection: keep-alive, TE`.
    pub fn list_contains(&self, name: &str, token: &str) -> bool {
        self.get_all(name).any(|v| {
            v.split(',')
                .any(|part| part.trim().eq_ignore_ascii_case(token))
        })
    }
}

// The spare pool is an invisible implementation detail: equality,
// cloning, and debug output consider only the live entries.

impl Clone for HeaderMap {
    fn clone(&self) -> Self {
        HeaderMap {
            entries: self.entries.clone(),
            spare: Vec::new(),
        }
    }
}

impl PartialEq for HeaderMap {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for HeaderMap {}

impl fmt::Debug for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeaderMap")
            .field("entries", &self.entries)
            .finish()
    }
}

/// Header validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidHeader {
    Name(String),
    Value(String),
}

impl fmt::Display for InvalidHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidHeader::Name(n) => write!(f, "invalid header name {n:?}"),
            InvalidHeader::Value(n) => write!(f, "invalid value for header {n:?}"),
        }
    }
}

impl std::error::Error for InvalidHeader {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut h = HeaderMap::new();
        h.insert("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("Content-Length"));
    }

    #[test]
    fn multi_value_preserved_in_order() {
        let mut h = HeaderMap::new();
        h.insert("Via", "proxy-a");
        h.insert("Via", "proxy-b");
        let all: Vec<&str> = h.get_all("via").collect();
        assert_eq!(all, vec!["proxy-a", "proxy-b"]);
        assert_eq!(h.get("Via"), Some("proxy-a"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn set_replaces_all() {
        let mut h = HeaderMap::new();
        h.insert("X", "1");
        h.insert("X", "2");
        h.set("x", "3");
        assert_eq!(h.get_all("X").count(), 1);
        assert_eq!(h.get("X"), Some("3"));
    }

    #[test]
    fn remove_reports_presence() {
        let mut h = HeaderMap::new();
        h.insert("A", "1");
        assert!(h.remove("a"));
        assert!(!h.remove("a"));
        assert!(h.is_empty());
    }

    #[test]
    fn name_validation() {
        assert!(valid_header_name("Piggy-filter"));
        assert!(valid_header_name("TE"));
        assert!(!valid_header_name(""));
        assert!(!valid_header_name("Bad Header"));
        assert!(!valid_header_name("Bad:Header"));
        assert!(valid_header_value("maxpiggy=10; rpv=\"3,4\""));
        assert!(!valid_header_value("evil\r\nInjected: yes"));
    }

    /// `insert` must reject CR/LF values in release builds too: a
    /// `debug_assert!` alone let `evil\r\nInjected: yes` reach the wire
    /// verbatim, splitting the header line. Both entry points are probed
    /// (catch_unwind rather than `#[should_panic]` so one test covers
    /// every vector and runs identically under `--release`).
    #[test]
    fn insert_rejects_crlf_in_release_builds() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let vectors: &[(&str, &str)] = &[
            ("X-Evil", "ok\r\nInjected: yes"),
            ("X-Evil", "ok\rInjected: yes"),
            ("X-Evil", "ok\nInjected: yes"),
            ("X-Evil", "nul\0byte"),
            ("Bad Name", "v"),
            ("Bad:Name", "v"),
            ("", "v"),
        ];
        for &(name, value) in vectors {
            let mut h = HeaderMap::new();
            let r = catch_unwind(AssertUnwindSafe(|| h.insert(name, value)));
            assert!(r.is_err(), "insert({name:?}, {value:?}) must panic");
            assert!(h.is_empty(), "nothing may be appended on rejection");
            let mut h = HeaderMap::new();
            assert!(h.try_insert(name, value).is_err());
            let r = catch_unwind(AssertUnwindSafe(|| h.set(name, value)));
            assert!(r.is_err(), "set({name:?}, {value:?}) must panic");
        }
    }

    #[test]
    fn try_insert_rejects_and_trims() {
        let mut h = HeaderMap::new();
        assert!(h.try_insert("Bad Name", "x").is_err());
        assert!(h.try_insert("Good", "bad\nvalue").is_err());
        h.try_insert("Good", "  padded  ").unwrap();
        assert_eq!(h.get("good"), Some("padded"));
    }

    #[test]
    fn insert_owned_matches_insert() {
        let mut a = HeaderMap::new();
        a.insert("X-Cache", "HIT");
        let mut b = HeaderMap::new();
        b.insert_owned("X-Cache".to_owned(), "HIT".to_owned());
        assert_eq!(a, b);
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut h = HeaderMap::new();
        assert!(catch_unwind(AssertUnwindSafe(|| {
            h.insert_owned("X".to_owned(), "bad\r\nvalue".to_owned())
        }))
        .is_err());
        assert!(h.is_empty());
    }

    /// Recycled inserts behave exactly like `try_insert` (validation,
    /// trimming), and reset + refill reuses the string storage.
    #[test]
    fn reset_recycles_entry_strings() {
        let mut h = HeaderMap::new();
        h.try_insert_recycled("Host", "  example.com  ").unwrap();
        assert_eq!(h.get("host"), Some("example.com"));
        let ptr_before = h.get("host").unwrap().as_ptr();
        h.reset();
        assert!(h.is_empty());
        h.try_insert_recycled("Host", "example.org").unwrap();
        assert_eq!(h.get("host"), Some("example.org"));
        // Same String allocation, refilled in place.
        assert_eq!(h.get("host").unwrap().as_ptr(), ptr_before);
        // Validation still rejects.
        assert!(h.try_insert_recycled("Bad Name", "x").is_err());
        assert!(h.try_insert_recycled("Good", "bad\nvalue").is_err());
        // The spare pool never leaks into equality or clones.
        let mut plain = HeaderMap::new();
        plain.insert("Host", "example.org");
        assert_eq!(h, plain);
        let cloned = h.clone();
        assert_eq!(cloned, plain);
    }

    #[test]
    fn list_contains_tokens() {
        let mut h = HeaderMap::new();
        h.insert("Connection", "keep-alive, TE");
        assert!(h.list_contains("connection", "te"));
        assert!(h.list_contains("Connection", "Keep-Alive"));
        assert!(!h.list_contains("Connection", "close"));
        h.insert("TE", "chunked");
        assert!(h.list_contains("TE", "chunked"));
    }
}
