//! Timestamped read hooks for the record/replay harness.
//!
//! The record tap needs two wall-clock marks per upstream exchange:
//! **TTFB** (request forwarded → first response byte available) and
//! **transfer duration** (first byte → message complete). Parsing happens
//! inside [`crate::Response::read`], so the tap cannot observe the first
//! byte directly; [`TimedReader`] wraps the upstream reader and notes the
//! instant the first byte since the last [`reset`](TimedReader::reset)
//! became available.

use std::io::{self, BufRead, Read};
use std::time::Instant;

/// A `Read`/`BufRead` adapter that records when the first byte (since the
/// last `reset`) was observed.
#[derive(Debug)]
pub struct TimedReader<R> {
    inner: R,
    first_byte: Option<Instant>,
}

impl<R> TimedReader<R> {
    pub fn new(inner: R) -> Self {
        TimedReader {
            inner,
            first_byte: None,
        }
    }

    /// Arm the timer for the next exchange on this connection.
    pub fn reset(&mut self) {
        self.first_byte = None;
    }

    /// When the first byte since the last `reset` was observed, if any.
    pub fn first_byte_at(&self) -> Option<Instant> {
        self.first_byte
    }

    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    pub fn into_inner(self) -> R {
        self.inner
    }

    fn mark(&mut self) {
        if self.first_byte.is_none() {
            self.first_byte = Some(Instant::now());
        }
    }
}

impl<R: Read> Read for TimedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            self.mark();
        }
        Ok(n)
    }
}

impl<R: BufRead> BufRead for TimedReader<R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        let available = !self.inner.fill_buf()?.is_empty();
        if available {
            self.mark();
        }
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn marks_first_byte_once_per_reset() {
        let data = b"abcdef".to_vec();
        let mut r = TimedReader::new(BufReader::new(data.as_slice()));
        assert!(r.first_byte_at().is_none());
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        let first = r.first_byte_at().expect("marked on first read");
        r.read_exact(&mut buf).unwrap();
        assert_eq!(r.first_byte_at(), Some(first), "mark is sticky");
        r.reset();
        assert!(r.first_byte_at().is_none());
    }

    #[test]
    fn empty_reads_do_not_mark() {
        let mut r = TimedReader::new(BufReader::new(&b""[..]));
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        assert!(r.first_byte_at().is_none());
        assert!(r.fill_buf().unwrap().is_empty());
        assert!(r.first_byte_at().is_none());
    }

    #[test]
    fn works_through_bufread_parsing() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi".to_vec();
        let mut r = TimedReader::new(BufReader::new(wire.as_slice()));
        let resp = crate::Response::read(&mut r, false).unwrap();
        assert_eq!(resp.status, 200);
        assert!(r.first_byte_at().is_some());
    }
}
