//! # piggyback-httpwire
//!
//! A from-scratch HTTP/1.1 subset built for the piggyback protocol:
//! request/response parsing and serialization, persistent-connection
//! semantics, and — crucially — **chunked transfer-coding with trailers**,
//! the mechanism the paper uses to append the `P-volume` piggyback after
//! the response body (Section 2.3) so the piggyback never delays the data.
//!
//! The crate is transport-agnostic: everything reads from `BufRead` and
//! writes to `Write`, so it works over `TcpStream`s, Unix sockets, or
//! in-memory buffers in tests.
//!
//! ```
//! use piggyback_httpwire::{Request, Response};
//! use std::io::BufReader;
//!
//! let mut req = Request::new("GET", "/mafia.html");
//! req.headers.insert("host", "sig.com");
//! req.headers.insert("TE", "chunked");
//! req.headers.insert("Piggy-filter", "maxpiggy=10; rpv=\"3,4\"");
//!
//! let mut resp = Response::new(200);
//! resp.body = b"<html>...</html>".into();
//! resp.trailers.insert("P-volume", "7; \"/a.html\" 886000000 1024");
//!
//! let mut wire = Vec::new();
//! resp.write(&mut wire).unwrap();
//! let parsed = Response::read(&mut BufReader::new(wire.as_slice()), false).unwrap();
//! assert_eq!(parsed.trailers.get("P-volume"), resp.trailers.get("P-volume"));
//! ```

pub mod body;
pub mod chunked;
pub mod error;
pub mod headers;
pub mod message;
pub mod parse;
pub mod scratch;
pub mod stream;
pub mod timing;

pub use body::Body;
pub use chunked::{read_chunked, read_chunked_into, read_chunked_into_capped, write_chunked};
pub use error::HttpError;
pub use headers::{HeaderMap, InvalidHeader};
pub use message::{reason_phrase, Request, Response, Version};
pub use scratch::{flush_segments, write_all_parts, ConnScratch, Seg};
pub use stream::{encode_stream_head, BodyReader, BodyWriter, StreamFraming, STREAM_CHUNK};
pub use timing::TimedReader;
