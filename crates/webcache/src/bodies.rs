//! Co-sharded store of cached response bodies as shared [`Body`]s.
//!
//! The [`ShardedCache`](crate::sharded::ShardedCache) tracks metadata
//! (sizes, freshness, recency); the actual payload bytes live here,
//! routed by the same [`shard_index`] hash so "everything about resource
//! `r` lives in shard `i`" stays true — an insert-plus-evictee-cleanup
//! touches exactly one lock.
//!
//! Bodies are `Arc`-backed: [`get`](ShardedBodyStore::get) hands back a
//! refcount bump, so a proxy cache hit serves the stored bytes without
//! copying them. The bytes were copied exactly once, when the resource
//! was fetched and retained.
//!
//! ## Prefix entries
//!
//! Large objects are not cached whole. The streaming cut-through path
//! tees the first `--prefix-bytes` of any body above `--stream-threshold`
//! into a [`Body::prefix`] entry here: a prefix hit serves the head
//! zero-copy at cache-hit latency while only the suffix streams from the
//! origin. Prefix entries live under a separate per-shard byte budget
//! with recency-biased retention — every prefix hit *and* every
//! piggybacked volume mention ([`note_mention`]) bumps an entry's
//! recency, so the volume metadata the paper piggybacks decides which
//! prefixes stay, exactly like it biases the metadata cache's policy.
//!
//! Each shard keeps exact byte occupancy (full + prefix) and mirrors it
//! into lock-free gauges on lock release, in the same pattern as the
//! metadata cache's `ShardGauges`, so `/__pb/metrics` scrapes never take
//! a shard lock.
//!
//! [`note_mention`]: ShardedBodyStore::note_mention

use crate::sharded::shard_index;
use parking_lot::Mutex;
use piggyback_core::types::ResourceId;
use piggyback_httpwire::Body;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

struct Stored {
    body: Body,
    /// Recency stamp (global store clock) — only consulted for prefix
    /// entries, whose retention is recency-biased within the budget.
    seq: u64,
}

/// One shard's bodies plus exact occupancy accounting. Exposed (via
/// [`ShardedBodyStore::with_resource_shard`]) so multi-step updates —
/// insert the new body, drop the evictees — run under one lock *and*
/// keep the accounting true; the raw map is never handed out.
pub struct BodyShard {
    map: HashMap<ResourceId, Stored>,
    bytes: u64,
    prefix_bytes: u64,
    prefix_entries: u64,
    /// Per-shard prefix byte budget (u64::MAX = unbounded).
    prefix_budget: u64,
    /// Recency stamp for entries inserted/touched during this lock hold;
    /// refreshed from the store clock on every lock acquisition.
    clock: u64,
}

impl BodyShard {
    fn account_remove(&mut self, stored: &Stored) {
        self.bytes -= stored.body.len() as u64;
        if stored.body.is_prefix() {
            self.prefix_bytes -= stored.body.len() as u64;
            self.prefix_entries -= 1;
        }
    }

    /// Insert (or replace) `r`'s body. A prefix body that would overflow
    /// the shard's prefix budget first evicts the least-recently-touched
    /// prefix entries; if it can't fit even then (head larger than the
    /// whole budget) it is not retained. Returns whether the body was
    /// stored.
    pub fn insert(&mut self, r: ResourceId, body: Body) -> bool {
        if let Some(old) = self.map.remove(&r) {
            self.account_remove(&old);
        }
        let len = body.len() as u64;
        if body.is_prefix() {
            if len > self.prefix_budget {
                return false;
            }
            while self.prefix_bytes + len > self.prefix_budget {
                let victim = self
                    .map
                    .iter()
                    .filter(|(_, s)| s.body.is_prefix())
                    .min_by_key(|(_, s)| s.seq)
                    .map(|(&k, _)| k);
                match victim {
                    Some(v) => {
                        let old = self.map.remove(&v).expect("victim present");
                        self.account_remove(&old);
                    }
                    None => break, // nothing left to evict
                }
            }
            self.prefix_bytes += len;
            self.prefix_entries += 1;
        }
        self.bytes += len;
        self.map.insert(
            r,
            Stored {
                body,
                seq: self.clock,
            },
        );
        true
    }

    /// Remove `r`'s body (invalidation); returns whether it was present.
    pub fn remove(&mut self, r: ResourceId) -> bool {
        match self.map.remove(&r) {
            Some(old) => {
                self.account_remove(&old);
                true
            }
            None => false,
        }
    }

    /// The stored body, as a zero-copy clone. Touches recency for prefix
    /// entries (a prefix hit is evidence the prefix earns its bytes).
    pub fn get(&mut self, r: ResourceId) -> Option<Body> {
        let clock = self.clock;
        self.map.get_mut(&r).map(|s| {
            if s.body.is_prefix() {
                s.seq = clock;
            }
            s.body.clone()
        })
    }

    pub fn contains(&self, r: ResourceId) -> bool {
        self.map.contains_key(&r)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Exact bytes stored in this shard (full bodies + prefix heads).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Lock-free occupancy gauges mirrored out of one body shard (same
/// discipline as the metadata cache's `ShardGauges`: stored while the
/// shard lock is still held, read without it).
#[derive(Debug, Default)]
struct BodyShardGauges {
    bytes: AtomicU64,
    entries: AtomicU64,
    prefix_bytes: AtomicU64,
    prefix_entries: AtomicU64,
}

/// A plain snapshot of one body shard's occupancy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BodyShardOccupancy {
    /// Bytes stored in this shard (full bodies + prefix heads).
    pub bytes: u64,
    /// Entries stored in this shard.
    pub entries: u64,
    /// Bytes held by prefix entries.
    pub prefix_bytes: u64,
    /// Prefix entries in this shard.
    pub prefix_entries: u64,
}

/// Sharded `ResourceId → Body` map; all methods take `&self`.
pub struct ShardedBodyStore {
    shards: Vec<Mutex<BodyShard>>,
    gauges: Vec<BodyShardGauges>,
    /// Global recency clock for prefix retention.
    seq: AtomicU64,
}

impl ShardedBodyStore {
    /// Build with `shards` shards (at least 1) and no prefix budget. Use
    /// the same shard count as the metadata cache to keep the two
    /// co-sharded.
    pub fn new(shards: usize) -> Self {
        Self::with_prefix_budget(shards, u64::MAX)
    }

    /// [`new`](Self::new) with a total byte budget for prefix entries,
    /// split evenly across shards (full bodies are budgeted by the
    /// metadata cache's eviction policy instead; prefixes have no
    /// metadata entry, so the budget lives here).
    pub fn with_prefix_budget(shards: usize, prefix_budget: u64) -> Self {
        let n = shards.max(1);
        let per = if prefix_budget == u64::MAX {
            u64::MAX
        } else {
            (prefix_budget / n as u64).max(1)
        };
        ShardedBodyStore {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(BodyShard {
                        map: HashMap::new(),
                        bytes: 0,
                        prefix_bytes: 0,
                        prefix_entries: 0,
                        prefix_budget: per,
                        clock: 0,
                    })
                })
                .collect(),
            gauges: (0..n).map(|_| BodyShardGauges::default()).collect(),
            seq: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Run `f` with the shard that owns `r` locked — for multi-step
    /// updates (insert the new body, drop the evictees) under one lock.
    /// Occupancy gauges are refreshed on release.
    pub fn with_resource_shard<T>(&self, r: ResourceId, f: impl FnOnce(&mut BodyShard) -> T) -> T {
        let i = shard_index(r, self.shards.len());
        let mut guard = self.shards[i].lock();
        guard.clock = self.seq.fetch_add(1, Relaxed);
        let out = f(&mut guard);
        // Mirror occupancy into the lock-free gauges while still holding
        // the lock, so each store publishes a state the shard really had.
        let g = &self.gauges[i];
        g.bytes.store(guard.bytes, Relaxed);
        g.entries.store(guard.map.len() as u64, Relaxed);
        g.prefix_bytes.store(guard.prefix_bytes, Relaxed);
        g.prefix_entries.store(guard.prefix_entries, Relaxed);
        out
    }

    /// The stored body for `r`, as a zero-copy clone (refcount bump).
    /// Prefix entries get their recency touched.
    pub fn get(&self, r: ResourceId) -> Option<Body> {
        self.with_resource_shard(r, |s| s.get(r))
    }

    /// The stored body only if it is a retained prefix (the streaming
    /// path's hit probe: full bodies are found via the metadata cache).
    pub fn get_prefix(&self, r: ResourceId) -> Option<Body> {
        self.with_resource_shard(r, |s| {
            let body = s.get(r)?;
            body.is_prefix().then_some(body)
        })
    }

    pub fn insert(&self, r: ResourceId, body: Body) -> bool {
        self.with_resource_shard(r, |s| s.insert(r, body))
    }

    /// Remove `r`'s body (invalidation); returns whether it was present.
    pub fn remove(&self, r: ResourceId) -> bool {
        self.with_resource_shard(r, |s| s.remove(r))
    }

    /// A piggybacked volume mentioned `r`: bump its prefix entry's
    /// recency so volume metadata keeps popular prefixes retained (the
    /// VoD prefix-retention signal, fed from `P-volume`).
    pub fn note_mention(&self, r: ResourceId) {
        self.with_resource_shard(r, |s| {
            let clock = s.clock;
            if let Some(stored) = s.map.get_mut(&r) {
                if stored.body.is_prefix() {
                    stored.seq = clock;
                }
            }
        });
    }

    /// Per-shard occupancy, read entirely from atomic gauges — no shard
    /// lock taken, so a metrics scrape never contends with the hot path.
    pub fn occupancy(&self) -> Vec<BodyShardOccupancy> {
        self.gauges
            .iter()
            .map(|g| BodyShardOccupancy {
                bytes: g.bytes.load(Relaxed),
                entries: g.entries.load(Relaxed),
                prefix_bytes: g.prefix_bytes.load(Relaxed),
                prefix_entries: g.prefix_entries.load(Relaxed),
            })
            .collect()
    }

    /// Total stored bodies (locks shards one at a time; approximate under
    /// concurrent writers, like the cache's aggregate accessors).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bytes (approximate across shards under writers).
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

impl std::fmt::Debug for ShardedBodyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBodyStore")
            .field("shards", &self.shards.len())
            .field("bodies", &self.len())
            .field("bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix_body(fill: u8, head: usize, total: usize) -> Body {
        Body::prefix(vec![fill; head], total)
    }

    #[test]
    fn get_returns_shared_bytes_without_copy() {
        let store = ShardedBodyStore::new(8);
        let body = Body::from(b"cached payload".to_vec());
        let backing = body.as_slice().as_ptr();
        store.insert(ResourceId(7), body);
        let a = store.get(ResourceId(7)).unwrap();
        let b = store.get(ResourceId(7)).unwrap();
        // Every hit sees the same backing allocation: no memcpy.
        assert_eq!(a.as_slice().as_ptr(), backing);
        assert_eq!(b.as_slice().as_ptr(), backing);
        assert_eq!(a, b"cached payload");
        assert!(store.get(ResourceId(8)).is_none());
    }

    #[test]
    fn insert_and_evict_under_one_shard_lock() {
        let store = ShardedBodyStore::new(4);
        // Ids that share a shard with id 1.
        let home = shard_index(ResourceId(1), 4);
        let mates: Vec<ResourceId> = (0..64u32)
            .map(ResourceId)
            .filter(|&r| shard_index(r, 4) == home)
            .take(3)
            .collect();
        for &r in &mates {
            store.insert(r, Body::from(b"old".to_vec()));
        }
        store.with_resource_shard(mates[0], |s| {
            s.insert(mates[0], Body::from(b"new".to_vec()));
            s.remove(mates[1]);
            s.remove(mates[2]);
        });
        assert_eq!(store.get(mates[0]).unwrap(), b"new");
        assert!(store.get(mates[1]).is_none());
        assert_eq!(store.len(), 1);
        assert_eq!(store.used_bytes(), 3);
    }

    #[test]
    fn byte_accounting_is_exact_and_mirrored() {
        let store = ShardedBodyStore::new(4);
        for i in 0..32u32 {
            store.insert(ResourceId(i), Body::from(vec![b'x'; 100 + i as usize]));
        }
        // Replace some, remove some: accounting must track exactly.
        for i in 0..8u32 {
            store.insert(ResourceId(i), Body::from(vec![b'y'; 10]));
        }
        for i in 8..16u32 {
            store.remove(ResourceId(i));
        }
        let expect_bytes: u64 = (0..8u32).map(|_| 10u64).sum::<u64>()
            + (16..32u32).map(|i| 100 + u64::from(i)).sum::<u64>();
        assert_eq!(store.used_bytes(), expect_bytes);
        assert_eq!(store.len(), 24);
        // Quiescent gauges match the locked state per shard.
        let occ = store.occupancy();
        assert_eq!(occ.iter().map(|o| o.bytes).sum::<u64>(), expect_bytes);
        assert_eq!(occ.iter().map(|o| o.entries).sum::<u64>(), 24);
        assert_eq!(occ.iter().map(|o| o.prefix_entries).sum::<u64>(), 0);
        for (i, o) in occ.iter().enumerate() {
            let (bytes, entries) = {
                let g = store.shards[i].lock();
                (g.bytes, g.map.len() as u64)
            };
            assert_eq!(o.bytes, bytes, "shard {i}");
            assert_eq!(o.entries, entries, "shard {i}");
        }
    }

    #[test]
    fn prefix_entries_are_tracked_and_probed_separately() {
        let store = ShardedBodyStore::new(2);
        store.insert(ResourceId(1), Body::from(b"full body".to_vec()));
        store.insert(ResourceId(2), prefix_body(b'p', 64, 1 << 20));
        assert!(
            store.get_prefix(ResourceId(1)).is_none(),
            "full is not a prefix"
        );
        let p = store.get_prefix(ResourceId(2)).expect("prefix probe hits");
        assert!(p.is_prefix());
        assert_eq!(p.len(), 64);
        assert_eq!(p.total_len(), 1 << 20);
        let occ = store.occupancy();
        assert_eq!(occ.iter().map(|o| o.prefix_entries).sum::<u64>(), 1);
        assert_eq!(occ.iter().map(|o| o.prefix_bytes).sum::<u64>(), 64);
        assert_eq!(occ.iter().map(|o| o.bytes).sum::<u64>(), 64 + 9);
        // Invalidation clears the prefix accounting too.
        store.remove(ResourceId(2));
        let occ = store.occupancy();
        assert_eq!(occ.iter().map(|o| o.prefix_entries).sum::<u64>(), 0);
        assert_eq!(occ.iter().map(|o| o.prefix_bytes).sum::<u64>(), 0);
    }

    #[test]
    fn prefix_budget_evicts_least_recent_and_mentions_protect() {
        // One shard so every prefix competes for the same budget.
        let store = ShardedBodyStore::with_prefix_budget(1, 3 * 64);
        let (a, b, c, d) = (ResourceId(1), ResourceId(2), ResourceId(3), ResourceId(4));
        store.insert(a, prefix_body(b'a', 64, 1000));
        store.insert(b, prefix_body(b'b', 64, 1000));
        store.insert(c, prefix_body(b'c', 64, 1000));
        // `a` is oldest — but a piggybacked volume mention refreshes it.
        store.note_mention(a);
        store.insert(d, prefix_body(b'd', 64, 1000));
        assert!(store.get_prefix(a).is_some(), "mention kept `a` retained");
        assert!(store.get_prefix(b).is_none(), "LRU prefix evicted");
        assert!(store.get_prefix(c).is_some());
        assert!(store.get_prefix(d).is_some());
        let occ = store.occupancy();
        assert_eq!(occ[0].prefix_entries, 3);
        assert_eq!(occ[0].prefix_bytes, 3 * 64);
        // A head larger than the whole budget is simply not retained.
        assert!(!store.insert(ResourceId(9), prefix_body(b'z', 1024, 4096)));
        assert!(store.get_prefix(ResourceId(9)).is_none());
        // Full bodies are never budget-evicted.
        store.insert(ResourceId(10), Body::from(vec![b'f'; 10_000]));
        assert!(store.get(ResourceId(10)).is_some());
    }

    #[test]
    fn prefix_hits_refresh_recency() {
        let store = ShardedBodyStore::with_prefix_budget(1, 2 * 64);
        let (a, b, c) = (ResourceId(1), ResourceId(2), ResourceId(3));
        store.insert(a, prefix_body(b'a', 64, 1000));
        store.insert(b, prefix_body(b'b', 64, 1000));
        // Hit `a`, making `b` the eviction victim.
        assert!(store.get_prefix(a).is_some());
        store.insert(c, prefix_body(b'c', 64, 1000));
        assert!(store.get_prefix(a).is_some());
        assert!(store.get_prefix(b).is_none());
        assert!(store.get_prefix(c).is_some());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = std::sync::Arc::new(ShardedBodyStore::with_prefix_budget(8, 1 << 16));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let store = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let r = ResourceId((t * 31 + i) % 64);
                    match i % 4 {
                        0 => {
                            store.insert(r, Body::from(b"x".to_vec()));
                        }
                        1 => {
                            store.insert(r, Body::prefix(vec![b'p'; 32], 4096));
                        }
                        2 => {
                            store.get(r);
                        }
                        _ => {
                            store.remove(r);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(store.len() <= 64);
        // Accounting still balances: recompute from the maps.
        let recount: u64 = store
            .shards
            .iter()
            .map(|s| {
                let g = s.lock();
                let sum: u64 = g.map.values().map(|s| s.body.len() as u64).sum();
                assert_eq!(sum, g.bytes);
                sum
            })
            .sum();
        assert_eq!(recount, store.used_bytes());
    }
}
