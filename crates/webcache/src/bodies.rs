//! Co-sharded store of cached response bodies as shared [`Body`]s.
//!
//! The [`ShardedCache`](crate::sharded::ShardedCache) tracks metadata
//! (sizes, freshness, recency); the actual payload bytes live here,
//! routed by the same [`shard_index`] hash so "everything about resource
//! `r` lives in shard `i`" stays true — an insert-plus-evictee-cleanup
//! touches exactly one lock.
//!
//! Bodies are `Arc`-backed: [`get`](ShardedBodyStore::get) hands back a
//! refcount bump, so a proxy cache hit serves the stored bytes without
//! copying them. The bytes were copied exactly once, when the resource
//! was fetched and retained.

use crate::sharded::shard_index;
use parking_lot::Mutex;
use piggyback_core::types::ResourceId;
use piggyback_httpwire::Body;
use std::collections::HashMap;

/// Sharded `ResourceId → Body` map; all methods take `&self`.
pub struct ShardedBodyStore {
    shards: Vec<Mutex<HashMap<ResourceId, Body>>>,
}

impl ShardedBodyStore {
    /// Build with `shards` shards (at least 1). Use the same shard count
    /// as the metadata cache to keep the two co-sharded.
    pub fn new(shards: usize) -> Self {
        ShardedBodyStore {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Run `f` with the shard that owns `r` locked — for multi-step
    /// updates (insert the new body, drop the evictees) under one lock.
    pub fn with_resource_shard<T>(
        &self,
        r: ResourceId,
        f: impl FnOnce(&mut HashMap<ResourceId, Body>) -> T,
    ) -> T {
        let mut guard = self.shards[shard_index(r, self.shards.len())].lock();
        f(&mut guard)
    }

    /// The stored body for `r`, as a zero-copy clone (refcount bump).
    pub fn get(&self, r: ResourceId) -> Option<Body> {
        self.with_resource_shard(r, |m| m.get(&r).cloned())
    }

    pub fn insert(&self, r: ResourceId, body: Body) {
        self.with_resource_shard(r, |m| m.insert(r, body));
    }

    /// Remove `r`'s body (invalidation); returns whether it was present.
    pub fn remove(&self, r: ResourceId) -> bool {
        self.with_resource_shard(r, |m| m.remove(&r).is_some())
    }

    /// Total stored bodies (locks shards one at a time; approximate under
    /// concurrent writers, like the cache's aggregate accessors).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ShardedBodyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBodyStore")
            .field("shards", &self.shards.len())
            .field("bodies", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_shared_bytes_without_copy() {
        let store = ShardedBodyStore::new(8);
        let body = Body::from(b"cached payload".to_vec());
        let backing = body.as_slice().as_ptr();
        store.insert(ResourceId(7), body);
        let a = store.get(ResourceId(7)).unwrap();
        let b = store.get(ResourceId(7)).unwrap();
        // Every hit sees the same backing allocation: no memcpy.
        assert_eq!(a.as_slice().as_ptr(), backing);
        assert_eq!(b.as_slice().as_ptr(), backing);
        assert_eq!(a, b"cached payload");
        assert!(store.get(ResourceId(8)).is_none());
    }

    #[test]
    fn insert_and_evict_under_one_shard_lock() {
        let store = ShardedBodyStore::new(4);
        // Ids that share a shard with id 1.
        let home = shard_index(ResourceId(1), 4);
        let mates: Vec<ResourceId> = (0..64u32)
            .map(ResourceId)
            .filter(|&r| shard_index(r, 4) == home)
            .take(3)
            .collect();
        for &r in &mates {
            store.insert(r, Body::from(b"old".to_vec()));
        }
        store.with_resource_shard(mates[0], |m| {
            m.insert(mates[0], Body::from(b"new".to_vec()));
            m.remove(&mates[1]);
            m.remove(&mates[2]);
        });
        assert_eq!(store.get(mates[0]).unwrap(), b"new");
        assert!(store.get(mates[1]).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = std::sync::Arc::new(ShardedBodyStore::new(8));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let store = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let r = ResourceId((t * 31 + i) % 64);
                    match i % 3 {
                        0 => store.insert(r, Body::from(b"x".to_vec())),
                        1 => {
                            store.get(r);
                        }
                        _ => {
                            store.remove(r);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(store.len() <= 64);
    }
}
