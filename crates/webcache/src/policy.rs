//! Cache replacement policies.
//!
//! The paper's cache-replacement application (Section 4) extends LRU with
//! piggyback information: "rather than removing the least-recently-used
//! item, the proxy could continue to cache items that have appeared in
//! recent piggyback messages". Implemented here:
//!
//! * [`Lru`] — classic least-recently-used;
//! * [`GdSize`] — Cao & Irani's GreedyDual-Size with unit cost (reference
//!   [5]), the strongest conventional baseline of the era;
//! * [`PiggybackAware`] — LRU in which a piggyback mention counts as a
//!   recency touch, so server-predicted resources survive eviction.

use piggyback_core::types::{ResourceId, Timestamp};
use std::collections::{BTreeSet, HashMap};

#[cfg(test)]
use std::collections::VecDeque;

/// A replacement policy: tracks cached resources and nominates victims.
///
/// The [`Cache`](crate::cache::Cache) drives all calls; implementations
/// only see resources the cache currently holds.
pub trait ReplacementPolicy {
    /// A resource was inserted.
    fn on_insert(&mut self, r: ResourceId, size: u64, now: Timestamp);
    /// A cached resource was served to a client.
    fn on_access(&mut self, r: ResourceId, size: u64, now: Timestamp);
    /// A cached resource was mentioned in a piggyback message.
    fn on_piggyback_mention(&mut self, _r: ResourceId, _size: u64, _now: Timestamp) {}
    /// Nominate the next victim (must currently be tracked).
    fn evict_candidate(&mut self) -> Option<ResourceId>;
    /// A resource left the cache (evicted or invalidated).
    fn remove(&mut self, r: ResourceId);
    /// Number of tracked resources (for invariant checks).
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sentinel slot index for the intrusive list ends.
const NIL: usize = usize::MAX;

/// One slab slot: a resource threaded into the recency list.
#[derive(Debug, Clone, Copy)]
struct LruNode {
    r: ResourceId,
    prev: usize,
    next: usize,
}

/// Classic LRU as a slab-backed intrusive doubly-linked list.
///
/// The earlier implementation kept a `BTreeSet<(tick, id)>` recency
/// index, which allocated (and freed) tree nodes on *every* touch — the
/// last steady-state allocation on the proxy's cached-hit path. Here a
/// touch is a `HashMap` lookup plus pointer splicing inside a reused
/// `Vec` slab: freed slots go on a free list, so once the cache reaches
/// its working set, accesses never allocate.
#[derive(Debug)]
pub struct Lru {
    /// Resource → slab slot.
    slots: HashMap<ResourceId, usize>,
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty) — the eviction end.
    tail: usize,
}

impl Default for Lru {
    fn default() -> Self {
        Lru {
            slots: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }
}

impl Lru {
    pub fn new() -> Self {
        Self::default()
    }

    /// Is `r` currently tracked?
    pub fn contains(&self, r: ResourceId) -> bool {
        self.slots.contains_key(&r)
    }

    fn unlink(&mut self, i: usize) {
        let LruNode { prev, next, .. } = self.nodes[i];
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, r: ResourceId) {
        if let Some(&i) = self.slots.get(&r) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let node = LruNode {
            r,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.slots.insert(r, i);
        self.push_front(i);
    }
}

impl ReplacementPolicy for Lru {
    fn on_insert(&mut self, r: ResourceId, _size: u64, _now: Timestamp) {
        self.touch(r);
    }

    fn on_access(&mut self, r: ResourceId, _size: u64, _now: Timestamp) {
        self.touch(r);
    }

    fn evict_candidate(&mut self) -> Option<ResourceId> {
        if self.tail == NIL {
            None
        } else {
            Some(self.nodes[self.tail].r)
        }
    }

    fn remove(&mut self, r: ResourceId) {
        if let Some(i) = self.slots.remove(&r) {
            self.unlink(i);
            self.free.push(i);
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Total-ordered `f64` for priority queues.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// GreedyDual-Size with unit cost: priority `H = L + 1/size`; the global
/// inflation value `L` rises to each victim's priority, aging the cache.
#[derive(Debug, Default)]
pub struct GdSize {
    inflation: f64,
    queue: BTreeSet<(OrdF64, ResourceId)>,
    prio: HashMap<ResourceId, f64>,
}

impl GdSize {
    pub fn new() -> Self {
        Self::default()
    }

    fn set_priority(&mut self, r: ResourceId, size: u64) {
        let h = self.inflation + 1.0 / size.max(1) as f64;
        if let Some(old) = self.prio.insert(r, h) {
            self.queue.remove(&(OrdF64(old), r));
        }
        self.queue.insert((OrdF64(h), r));
    }
}

impl ReplacementPolicy for GdSize {
    fn on_insert(&mut self, r: ResourceId, size: u64, _now: Timestamp) {
        self.set_priority(r, size);
    }

    fn on_access(&mut self, r: ResourceId, size: u64, _now: Timestamp) {
        self.set_priority(r, size);
    }

    fn evict_candidate(&mut self) -> Option<ResourceId> {
        let &(OrdF64(h), r) = self.queue.first()?;
        self.inflation = self.inflation.max(h);
        Some(r)
    }

    fn remove(&mut self, r: ResourceId) {
        if let Some(old) = self.prio.remove(&r) {
            self.queue.remove(&(OrdF64(old), r));
        }
    }

    fn len(&self) -> usize {
        self.prio.len()
    }
}

/// LRU that also treats a piggyback mention as a touch: resources the
/// server predicts will be requested stay cached.
#[derive(Debug, Default)]
pub struct PiggybackAware {
    inner: Lru,
}

impl PiggybackAware {
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for PiggybackAware {
    fn on_insert(&mut self, r: ResourceId, size: u64, now: Timestamp) {
        self.inner.on_insert(r, size, now);
    }

    fn on_access(&mut self, r: ResourceId, size: u64, now: Timestamp) {
        self.inner.on_access(r, size, now);
    }

    fn on_piggyback_mention(&mut self, r: ResourceId, size: u64, now: Timestamp) {
        // Only refresh resources already tracked (the cache filters, but be
        // defensive).
        if self.inner.contains(r) {
            self.inner.on_access(r, size, now);
        }
    }

    fn evict_candidate(&mut self) -> Option<ResourceId> {
        self.inner.evict_candidate()
    }

    fn remove(&mut self, r: ResourceId) {
        self.inner.remove(r);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// Policy selector for configuration surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    Lru,
    GdSize,
    PiggybackAware,
}

impl PolicyKind {
    pub fn build(self) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::GdSize => Box::new(GdSize::new()),
            PolicyKind::PiggybackAware => Box::new(PiggybackAware::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn r(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::new();
        p.on_insert(r(1), 10, ts(1));
        p.on_insert(r(2), 10, ts(2));
        p.on_insert(r(3), 10, ts(3));
        p.on_access(r(1), 10, ts(4));
        assert_eq!(p.evict_candidate(), Some(r(2)));
        p.remove(r(2));
        assert_eq!(p.evict_candidate(), Some(r(3)));
        assert_eq!(p.len(), 2);
    }

    /// The slab LRU must order evictions exactly like a reference model
    /// (a deque with most-recent at the back) under arbitrary op mixes,
    /// and reuse freed slots instead of growing the slab.
    #[test]
    fn lru_matches_reference_model_and_reuses_slots() {
        let mut p = Lru::new();
        let mut model: VecDeque<ResourceId> = VecDeque::new();
        // Deterministic pseudo-random op stream.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..5_000 {
            let id = r((next() % 24) as u32);
            match next() % 4 {
                0 | 1 => {
                    p.on_access(id, 10, ts(step));
                    if !model.contains(&id) {
                        // touch of untracked id inserts, like the slab
                        model.push_back(id);
                    } else {
                        model.retain(|&x| x != id);
                        model.push_back(id);
                    }
                }
                2 => {
                    p.on_insert(id, 10, ts(step));
                    model.retain(|&x| x != id);
                    model.push_back(id);
                }
                _ => {
                    p.remove(id);
                    model.retain(|&x| x != id);
                }
            }
            assert_eq!(p.len(), model.len(), "step {step}");
            assert_eq!(p.evict_candidate(), model.front().copied(), "step {step}");
        }
        // At most 24 distinct ids were ever live, so the slab must have
        // recycled slots rather than growing per insert.
        assert!(
            p.nodes.len() <= 24,
            "slab grew to {} slots for 24 ids",
            p.nodes.len()
        );
        // Full drain in model order.
        while let Some(victim) = p.evict_candidate() {
            assert_eq!(Some(victim), model.front().copied());
            p.remove(victim);
            model.pop_front();
        }
        assert!(p.is_empty() && model.is_empty());
    }

    #[test]
    fn lru_remove_unknown_is_noop() {
        let mut p = Lru::new();
        p.remove(r(9));
        assert!(p.is_empty());
        assert_eq!(p.evict_candidate(), None);
    }

    #[test]
    fn gdsize_prefers_evicting_large_cold_items() {
        let mut p = GdSize::new();
        p.on_insert(r(1), 1_000_000, ts(1)); // big => tiny priority
        p.on_insert(r(2), 100, ts(2)); // small => bigger priority
        assert_eq!(p.evict_candidate(), Some(r(1)));
    }

    #[test]
    fn gdsize_inflation_ages_old_entries() {
        let mut p = GdSize::new();
        p.on_insert(r(1), 100, ts(1));
        // Evict a big item to raise inflation well above 1/100.
        p.on_insert(r(2), 1, ts(2)); // priority 1.0
        p.remove(r(2));
        // evict_candidate on r(2) raised nothing; simulate eviction cycle:
        for i in 3..100 {
            p.on_insert(r(i), 1, ts(i as u64));
            let v = p.evict_candidate().unwrap();
            p.remove(v);
        }
        // After inflation rises past 1/100 + epsilon, a freshly accessed
        // item outranks the stale r(1) even though r(1) is small.
        assert!(p.inflation > 0.0);
    }

    #[test]
    fn piggyback_aware_protects_mentioned_items() {
        let mut lru = Lru::new();
        let mut pa = PiggybackAware::new();
        for policy in [&mut lru as &mut dyn ReplacementPolicy, &mut pa] {
            policy.on_insert(r(1), 10, ts(1));
            policy.on_insert(r(2), 10, ts(2));
        }
        // The server mentions r(1) in a piggyback at t=3.
        lru.on_piggyback_mention(r(1), 10, ts(3)); // default: ignored
        pa.on_piggyback_mention(r(1), 10, ts(3));
        assert_eq!(lru.evict_candidate(), Some(r(1)), "plain LRU evicts r1");
        assert_eq!(pa.evict_candidate(), Some(r(2)), "aware policy protects r1");
    }

    #[test]
    fn piggyback_aware_ignores_untracked_mentions() {
        let mut pa = PiggybackAware::new();
        pa.on_piggyback_mention(r(5), 10, ts(1));
        assert!(pa.is_empty());
    }

    #[test]
    fn kind_builds_each_policy() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::GdSize,
            PolicyKind::PiggybackAware,
        ] {
            let mut p = kind.build();
            p.on_insert(r(1), 10, ts(1));
            assert_eq!(p.evict_candidate(), Some(r(1)));
        }
    }
}
