//! Informed fetching (paper Section 4, "Informed fetching").
//!
//! Piggybacks carry the *sizes* of resources likely to be requested soon,
//! so when requests do arrive and the proxy↔server path is congested, the
//! proxy can schedule its fetch queue shortest-first: "users requesting
//! small files do not have to wait long and users with large requests wait
//! a bit longer" — lowering mean latency versus FIFO.

use piggyback_core::types::{DurationMs, Timestamp};

/// One outstanding fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchJob {
    /// When the client issued the request.
    pub arrival: Timestamp,
    /// Resource size in bytes (known in advance from piggyback metadata).
    pub size: u64,
}

/// Queue discipline for the congested link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingOrder {
    /// First-come-first-served — what a proxy without size knowledge does.
    Fifo,
    /// Shortest job first among queued requests — enabled by piggybacked
    /// size attributes.
    ShortestFirst,
}

/// Latency statistics from a queue simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueReport {
    pub jobs: u64,
    pub mean_latency: DurationMs,
    pub max_latency: DurationMs,
    /// Mean latency weighted per job, in fractional seconds (for plots).
    pub mean_latency_secs: f64,
}

/// Simulate a single bandwidth-limited link serving `jobs` (any order;
/// sorted internally by arrival) under the given discipline.
///
/// The link transmits one response at a time at `bytes_per_sec`;
/// `ShortestFirst` is non-preemptive.
pub fn simulate_fetch_queue(
    jobs: &[FetchJob],
    bytes_per_sec: f64,
    order: SchedulingOrder,
) -> QueueReport {
    assert!(bytes_per_sec > 0.0);
    let mut jobs: Vec<FetchJob> = jobs.to_vec();
    jobs.sort_by_key(|j| j.arrival);

    let mut queued: Vec<FetchJob> = Vec::new();
    let mut next_arrival = 0usize;
    let mut clock: u64 = jobs.first().map_or(0, |j| j.arrival.as_millis());
    let mut total_latency_ms: u128 = 0;
    let mut max_latency_ms: u64 = 0;
    let mut done = 0u64;

    while done < jobs.len() as u64 {
        // Admit everything that has arrived by `clock`.
        while next_arrival < jobs.len() && jobs[next_arrival].arrival.as_millis() <= clock {
            queued.push(jobs[next_arrival]);
            next_arrival += 1;
        }
        if queued.is_empty() {
            // Idle: jump to the next arrival.
            clock = jobs[next_arrival].arrival.as_millis();
            continue;
        }
        // Pick the next job.
        let idx = match order {
            SchedulingOrder::Fifo => 0,
            SchedulingOrder::ShortestFirst => queued
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.size, j.arrival))
                .map(|(i, _)| i)
                .expect("non-empty"),
        };
        let job = queued.remove(idx);
        let service_ms = ((job.size as f64 / bytes_per_sec) * 1000.0).ceil() as u64;
        clock += service_ms.max(1);
        let latency = clock - job.arrival.as_millis();
        total_latency_ms += latency as u128;
        max_latency_ms = max_latency_ms.max(latency);
        done += 1;
    }

    QueueReport {
        jobs: done,
        mean_latency: DurationMs((total_latency_ms / done.max(1) as u128) as u64),
        max_latency: DurationMs(max_latency_ms),
        mean_latency_secs: total_latency_ms as f64 / done.max(1) as f64 / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival_s: u64, size: u64) -> FetchJob {
        FetchJob {
            arrival: Timestamp::from_secs(arrival_s),
            size,
        }
    }

    #[test]
    fn empty_queue() {
        let r = simulate_fetch_queue(&[], 1000.0, SchedulingOrder::Fifo);
        assert_eq!(r.jobs, 0);
        assert_eq!(r.mean_latency, DurationMs::ZERO);
    }

    #[test]
    fn single_job_latency_is_service_time() {
        let r = simulate_fetch_queue(&[job(0, 2000)], 1000.0, SchedulingOrder::Fifo);
        assert_eq!(r.jobs, 1);
        assert_eq!(r.mean_latency, DurationMs::from_secs(2));
    }

    #[test]
    fn shortest_first_beats_fifo_on_mean_latency() {
        // A burst: one huge job and many small ones contend at once (the
        // paper's congested-link scenario).
        let mut jobs = vec![job(0, 1_000_000)];
        for _ in 0..20 {
            jobs.push(job(0, 1_000));
        }
        let fifo = simulate_fetch_queue(&jobs, 10_000.0, SchedulingOrder::Fifo);
        let sjf = simulate_fetch_queue(&jobs, 10_000.0, SchedulingOrder::ShortestFirst);
        assert!(
            sjf.mean_latency_secs < fifo.mean_latency_secs / 2.0,
            "SJF {} vs FIFO {}",
            sjf.mean_latency_secs,
            fifo.mean_latency_secs
        );
        // Max latency (the big job) is no better under SJF... but it cannot
        // be *lower* than its own service time.
        assert!(sjf.max_latency >= DurationMs::from_secs(100));
    }

    #[test]
    fn non_preemptive_big_job_still_finishes() {
        let jobs = vec![job(0, 100_000), job(1, 10)];
        let r = simulate_fetch_queue(&jobs, 1_000.0, SchedulingOrder::ShortestFirst);
        assert_eq!(r.jobs, 2);
        // Big job started at t=0 (queue was empty): small job waits ~100s.
        assert!(r.max_latency >= DurationMs::from_secs(99));
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let jobs = vec![job(0, 1000), job(100, 1000)];
        let r = simulate_fetch_queue(&jobs, 1000.0, SchedulingOrder::Fifo);
        // Second job does not inherit queueing delay from the gap.
        assert_eq!(r.mean_latency, DurationMs::from_secs(1));
    }

    #[test]
    fn identical_under_both_orders_when_no_contention() {
        let jobs: Vec<FetchJob> = (0..10).map(|i| job(i * 100, 500)).collect();
        let a = simulate_fetch_queue(&jobs, 1000.0, SchedulingOrder::Fifo);
        let b = simulate_fetch_queue(&jobs, 1000.0, SchedulingOrder::ShortestFirst);
        assert_eq!(a.mean_latency, b.mean_latency);
    }
}
