//! Two-level (hierarchical) proxy caching with piggybacking (paper
//! Section 1: "our techniques are applicable to the general case of
//! hierarchical caching"; Section 5 lists multi-level caches as future
//! work).
//!
//! Topology: clients are partitioned across `n_children` child proxies,
//! all of which share one parent proxy in front of the origin. Piggyback
//! information flows at both levels:
//!
//! * origin → parent: the origin's volumes, filtered by the parent;
//! * parent → child: the parent acts as a *volume center* for its
//!   children — it learns directory volumes from the traffic it relays
//!   and piggybacks on responses to child misses/validations.
//!
//! Each level keeps its own RPV state, so redundant piggybacks are
//! suppressed independently per hop.

use crate::adaptive::FreshnessPolicy;
use crate::cache::{Cache, CacheEntry};
use crate::policy::PolicyKind;
use piggyback_core::filter::ProxyFilter;
use piggyback_core::proxy::{classify_element, ElementAction};
use piggyback_core::rpv::RpvList;
use piggyback_core::server::PiggybackServer;
use piggyback_core::types::{DurationMs, ResourceId, Timestamp};
use piggyback_core::volume::{DirectoryVolumes, VolumeProvider};
use piggyback_trace::synth::changes::ChangeEvent;
use piggyback_trace::ServerLog;

/// Hierarchy configuration.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    pub n_children: usize,
    pub child_capacity: u64,
    pub parent_capacity: u64,
    /// Child-level freshness interval.
    pub child_delta: DurationMs,
    /// Parent-level freshness interval.
    pub parent_delta: DurationMs,
    /// Piggybacking on/off at both levels.
    pub piggyback: bool,
    /// Filter template used at both hops.
    pub filter: ProxyFilter,
    /// Directory-prefix depth for the parent's learned volumes.
    pub parent_volume_level: usize,
    /// Children apply parent piggyback *freshens* (not just
    /// invalidations). Freshening from the parent extends the life of
    /// copies the parent may itself hold stale; disable to trade hit rate
    /// for end-to-end freshness (see the `ext_hierarchy` experiment).
    pub freshen_from_parent: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            n_children: 4,
            child_capacity: 8 * 1024 * 1024,
            parent_capacity: 64 * 1024 * 1024,
            child_delta: DurationMs::from_secs(1800),
            parent_delta: DurationMs::from_secs(3600),
            piggyback: true,
            filter: ProxyFilter::builder().max_piggy(10).build(),
            parent_volume_level: 1,
            freshen_from_parent: true,
        }
    }
}

/// Counters from a hierarchy simulation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyReport {
    pub client_requests: u64,
    /// Served from a child cache without contacting the parent.
    pub child_fresh_hits: u64,
    /// Child misses/validations served from the parent's cache without
    /// contacting the origin.
    pub parent_served: u64,
    /// Requests that reached the origin.
    pub origin_contacts: u64,
    /// Responses served (at any level) that were out of date at the origin.
    pub stale_served: u64,
    /// Piggyback messages parent→child.
    pub child_piggybacks: u64,
    /// Piggyback messages origin→parent.
    pub parent_piggybacks: u64,
    /// Child cache entries freshened/invalidated by parent piggybacks.
    pub child_freshens: u64,
    pub child_invalidations: u64,
}

impl HierarchyReport {
    pub fn child_hit_rate(&self) -> f64 {
        if self.client_requests == 0 {
            0.0
        } else {
            self.child_fresh_hits as f64 / self.client_requests as f64
        }
    }

    /// Fraction of requests absorbed before the origin.
    pub fn origin_shielding(&self) -> f64 {
        if self.client_requests == 0 {
            0.0
        } else {
            1.0 - self.origin_contacts as f64 / self.client_requests as f64
        }
    }
}

struct Child {
    cache: Cache,
    rpv: RpvList,
}

/// Run the two-level simulation. `server` is the origin (use
/// [`build_server`](crate::sim::build_server)).
pub fn simulate_hierarchy<V: VolumeProvider>(
    log: &ServerLog,
    changes: &[ChangeEvent],
    origin: &mut PiggybackServer<V>,
    cfg: &HierarchyConfig,
) -> HierarchyReport {
    assert!(cfg.n_children > 0);
    let mut report = HierarchyReport::default();

    let mut children: Vec<Child> = (0..cfg.n_children)
        .map(|_| Child {
            cache: Cache::new(cfg.child_capacity, PolicyKind::Lru.build()),
            rpv: RpvList::new(32, cfg.child_delta.min(DurationMs::from_secs(60))),
        })
        .collect();
    let mut parent_cache = Cache::new(cfg.parent_capacity, PolicyKind::Lru.build());
    let mut parent_rpv = RpvList::new(32, DurationMs::from_secs(60));
    // The parent's learned volumes (volume-center role for its children).
    let mut parent_volumes: PiggybackServer<DirectoryVolumes> =
        PiggybackServer::new(DirectoryVolumes::new(cfg.parent_volume_level));

    let mut change_idx = 0usize;
    for entry in &log.entries {
        let now = entry.time;
        while change_idx < changes.len() && changes[change_idx].time <= now {
            origin.touch_modified(changes[change_idx].resource, changes[change_idx].time);
            change_idx += 1;
        }

        let r = entry.resource;
        report.client_requests += 1;
        let origin_lm = origin
            .table()
            .meta(r)
            .map(|m| m.last_modified)
            .unwrap_or(Timestamp::ZERO);
        let child_idx = entry.client.0 as usize % cfg.n_children;

        // --- child level -------------------------------------------------
        let child = &mut children[child_idx];
        if let Some(snap) = child.cache.lookup(r, now) {
            if snap.is_fresh(now) {
                report.child_fresh_hits += 1;
                if origin_lm > snap.last_modified {
                    report.stale_served += 1;
                }
                continue;
            }
        }

        // --- parent level ------------------------------------------------
        // The parent serves from its cache when fresh; otherwise it goes
        // to the origin (validation collapsing: one upstream fetch
        // refreshes the shared parent copy for all children).
        let parent_snap = parent_cache.lookup(r, now);
        let (served_lm, from_parent_cache) = match parent_snap {
            Some(snap) if snap.is_fresh(now) => {
                report.parent_served += 1;
                (snap.last_modified, true)
            }
            prior => {
                // Parent contacts the origin.
                report.origin_contacts += 1;
                let mut filter = if cfg.piggyback {
                    cfg.filter.clone()
                } else {
                    ProxyFilter::disabled()
                };
                filter.rpv = parent_rpv.filter_ids(now);
                origin.record_access(r, entry.client, now);
                let size = origin.table().meta(r).map_or(0, |m| m.size);
                parent_cache.insert(
                    r,
                    CacheEntry {
                        size,
                        last_modified: origin_lm,
                        expires: now + cfg.parent_delta,
                        prefetched: false,
                        used: true,
                    },
                    now,
                );
                if let Some(msg) = origin.piggyback(r, &filter, now) {
                    report.parent_piggybacks += 1;
                    parent_rpv.record(msg.volume, now);
                    // Parent applies origin piggybacks to its own cache.
                    for e in &msg.elements {
                        let cached_lm = parent_cache.peek(e.resource).map(|c| c.last_modified);
                        match classify_element(cached_lm, e.last_modified) {
                            ElementAction::Freshen => {
                                parent_cache.freshen(e.resource, now + cfg.parent_delta);
                            }
                            ElementAction::Invalidate => {
                                parent_cache.remove(e.resource);
                            }
                            ElementAction::PrefetchCandidate => {}
                        }
                    }
                }
                let _ = prior;
                (origin_lm, false)
            }
        };
        let _ = from_parent_cache;
        if origin_lm > served_lm {
            report.stale_served += 1;
        }

        // The parent learns volumes from relayed traffic and piggybacks to
        // the child (volume-center behaviour).
        {
            let path_owned = origin.table().path(r).map(|p| p.to_owned());
            if let Some(path) = path_owned {
                let size = origin.table().meta(r).map_or(0, |m| m.size);
                let pr = parent_volumes.register_path(&path, size, served_lm);
                parent_volumes.record_access(pr, entry.client, now);
                if cfg.piggyback {
                    let child = &mut children[child_idx];
                    let mut filter = cfg.filter.clone();
                    filter.rpv = child.rpv.filter_ids(now);
                    if let Some(msg) = parent_volumes.piggyback(pr, &filter, now) {
                        report.child_piggybacks += 1;
                        child.rpv.record(msg.volume, now);
                        for e in &msg.elements {
                            // Translate the parent's ids back to origin ids
                            // via paths (the parent's table is its own).
                            let Some(epath) = parent_volumes.table().path(e.resource) else {
                                continue;
                            };
                            let Some(orig_id) = origin.table().lookup(epath) else {
                                continue;
                            };
                            apply_child_piggyback(
                                &mut children[child_idx].cache,
                                orig_id,
                                e.last_modified,
                                now,
                                cfg.child_delta,
                                cfg.freshen_from_parent,
                                &mut report,
                            );
                        }
                    }
                }
            }
        }

        // Install the response in the child cache.
        let child = &mut children[child_idx];
        let size = origin.table().meta(r).map_or(0, |m| m.size);
        child.cache.insert(
            r,
            CacheEntry {
                size,
                last_modified: served_lm,
                expires: now + cfg.child_delta,
                prefetched: false,
                used: true,
            },
            now,
        );
    }

    report
}

fn apply_child_piggyback(
    cache: &mut Cache,
    r: ResourceId,
    element_lm: Timestamp,
    now: Timestamp,
    delta: DurationMs,
    allow_freshen: bool,
    report: &mut HierarchyReport,
) {
    let cached_lm = cache.peek(r).map(|c| c.last_modified);
    match classify_element(cached_lm, element_lm) {
        ElementAction::Freshen => {
            if allow_freshen {
                cache.freshen(r, now + delta);
                report.child_freshens += 1;
            }
        }
        ElementAction::Invalidate => {
            cache.remove(r);
            report.child_invalidations += 1;
        }
        ElementAction::PrefetchCandidate => {}
    }
}

/// The adaptive freshness policy is not used here; re-export the fixed one
/// for configuration symmetry.
pub type ChildFreshness = FreshnessPolicy;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::build_server;
    use piggyback_core::types::SourceId;
    use piggyback_trace::record::{Method, ServerLogEntry};

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn tiny_log(reqs: &[(u64, u32, &str)]) -> ServerLog {
        let mut log = ServerLog {
            name: "hier".into(),
            ..Default::default()
        };
        for p in ["/d/a.html", "/d/b.html", "/e/c.html"] {
            log.table.register_path(p, 1_000, Timestamp::ZERO);
        }
        for &(t, client, path) in reqs {
            let r = log.table.lookup(path).unwrap();
            log.entries.push(ServerLogEntry {
                time: ts(t),
                client: SourceId(client),
                resource: r,
                method: Method::Get,
                status: 200,
                bytes: 1_000,
            });
        }
        log
    }

    #[test]
    fn parent_shields_origin_across_children() {
        // Clients 0 and 1 land on different children (n_children=2); both
        // request the same resource. Child caches are cold for client 1,
        // but the parent's copy serves it without an origin contact.
        let log = tiny_log(&[(0, 0, "/d/a.html"), (10, 1, "/d/a.html")]);
        let mut origin = build_server(&log, DirectoryVolumes::new(1));
        let cfg = HierarchyConfig {
            n_children: 2,
            ..Default::default()
        };
        let report = simulate_hierarchy(&log, &[], &mut origin, &cfg);
        assert_eq!(report.client_requests, 2);
        assert_eq!(report.origin_contacts, 1);
        assert_eq!(report.parent_served, 1);
        assert!(report.origin_shielding() > 0.49);
    }

    #[test]
    fn child_cache_serves_repeats() {
        let log = tiny_log(&[(0, 0, "/d/a.html"), (5, 0, "/d/a.html")]);
        let mut origin = build_server(&log, DirectoryVolumes::new(1));
        let report = simulate_hierarchy(&log, &[], &mut origin, &HierarchyConfig::default());
        assert_eq!(report.child_fresh_hits, 1);
        assert_eq!(report.origin_contacts, 1);
    }

    #[test]
    fn parent_piggybacks_to_children() {
        // Same child, two resources in the same directory: the second
        // response carries a parent→child piggyback mentioning the first.
        let log = tiny_log(&[(0, 0, "/d/a.html"), (10, 0, "/d/b.html")]);
        let mut origin = build_server(&log, DirectoryVolumes::new(1));
        let report = simulate_hierarchy(&log, &[], &mut origin, &HierarchyConfig::default());
        assert!(report.child_piggybacks >= 1, "{report:?}");
        assert!(report.child_freshens >= 1);
        // Origin→parent piggybacks happened too.
        assert!(report.parent_piggybacks >= 1);
    }

    #[test]
    fn piggyback_off_means_no_messages() {
        let log = tiny_log(&[(0, 0, "/d/a.html"), (10, 0, "/d/b.html")]);
        let mut origin = build_server(&log, DirectoryVolumes::new(1));
        let cfg = HierarchyConfig {
            piggyback: false,
            ..Default::default()
        };
        let report = simulate_hierarchy(&log, &[], &mut origin, &cfg);
        assert_eq!(report.child_piggybacks, 0);
        assert_eq!(report.parent_piggybacks, 0);
    }

    #[test]
    fn invalidation_only_mode_skips_freshens() {
        let log = tiny_log(&[(0, 0, "/d/a.html"), (10, 0, "/d/b.html")]);
        let mut origin = build_server(&log, DirectoryVolumes::new(1));
        let cfg = HierarchyConfig {
            freshen_from_parent: false,
            ..Default::default()
        };
        let report = simulate_hierarchy(&log, &[], &mut origin, &cfg);
        assert!(report.child_piggybacks >= 1);
        assert_eq!(report.child_freshens, 0, "freshens disabled");
    }

    #[test]
    fn stale_detection_spans_levels() {
        // Fetch, modify at origin, re-request within both deltas: the
        // child serves its stale copy.
        let log = tiny_log(&[(0, 0, "/d/a.html"), (100, 0, "/d/a.html")]);
        let a = log.table.lookup("/d/a.html").unwrap();
        let changes = vec![ChangeEvent {
            time: ts(50),
            resource: a,
        }];
        let mut origin = build_server(&log, DirectoryVolumes::new(1));
        let report = simulate_hierarchy(&log, &changes, &mut origin, &HierarchyConfig::default());
        assert_eq!(report.stale_served, 1);
    }
}
