//! # piggyback-webcache
//!
//! Proxy cache simulation for the SIGCOMM '98 server-volumes reproduction:
//! a byte-bounded cache with pluggable replacement policies, freshness
//! intervals and If-Modified-Since validation, piggyback-driven coherency
//! and prefetching, adaptive per-resource freshness, and the informed
//! (size-ordered) fetch scheduler — the proxy applications of the paper's
//! Section 4.
//!
//! * [`cache`] — the object cache.
//! * [`policy`] — LRU, GreedyDual-Size, and piggyback-aware replacement.
//! * [`adaptive`] — Last-Modified-driven change estimation and adaptive Δ.
//! * [`informed`] — fetch-queue scheduling with piggybacked sizes.
//! * [`sim`] — the end-to-end proxy↔origin replay simulator.
//! * [`hierarchy`] — the two-level (children → parent → origin) variant.
//!
//! ```
//! use piggyback_webcache::{Cache, CacheEntry, PolicyKind};
//! use piggyback_core::types::{DurationMs, ResourceId, Timestamp};
//!
//! let mut cache = Cache::new(1024, PolicyKind::Lru.build());
//! let now = Timestamp::from_secs(0);
//! cache.insert(ResourceId(1), CacheEntry {
//!     size: 600,
//!     last_modified: now,
//!     expires: now + DurationMs::from_secs(60),
//!     prefetched: false,
//!     used: false,
//! }, now);
//! assert!(cache.lookup(ResourceId(1), Timestamp::from_secs(30)).unwrap().is_fresh(Timestamp::from_secs(30)));
//! // Inserting past capacity evicts the least recently used entry.
//! cache.insert(ResourceId(2), CacheEntry {
//!     size: 600,
//!     last_modified: now,
//!     expires: now + DurationMs::from_secs(60),
//!     prefetched: false,
//!     used: false,
//! }, Timestamp::from_secs(31));
//! assert!(cache.peek(ResourceId(1)).is_none());
//! ```

pub mod adaptive;
pub mod bodies;
pub mod cache;
pub mod hierarchy;
pub mod informed;
pub mod policy;
pub mod psi;
pub mod sharded;
pub mod sim;

pub use adaptive::{ChangeEstimator, FreshnessPolicy};
pub use bodies::{BodyShard, BodyShardOccupancy, ShardedBodyStore};
pub use cache::{Cache, CacheEntry, InsertOutcome};
pub use hierarchy::{simulate_hierarchy, HierarchyConfig, HierarchyReport};
pub use informed::{simulate_fetch_queue, FetchJob, QueueReport, SchedulingOrder};
pub use policy::{GdSize, Lru, PiggybackAware, PolicyKind, ReplacementPolicy};
pub use psi::{simulate_psi, ModificationLog, PsiConfig, PsiReport};
pub use sharded::{shard_index, ShardOccupancy, ShardedCache};
pub use sim::{build_server, simulate_proxy, PrefetchConfig, ProxySimConfig, ProxySimReport};
