//! End-to-end proxy cache simulation.
//!
//! Replays a server log through a proxy cache talking to a piggybacking
//! origin, with a resource-modification stream, and measures the effect of
//! the piggyback protocol on coherency (validations avoided, stale
//! responses), prefetching (useful vs futile fetches, bandwidth), and
//! replacement (hit rates) — the applications of Section 4.
//!
//! The origin only observes requests that reach it (misses and
//! validations), exactly as a real server would; cache hits are invisible
//! to its volumes.

use crate::adaptive::{ChangeEstimator, FreshnessPolicy};
use crate::cache::{Cache, CacheEntry};
use crate::policy::PolicyKind;
use piggyback_core::filter::ProxyFilter;
use piggyback_core::proxy::{classify_element, ElementAction};
use piggyback_core::rpv::RpvList;
use piggyback_core::server::PiggybackServer;
use piggyback_core::types::{DurationMs, Timestamp};
use piggyback_core::volume::VolumeProvider;
use piggyback_trace::synth::changes::ChangeEvent;
use piggyback_trace::ServerLog;

/// Prefetch policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Skip piggybacked resources larger than this.
    pub max_size: Option<u64>,
    /// At most this many prefetches per piggyback message.
    pub max_per_message: usize,
    /// Refetch resources a piggyback just invalidated.
    pub refresh_invalidated: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            max_size: Some(64 * 1024),
            max_per_message: 8,
            refresh_invalidated: false,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct ProxySimConfig {
    pub capacity_bytes: u64,
    pub policy: PolicyKind,
    pub freshness: FreshnessPolicy,
    /// Process piggyback information at all (off = the baseline proxy).
    pub piggyback: bool,
    /// Content-oriented filter sent with each request.
    pub filter: ProxyFilter,
    /// RPV pacing: (max list length, timeout).
    pub rpv: Option<(usize, DurationMs)>,
    pub prefetch: Option<PrefetchConfig>,
    /// Delta encoding (paper Section 4, citing reference \[23\]): when the
    /// proxy holds an outdated copy, the server transmits only the
    /// difference — modelled as this fraction of the full body size.
    /// `None` disables deltas.
    pub delta_encoding: Option<f64>,
}

impl Default for ProxySimConfig {
    fn default() -> Self {
        ProxySimConfig {
            capacity_bytes: 64 * 1024 * 1024,
            policy: PolicyKind::Lru,
            freshness: FreshnessPolicy::Fixed(DurationMs::from_secs(3600)),
            piggyback: true,
            filter: ProxyFilter::builder().max_piggy(10).build(),
            rpv: Some((16, DurationMs::from_secs(60))),
            prefetch: None,
            delta_encoding: None,
        }
    }
}

/// Counters from a proxy simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ProxySimReport {
    pub client_requests: u64,
    /// Requests that found any copy in the cache.
    pub cache_hits: u64,
    /// Requests served from cache without contacting the server.
    pub fresh_hits: u64,
    /// Fresh hits whose copy was actually out of date at the server.
    pub stale_served: u64,
    /// If-Modified-Since validations sent.
    pub validations: u64,
    /// Validations answered 304 Not Modified.
    pub not_modified: u64,
    /// Full 200 responses (misses + modified validations).
    pub full_fetches: u64,
    /// Body bytes transferred from the server (including prefetches).
    pub bytes_from_server: u64,
    /// Body bytes served to clients (cache hits + relayed fetches).
    pub bytes_to_clients: u64,
    pub piggyback_messages: u64,
    pub piggybacked_elements: u64,
    /// Cache entries freshened by piggyback metadata.
    pub piggyback_freshens: u64,
    /// Cache entries invalidated by piggyback metadata.
    pub piggyback_invalidations: u64,
    /// Fresh hits served only because a piggyback freshened the entry
    /// (the entry's original Δ had already expired).
    pub piggyback_saved_validations: u64,
    pub prefetches: u64,
    pub prefetch_bytes: u64,
    /// Prefetched entries that served at least one later request.
    pub useful_prefetches: u64,
    pub evictions: u64,
    /// Modified-resource responses sent as deltas.
    pub delta_responses: u64,
    /// Bytes avoided by delta encoding.
    pub delta_bytes_saved: u64,
}

impl ProxySimReport {
    fn frac(n: u64, d: u64) -> f64 {
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// Any-copy hit rate.
    pub fn hit_rate(&self) -> f64 {
        Self::frac(self.cache_hits, self.client_requests)
    }

    /// Served-without-server-contact rate.
    pub fn fresh_hit_rate(&self) -> f64 {
        Self::frac(self.fresh_hits, self.client_requests)
    }

    /// Requests that reached the server.
    pub fn server_contacts(&self) -> u64 {
        self.client_requests - self.fresh_hits + self.prefetches
    }

    /// Stale responses per fresh hit.
    pub fn stale_rate(&self) -> f64 {
        Self::frac(self.stale_served, self.fresh_hits)
    }

    /// Fraction of prefetches that were futile.
    pub fn futile_prefetch_rate(&self) -> f64 {
        Self::frac(self.prefetches - self.useful_prefetches, self.prefetches)
    }

    /// Byte hit rate: fraction of client-served bytes that did **not**
    /// cross the proxy↔server link.
    pub fn byte_hit_rate(&self) -> f64 {
        if self.bytes_to_clients == 0 {
            return 0.0;
        }
        1.0 - (self.bytes_from_server.min(self.bytes_to_clients) as f64
            / self.bytes_to_clients as f64)
    }
}

/// Register every resource of `log` with a piggybacking server over the
/// given volume scheme.
pub fn build_server<V: VolumeProvider>(log: &ServerLog, volumes: V) -> PiggybackServer<V> {
    let mut server = PiggybackServer::new(volumes);
    for (_, path, meta) in log.table.iter() {
        server.register(path, meta.size, meta.last_modified, meta.content_type);
    }
    server
}

/// Run the proxy simulation: `log` drives client requests, `changes` drives
/// server-side modifications, `server` answers with piggybacks per `cfg`.
///
/// `log` and `changes` must both be time-ordered. Resource ids in `log`
/// must match the server's table (use [`build_server`]).
pub fn simulate_proxy<V: VolumeProvider>(
    log: &ServerLog,
    changes: &[ChangeEvent],
    server: &mut PiggybackServer<V>,
    cfg: &ProxySimConfig,
) -> ProxySimReport {
    let mut report = ProxySimReport::default();
    let mut cache = Cache::new(cfg.capacity_bytes, cfg.policy.build());
    let mut estimator = ChangeEstimator::new();
    let mut rpv = cfg.rpv.map(|(len, timeout)| RpvList::new(len, timeout));
    // One filter reused for every request: only its RPV list varies, and it
    // is rewritten in place instead of cloning `cfg.filter` per entry.
    let mut live_filter = cfg.filter.clone();
    let disabled_filter = ProxyFilter::disabled();

    let mut change_idx = 0usize;
    for entry in &log.entries {
        let now = entry.time;
        // Apply all modifications up to this instant.
        while change_idx < changes.len() && changes[change_idx].time <= now {
            let ev = changes[change_idx];
            server.touch_modified(ev.resource, ev.time);
            change_idx += 1;
        }

        let r = entry.resource;
        report.client_requests += 1;
        let server_lm = server
            .table()
            .meta(r)
            .map(|m| m.last_modified)
            .unwrap_or(Timestamp::ZERO);

        let cached = cache.lookup(r, now);
        if let Some(snap) = cached {
            report.cache_hits += 1;
            if snap.is_fresh(now) {
                report.fresh_hits += 1;
                report.bytes_to_clients += snap.size;
                if snap.prefetched && !snap.used {
                    report.useful_prefetches += 1;
                }
                if server_lm > snap.last_modified {
                    report.stale_served += 1;
                }
                continue;
            }
            // Expired: validate with If-Modified-Since.
            report.validations += 1;
            let filter = request_filter(cfg, &mut live_filter, &disabled_filter, &mut rpv, now);
            server.record_access(r, entry.client, now);
            let delta = estimator.freshness_for(r, cfg.freshness);
            if server_lm > snap.last_modified {
                // Modified: full response, or a delta against the proxy's
                // outdated copy when delta encoding is on.
                report.full_fetches += 1;
                let size = server.table().meta(r).map_or(0, |m| m.size);
                let transfer = match cfg.delta_encoding {
                    Some(frac) => {
                        report.delta_responses += 1;
                        let delta = ((size as f64) * frac.clamp(0.0, 1.0)) as u64;
                        report.delta_bytes_saved += size - delta;
                        delta
                    }
                    None => size,
                };
                report.bytes_from_server += transfer;
                report.bytes_to_clients += size;
                cache.insert(
                    r,
                    CacheEntry {
                        size,
                        last_modified: server_lm,
                        expires: now + delta,
                        prefetched: false,
                        used: true,
                    },
                    now,
                );
            } else {
                report.not_modified += 1;
                report.bytes_to_clients += snap.size;
                cache.freshen(r, now + delta);
            }
            estimator.observe(r, server_lm);
            let msg = server.piggyback(r, filter, now);
            if let Some(msg) = msg {
                process_piggyback(
                    &msg,
                    now,
                    cfg,
                    server,
                    &mut cache,
                    &mut estimator,
                    &mut rpv,
                    &mut report,
                );
            }
        } else {
            // Miss: full fetch.
            let filter = request_filter(cfg, &mut live_filter, &disabled_filter, &mut rpv, now);
            server.record_access(r, entry.client, now);
            report.full_fetches += 1;
            let size = server.table().meta(r).map_or(0, |m| m.size);
            report.bytes_from_server += size;
            report.bytes_to_clients += size;
            let delta = estimator.freshness_for(r, cfg.freshness);
            cache.insert(
                r,
                CacheEntry {
                    size,
                    last_modified: server_lm,
                    expires: now + delta,
                    prefetched: false,
                    used: true,
                },
                now,
            );
            estimator.observe(r, server_lm);
            let msg = server.piggyback(r, filter, now);
            if let Some(msg) = msg {
                process_piggyback(
                    &msg,
                    now,
                    cfg,
                    server,
                    &mut cache,
                    &mut estimator,
                    &mut rpv,
                    &mut report,
                );
            }
        }
    }

    report.evictions = cache.evictions();
    report
}

/// Refresh `live`'s RPV list in place and hand back the filter to send.
///
/// When RPV tracking is off, `live.rpv` keeps whatever `cfg.filter` carried
/// (the config may pin a static RPV list), matching the old clone-per-request
/// behaviour without the per-request allocation.
fn request_filter<'a>(
    cfg: &ProxySimConfig,
    live: &'a mut ProxyFilter,
    disabled: &'a ProxyFilter,
    rpv: &mut Option<RpvList>,
    now: Timestamp,
) -> &'a ProxyFilter {
    if !cfg.piggyback {
        return disabled;
    }
    if let Some(rpv) = rpv {
        rpv.write_ids(now, &mut live.rpv);
    }
    live
}

#[allow(clippy::too_many_arguments)]
fn process_piggyback<V: VolumeProvider>(
    msg: &piggyback_core::element::PiggybackMessage,
    now: Timestamp,
    cfg: &ProxySimConfig,
    server: &PiggybackServer<V>,
    cache: &mut Cache,
    estimator: &mut ChangeEstimator,
    rpv: &mut Option<RpvList>,
    report: &mut ProxySimReport,
) {
    report.piggyback_messages += 1;
    report.piggybacked_elements += msg.len() as u64;
    if let Some(rpv) = rpv {
        rpv.record(msg.volume, now);
    }
    let mut prefetched_now = 0usize;
    for e in &msg.elements {
        estimator.observe(e.resource, e.last_modified);
        let cached_lm = cache.peek(e.resource).map(|c| c.last_modified);
        let was_expired = cache.peek(e.resource).is_some_and(|c| !c.is_fresh(now));
        match classify_element(cached_lm, e.last_modified) {
            ElementAction::Freshen => {
                let delta = estimator.freshness_for(e.resource, cfg.freshness);
                cache.freshen(e.resource, now + delta);
                cache.note_piggyback_mention(e.resource, now);
                report.piggyback_freshens += 1;
                if was_expired {
                    report.piggyback_saved_validations += 1;
                }
            }
            ElementAction::Invalidate => {
                cache.remove(e.resource);
                report.piggyback_invalidations += 1;
                if let Some(pf) = cfg.prefetch {
                    if pf.refresh_invalidated
                        && prefetched_now < pf.max_per_message
                        && pf.max_size.is_none_or(|m| e.size <= m)
                    {
                        prefetch(e, now, cfg, estimator, cache, report);
                        prefetched_now += 1;
                    }
                }
            }
            ElementAction::PrefetchCandidate => {
                if let Some(pf) = cfg.prefetch {
                    if prefetched_now < pf.max_per_message
                        && pf.max_size.is_none_or(|m| e.size <= m)
                    {
                        prefetch(e, now, cfg, estimator, cache, report);
                        prefetched_now += 1;
                    }
                }
            }
        }
    }
    let _ = server;
}

fn prefetch(
    e: &piggyback_core::element::PiggybackElement,
    now: Timestamp,
    cfg: &ProxySimConfig,
    estimator: &ChangeEstimator,
    cache: &mut Cache,
    report: &mut ProxySimReport,
) {
    report.prefetches += 1;
    report.prefetch_bytes += e.size;
    report.bytes_from_server += e.size;
    let delta = estimator.freshness_for(e.resource, cfg.freshness);
    cache.insert(
        e.resource,
        CacheEntry {
            size: e.size,
            last_modified: e.last_modified,
            expires: now + delta,
            prefetched: true,
            used: false,
        },
        now,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use piggyback_core::types::SourceId;
    use piggyback_core::volume::DirectoryVolumes;
    use piggyback_trace::record::{Method, ServerLogEntry};
    use piggyback_trace::ServerLog;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A log over a two-resource site: /d/a.html and /d/b.gif.
    fn tiny_log(times_and_paths: &[(u64, u32, &str)]) -> ServerLog {
        let mut log = ServerLog {
            name: "tiny".into(),
            ..Default::default()
        };
        // Register the full site regardless of what is requested.
        log.table.register_path("/d/a.html", 1_000, Timestamp::ZERO);
        log.table.register_path("/d/b.gif", 2_000, Timestamp::ZERO);
        for &(t, client, path) in times_and_paths {
            let r = log.table.lookup(path).expect("registered above");
            let bytes = log.table.meta(r).unwrap().size;
            log.entries.push(ServerLogEntry {
                time: ts(t),
                client: SourceId(client),
                resource: r,
                method: Method::Get,
                status: 200,
                bytes,
            });
        }
        log
    }

    fn run(log: &ServerLog, changes: &[ChangeEvent], cfg: &ProxySimConfig) -> ProxySimReport {
        let mut server = build_server(log, DirectoryVolumes::new(1));
        simulate_proxy(log, changes, &mut server, cfg)
    }

    #[test]
    fn repeated_request_hits_cache() {
        let log = tiny_log(&[(0, 1, "/d/a.html"), (10, 2, "/d/a.html")]);
        let report = run(&log, &[], &ProxySimConfig::default());
        assert_eq!(report.client_requests, 2);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.fresh_hits, 1);
        assert_eq!(report.full_fetches, 1);
        assert_eq!(report.bytes_from_server, 1_000);
        assert!((report.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expired_entry_validates_and_304s() {
        let log = tiny_log(&[(0, 1, "/d/a.html"), (4000, 1, "/d/a.html")]);
        let report = run(&log, &[], &ProxySimConfig::default());
        // Δ = 3600s; the second request at 4000s must validate.
        assert_eq!(report.validations, 1);
        assert_eq!(report.not_modified, 1);
        assert_eq!(report.full_fetches, 1, "no refetch on 304");
    }

    #[test]
    fn modified_resource_is_refetched_not_304d() {
        let log = tiny_log(&[(0, 1, "/d/a.html"), (4000, 1, "/d/a.html")]);
        let changes = vec![ChangeEvent {
            time: ts(100),
            resource: log.table.lookup("/d/a.html").unwrap(),
        }];
        let report = run(&log, &changes, &ProxySimConfig::default());
        assert_eq!(report.validations, 1);
        assert_eq!(report.not_modified, 0);
        assert_eq!(report.full_fetches, 2);
    }

    #[test]
    fn stale_serving_within_freshness_window() {
        // Fetch at 0; resource changes at 10; re-request at 100 (< Δ):
        // served from cache although out of date.
        let log = tiny_log(&[(0, 1, "/d/a.html"), (100, 1, "/d/a.html")]);
        let changes = vec![ChangeEvent {
            time: ts(10),
            resource: log.table.lookup("/d/a.html").unwrap(),
        }];
        let report = run(&log, &changes, &ProxySimConfig::default());
        assert_eq!(report.fresh_hits, 1);
        assert_eq!(report.stale_served, 1);
    }

    #[test]
    fn piggyback_invalidation_prevents_stale_serving() {
        // a fetched at 0; b fetched at 1 (same volume → piggyback mentions
        // a); a changes at 10; b revalidates at 5000 → its response
        // piggybacks a with the NEW Last-Modified → proxy invalidates a;
        // request for a at 5050 misses instead of serving stale.
        let log = tiny_log(&[
            (0, 1, "/d/a.html"),
            (1, 1, "/d/b.gif"),
            (5000, 1, "/d/b.gif"),
            (5050, 1, "/d/a.html"),
        ]);
        let a = log.table.lookup("/d/a.html").unwrap();
        let changes = vec![ChangeEvent {
            time: ts(10),
            resource: a,
        }];
        let with = run(&log, &changes, &ProxySimConfig::default());
        assert!(with.piggyback_invalidations >= 1);
        assert_eq!(with.stale_served, 0);

        let without = run(
            &log,
            &changes,
            &ProxySimConfig {
                piggyback: false,
                ..Default::default()
            },
        );
        // Without piggybacking, a@5050's cached copy expired (Δ=3600), so
        // it validates rather than serving stale — but the piggyback case
        // converts that validation into a timely invalidation.
        assert_eq!(without.piggyback_messages, 0);
    }

    #[test]
    fn piggyback_freshen_saves_validation() {
        // a fetched at 0 (Δ=3600, expires 3600); b requested at 4000: its
        // response piggybacks a (unchanged) → freshen a to 4000+Δ; request
        // a at 5000: fresh hit, no validation.
        let log = tiny_log(&[
            (0, 1, "/d/a.html"),
            (4000, 1, "/d/b.gif"),
            (5000, 1, "/d/a.html"),
        ]);
        let report = run(&log, &[], &ProxySimConfig::default());
        assert!(report.piggyback_freshens >= 1);
        assert_eq!(report.piggyback_saved_validations, 1);
        assert_eq!(report.validations, 0);
        assert_eq!(report.fresh_hits, 1);

        // Baseline without piggybacking: the same request validates.
        let base = run(
            &log,
            &[],
            &ProxySimConfig {
                piggyback: false,
                ..Default::default()
            },
        );
        assert_eq!(base.validations, 1);
    }

    #[test]
    fn prefetch_counts_useful_and_futile() {
        // a then b requested: a's... b is piggybacked on a's response? No —
        // volume FIFO is empty at a's request. Request order: a, b, then c
        // requests nothing. Use: a@0 (no piggyback), b@1 (piggybacks a —
        // cached already, freshen), a@2 fresh hit. For a prefetch we need
        // an uncached mention: request b first, then a (piggybacks b? b is
        // cached...). Simplest: two clients. Client 1 fetches a and b;
        // client... the shared cache makes them cached. Instead: prefetch
        // triggers when the piggyback mentions an evicted/never-fetched
        // resource: request a@0, then a@10 expired? Use a tiny trace where
        // b is never requested but gets recorded server-side via another
        // request. Server volume FIFO only holds *accessed* resources, so
        // prefetch needs b accessed once: client 2 fetches b at t=0 through
        // a *different* proxy — not modelled. So: b@0 (cached), evict it by
        // capacity, then a@1 piggybacks b (not in cache) → prefetch; b@2 is
        // a fresh hit on the prefetched copy.
        let log = tiny_log(&[(0, 1, "/d/b.gif"), (1, 1, "/d/a.html"), (2, 1, "/d/b.gif")]);
        let cfg = ProxySimConfig {
            capacity_bytes: 2_500, // b (2000) evicted when a (1000) arrives
            prefetch: Some(PrefetchConfig {
                max_size: None,
                max_per_message: 4,
                refresh_invalidated: false,
            }),
            ..Default::default()
        };
        let report = run(&log, &[], &cfg);
        assert_eq!(report.prefetches, 1, "b prefetched off a's piggyback");
        assert_eq!(report.useful_prefetches, 1, "b@2 hit the prefetched copy");
        assert_eq!(report.futile_prefetch_rate(), 0.0);
        assert_eq!(report.fresh_hits, 1);
    }

    #[test]
    fn rpv_limits_piggyback_messages() {
        let log = tiny_log(&[
            (0, 1, "/d/a.html"),
            (1, 1, "/d/b.gif"),
            (2, 1, "/d/a.html"),
            (3, 1, "/d/b.gif"),
            (4, 1, "/d/a.html"),
        ]);
        // Tiny Δ so every request hits the server.
        let mut cfg = ProxySimConfig {
            freshness: FreshnessPolicy::Fixed(DurationMs::from_millis(1)),
            ..Default::default()
        };
        cfg.rpv = None;
        let unpaced = run(&log, &[], &cfg);
        cfg.rpv = Some((16, DurationMs::from_secs(60)));
        let paced = run(&log, &[], &cfg);
        assert!(
            paced.piggyback_messages < unpaced.piggyback_messages,
            "RPV should suppress repeats: {} vs {}",
            paced.piggyback_messages,
            unpaced.piggyback_messages
        );
    }

    #[test]
    fn eviction_counted() {
        let log = tiny_log(&[(0, 1, "/d/a.html"), (1, 1, "/d/b.gif")]);
        let cfg = ProxySimConfig {
            capacity_bytes: 2_200,
            ..Default::default()
        };
        let report = run(&log, &[], &cfg);
        assert_eq!(report.evictions, 1);
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;
    use piggyback_core::types::SourceId;
    use piggyback_core::volume::DirectoryVolumes;
    use piggyback_trace::record::{Method, ServerLogEntry};
    use piggyback_trace::ServerLog;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// Fetch, modify, validate: with delta encoding the refetch moves only
    /// a fraction of the body.
    #[test]
    fn delta_encoding_shrinks_modified_transfers() {
        let mut log = ServerLog {
            name: "delta".into(),
            ..Default::default()
        };
        let a = log
            .table
            .register_path("/d/a.html", 10_000, Timestamp::ZERO);
        for t in [0u64, 4000] {
            log.entries.push(ServerLogEntry {
                time: ts(t),
                client: SourceId(1),
                resource: a,
                method: Method::Get,
                status: 200,
                bytes: 10_000,
            });
        }
        let changes = vec![ChangeEvent {
            time: ts(100),
            resource: a,
        }];

        let run = |delta: Option<f64>| {
            let mut server = build_server(&log, DirectoryVolumes::new(1));
            let cfg = ProxySimConfig {
                delta_encoding: delta,
                ..Default::default()
            };
            simulate_proxy(&log, &changes, &mut server, &cfg)
        };

        let full = run(None);
        assert_eq!(full.bytes_from_server, 20_000);
        assert_eq!(full.delta_responses, 0);

        let delta = run(Some(0.15));
        // First fetch full (10k), refetch as delta (1.5k).
        assert_eq!(delta.bytes_from_server, 11_500);
        assert_eq!(delta.delta_responses, 1);
        assert_eq!(delta.delta_bytes_saved, 8_500);
        assert_eq!(delta.full_fetches, full.full_fetches);
    }

    /// Misses (no old copy) always transfer the full body.
    #[test]
    fn delta_does_not_apply_to_cold_fetches() {
        let mut log = ServerLog {
            name: "delta2".into(),
            ..Default::default()
        };
        let a = log.table.register_path("/d/a.html", 5_000, Timestamp::ZERO);
        log.entries.push(ServerLogEntry {
            time: ts(0),
            client: SourceId(1),
            resource: a,
            method: Method::Get,
            status: 200,
            bytes: 5_000,
        });
        let mut server = build_server(&log, DirectoryVolumes::new(1));
        let cfg = ProxySimConfig {
            delta_encoding: Some(0.1),
            ..Default::default()
        };
        let report = simulate_proxy(&log, &[], &mut server, &cfg);
        assert_eq!(report.bytes_from_server, 5_000);
        assert_eq!(report.delta_responses, 0);
    }
}

#[cfg(test)]
mod byte_hit_tests {
    use super::*;
    use piggyback_core::types::SourceId;
    use piggyback_core::volume::DirectoryVolumes;
    use piggyback_trace::record::{Method, ServerLogEntry};
    use piggyback_trace::ServerLog;

    #[test]
    fn byte_hit_rate_counts_cache_served_bytes() {
        let mut log = ServerLog {
            name: "bytes".into(),
            ..Default::default()
        };
        let a = log.table.register_path("/d/a.html", 4_000, Timestamp::ZERO);
        for t in [0u64, 10, 20, 30] {
            log.entries.push(ServerLogEntry {
                time: Timestamp::from_secs(t),
                client: SourceId(1),
                resource: a,
                method: Method::Get,
                status: 200,
                bytes: 4_000,
            });
        }
        let mut server = build_server(&log, DirectoryVolumes::new(1));
        let report = simulate_proxy(&log, &[], &mut server, &ProxySimConfig::default());
        // One 4 kB fetch serves four 4 kB responses: byte hit rate 75%.
        assert_eq!(report.bytes_from_server, 4_000);
        assert_eq!(report.bytes_to_clients, 16_000);
        assert!((report.byte_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn byte_hit_rate_zero_without_traffic() {
        assert_eq!(ProxySimReport::default().byte_hit_rate(), 0.0);
    }
}
