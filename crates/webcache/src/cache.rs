//! The proxy's object cache: byte-bounded storage with expiration times
//! and a pluggable replacement policy.

use crate::policy::ReplacementPolicy;
use piggyback_core::types::{ResourceId, Timestamp};
use std::collections::{BTreeSet, HashMap};

/// Metadata for one cached resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    pub size: u64,
    /// Version of the resource (server Last-Modified at fetch time).
    pub last_modified: Timestamp,
    /// The entry may be served without validation until this instant
    /// (exclusive) — the freshness interval Δ of Section 2.1.
    pub expires: Timestamp,
    /// Whether the entry arrived via prefetch rather than a client request.
    pub prefetched: bool,
    /// Whether a client request has hit the entry since it was (pre)fetched.
    pub used: bool,
}

impl CacheEntry {
    /// Fresh at `now` (no validation needed)?
    pub fn is_fresh(&self, now: Timestamp) -> bool {
        now < self.expires
    }
}

/// What [`Cache::insert_accounted`] displaced: the full entries, not just
/// ids, so callers keeping an external ledger (e.g. the proxy's
/// prefetch used/wasted split) can settle displaced speculations.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The previous entry for the inserted resource, if it was replaced.
    pub replaced: Option<CacheEntry>,
    /// Entries evicted to make room, with their ids (same shard).
    pub evicted: Vec<(ResourceId, CacheEntry)>,
    /// Whether the new entry is actually resident; `false` only for
    /// objects too large to cache (callers must drop the orphan body).
    pub inserted: bool,
}

/// A byte-capacity cache with policy-driven eviction.
pub struct Cache {
    entries: HashMap<ResourceId, CacheEntry>,
    used_bytes: u64,
    capacity: u64,
    policy: Box<dyn ReplacementPolicy + Send>,
    evictions: u64,
    /// Resources whose entry is `prefetched && !used`: speculative bytes
    /// no client has asked for yet. Evicted before anything the policy
    /// nominates — the paper's wasted-bytes concern says unproven
    /// speculation must never displace demand-fetched content. BTreeSet
    /// so victim choice is deterministic (smallest id first).
    speculative: BTreeSet<ResourceId>,
}

impl Cache {
    pub fn new(capacity: u64, policy: Box<dyn ReplacementPolicy + Send>) -> Self {
        Cache {
            entries: HashMap::new(),
            used_bytes: 0,
            capacity,
            policy,
            evictions: 0,
            speculative: BTreeSet::new(),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Peek without touching recency.
    pub fn peek(&self, r: ResourceId) -> Option<&CacheEntry> {
        self.entries.get(&r)
    }

    /// Look up for a client request: touches the replacement policy and
    /// marks the entry used. The returned snapshot reflects the state
    /// *before* the `used` mark, so callers can detect first use of a
    /// prefetched entry.
    pub fn lookup(&mut self, r: ResourceId, now: Timestamp) -> Option<CacheEntry> {
        let entry = self.entries.get_mut(&r)?;
        let snapshot = *entry;
        entry.used = true;
        self.speculative.remove(&r);
        self.policy.on_access(r, snapshot.size, now);
        Some(snapshot)
    }

    /// Insert (or replace) an entry, evicting as needed. Returns the
    /// evicted resources. Objects larger than the whole cache are not
    /// cached (returned untouched, no eviction storm).
    pub fn insert(&mut self, r: ResourceId, entry: CacheEntry, now: Timestamp) -> Vec<ResourceId> {
        self.insert_accounted(r, entry, now)
            .evicted
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// [`Cache::insert`] that also reports *what* it displaced — the
    /// replaced previous entry and each evicted entry — so callers can
    /// settle external per-entry accounting (the prefetch ledger).
    pub fn insert_accounted(
        &mut self,
        r: ResourceId,
        entry: CacheEntry,
        now: Timestamp,
    ) -> InsertOutcome {
        if entry.size > self.capacity {
            // Uncachable: also drop any stale previous copy.
            let replaced = self.take(r);
            return InsertOutcome {
                replaced,
                evicted: Vec::new(),
                inserted: false,
            };
        }
        let replaced = self.entries.remove(&r);
        if let Some(old) = &replaced {
            self.used_bytes -= old.size;
            self.policy.remove(r);
            self.speculative.remove(&r);
        }
        let mut evicted = Vec::new();
        while self.used_bytes + entry.size > self.capacity {
            // Unused prefetched entries go first — speculation that never
            // paid off must not displace demand-fetched content.
            let victim = self
                .speculative
                .first()
                .copied()
                .or_else(|| self.policy.evict_candidate())
                .expect("policy must track every cached entry");
            debug_assert_ne!(victim, r);
            let old = self
                .entries
                .remove(&victim)
                .expect("policy nominated an uncached victim");
            self.used_bytes -= old.size;
            self.policy.remove(victim);
            self.speculative.remove(&victim);
            self.evictions += 1;
            evicted.push((victim, old));
        }
        self.used_bytes += entry.size;
        self.entries.insert(r, entry);
        if entry.prefetched && !entry.used {
            self.speculative.insert(r);
        }
        self.policy.on_insert(r, entry.size, now);
        InsertOutcome {
            replaced,
            evicted,
            inserted: true,
        }
    }

    /// Remove an entry (invalidation). Returns whether it was present.
    pub fn remove(&mut self, r: ResourceId) -> bool {
        self.take(r).is_some()
    }

    /// Remove an entry and return it, so the caller can inspect what was
    /// dropped (e.g. settle a still-unused prefetched entry as wasted).
    pub fn take(&mut self, r: ResourceId) -> Option<CacheEntry> {
        let e = self.entries.remove(&r)?;
        self.used_bytes -= e.size;
        self.policy.remove(r);
        self.speculative.remove(&r);
        Some(e)
    }

    /// Extend an entry's expiration (piggyback freshen or 304 validation).
    pub fn freshen(&mut self, r: ResourceId, expires: Timestamp) -> bool {
        match self.entries.get_mut(&r) {
            Some(e) => {
                e.expires = expires;
                true
            }
            None => false,
        }
    }

    /// Record that a piggyback mentioned `r` (policy hint).
    pub fn note_piggyback_mention(&mut self, r: ResourceId, now: Timestamp) {
        if let Some(e) = self.entries.get(&r) {
            let size = e.size;
            self.policy.on_piggyback_mention(r, size, now);
        }
    }

    /// Iterate entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &CacheEntry)> {
        self.entries.iter().map(|(&r, e)| (r, e))
    }

    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        let total: u64 = self.entries.values().map(|e| e.size).sum();
        assert_eq!(total, self.used_bytes, "byte accounting drifted");
        assert!(self.used_bytes <= self.capacity, "over capacity");
        assert_eq!(self.policy.len(), self.entries.len(), "policy desync");
        for r in &self.speculative {
            let e = self.entries.get(r).expect("speculative ghost");
            assert!(e.prefetched && !e.used, "speculative set desync");
        }
        let unused_prefetched = self
            .entries
            .iter()
            .filter(|(_, e)| e.prefetched && !e.used)
            .count();
        assert_eq!(
            unused_prefetched,
            self.speculative.len(),
            "speculative miss"
        );
    }
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("entries", &self.entries.len())
            .field("used_bytes", &self.used_bytes)
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, PolicyKind};

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn r(i: u32) -> ResourceId {
        ResourceId(i)
    }

    fn entry(size: u64, expires: u64) -> CacheEntry {
        CacheEntry {
            size,
            last_modified: Timestamp::ZERO,
            expires: ts(expires),
            prefetched: false,
            used: false,
        }
    }

    fn lru_cache(cap: u64) -> Cache {
        Cache::new(cap, Box::new(Lru::new()))
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = lru_cache(1000);
        c.insert(r(1), entry(400, 60), ts(0));
        c.check_invariants();
        let e = c.lookup(r(1), ts(10)).unwrap();
        assert!(e.is_fresh(ts(59)));
        assert!(!e.is_fresh(ts(60)));
        assert!(c.remove(r(1)));
        assert!(!c.remove(r(1)));
        c.check_invariants();
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_enforced_with_lru_eviction() {
        let mut c = lru_cache(1000);
        c.insert(r(1), entry(400, 100), ts(1));
        c.insert(r(2), entry(400, 100), ts(2));
        // Touch r1 so r2 is the LRU victim.
        c.lookup(r(1), ts(3));
        let evicted = c.insert(r(3), entry(400, 100), ts(4));
        assert_eq!(evicted, vec![r(2)]);
        c.check_invariants();
        assert!(c.peek(r(1)).is_some());
        assert!(c.peek(r(2)).is_none());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let mut c = lru_cache(100);
        c.insert(r(1), entry(50, 10), ts(0));
        let evicted = c.insert(r(2), entry(500, 10), ts(1));
        assert!(evicted.is_empty());
        assert!(c.peek(r(2)).is_none());
        assert!(c.peek(r(1)).is_some(), "small entry untouched");
        c.check_invariants();
    }

    #[test]
    fn replace_updates_byte_accounting() {
        let mut c = lru_cache(1000);
        c.insert(r(1), entry(400, 10), ts(0));
        c.insert(r(1), entry(700, 20), ts(1));
        assert_eq!(c.used_bytes(), 700);
        assert_eq!(c.len(), 1);
        c.check_invariants();
    }

    #[test]
    fn freshen_extends_expiry() {
        let mut c = lru_cache(1000);
        c.insert(r(1), entry(100, 50), ts(0));
        assert!(c.freshen(r(1), ts(500)));
        assert!(c.peek(r(1)).unwrap().is_fresh(ts(499)));
        assert!(!c.freshen(r(9), ts(500)));
    }

    #[test]
    fn piggyback_mention_changes_eviction_order_for_aware_policy() {
        let mut c = Cache::new(800, PolicyKind::PiggybackAware.build());
        c.insert(r(1), entry(400, 100), ts(1));
        c.insert(r(2), entry(400, 100), ts(2));
        c.note_piggyback_mention(r(1), ts(3));
        let evicted = c.insert(r(3), entry(400, 100), ts(4));
        assert_eq!(evicted, vec![r(2)]);
        c.check_invariants();
    }

    #[test]
    fn eviction_cascades_until_fit() {
        let mut c = lru_cache(1000);
        for i in 0..5 {
            c.insert(r(i), entry(200, 100), ts(i as u64));
        }
        let evicted = c.insert(r(10), entry(900, 100), ts(10));
        assert_eq!(evicted.len(), 5, "needs almost the whole cache");
        c.check_invariants();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unused_prefetched_entries_evict_first() {
        let mut c = lru_cache(1000);
        c.insert(r(1), entry(400, 100), ts(1));
        let spec = CacheEntry {
            prefetched: true,
            ..entry(400, 100)
        };
        c.insert(r(2), spec, ts(2));
        // LRU order says r1 is the victim, but r2 is unproven speculation.
        let out = c.insert_accounted(r(3), entry(400, 100), ts(3));
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].0, r(2));
        assert!(out.evicted[0].1.prefetched);
        assert!(c.peek(r(1)).is_some(), "demand entry survives");
        c.check_invariants();
    }

    #[test]
    fn used_prefetched_entries_lose_eviction_bias() {
        let mut c = lru_cache(1000);
        let spec = CacheEntry {
            prefetched: true,
            ..entry(400, 100)
        };
        c.insert(r(1), spec, ts(1));
        c.insert(r(2), entry(400, 100), ts(2));
        // A client hit proves the speculation; r1 is now plain LRU.
        c.lookup(r(1), ts(3));
        let out = c.insert_accounted(r(4), entry(400, 100), ts(4));
        assert_eq!(out.evicted[0].0, r(2), "normal LRU order once used");
        c.check_invariants();
    }

    #[test]
    fn insert_accounted_reports_replaced_entry() {
        let mut c = lru_cache(1000);
        let spec = CacheEntry {
            prefetched: true,
            ..entry(300, 100)
        };
        c.insert(r(1), spec, ts(0));
        let out = c.insert_accounted(r(1), entry(500, 200), ts(1));
        let old = out.replaced.expect("old entry reported");
        assert!(old.prefetched && !old.used);
        assert_eq!(old.size, 300);
        assert!(out.evicted.is_empty());
        assert!(out.inserted);
        c.check_invariants();
    }

    #[test]
    fn take_returns_entry_and_uncachable_insert_reports_displaced() {
        let mut c = lru_cache(100);
        let spec = CacheEntry {
            prefetched: true,
            ..entry(50, 100)
        };
        c.insert(r(1), spec, ts(0));
        // Oversized replacement still surfaces the dropped previous copy.
        let out = c.insert_accounted(r(1), entry(500, 100), ts(1));
        assert_eq!(out.replaced.map(|e| e.size), Some(50));
        assert!(!out.inserted, "oversized object reported non-resident");
        assert!(c.peek(r(1)).is_none());
        c.insert(r(2), spec, ts(2));
        assert_eq!(c.take(r(2)).map(|e| e.size), Some(50));
        assert_eq!(c.take(r(2)), None);
        c.check_invariants();
    }

    #[test]
    fn lookup_marks_used() {
        let mut c = lru_cache(100);
        c.insert(
            r(1),
            CacheEntry {
                prefetched: true,
                ..entry(10, 100)
            },
            ts(0),
        );
        assert!(!c.peek(r(1)).unwrap().used);
        c.lookup(r(1), ts(1));
        assert!(c.peek(r(1)).unwrap().used);
        assert!(c.peek(r(1)).unwrap().prefetched);
    }
}
