//! N-way sharded cache for concurrent proxies.
//!
//! [`ShardedCache`] wraps N independent [`Cache`] shards, each behind its
//! own mutex, and routes every resource to a fixed shard by hashing its
//! [`ResourceId`]. Operations on different shards never contend, so a
//! multi-threaded proxy scales instead of serializing on one big lock.
//!
//! Design notes:
//!
//! * The byte capacity is split evenly across shards, so eviction pressure
//!   is per-shard. A pathological workload that hashes everything into one
//!   shard sees 1/N of the configured capacity; the shard router uses a
//!   Fibonacci multiplicative hash to make that astronomically unlikely
//!   for real id populations (see the distribution property tests below).
//! * All methods take `&self`: the sharding is the synchronization.
//! * Aggregate accessors (`len`, `used_bytes`, `evictions`) lock shards
//!   one at a time, so they are linearizable per shard but only
//!   approximate across shards while writers run — fine for statistics,
//!   which is all they are used for.

use crate::cache::{Cache, CacheEntry, InsertOutcome};
use crate::policy::PolicyKind;
use parking_lot::Mutex;
use piggyback_core::types::{ResourceId, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// 2^64 / φ, the Fibonacci hashing multiplier: consecutive ids land far
/// apart, and low-entropy id populations still spread evenly.
const FIB_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Route `r` to one of `shards` buckets (Fibonacci multiplicative hash).
///
/// Exposed so co-sharded side tables (e.g. a body store) can use the same
/// routing and keep "everything about resource r lives in shard i" true.
pub fn shard_index(r: ResourceId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // Multiply spreads entropy into the high bits; take them and reduce.
    (((r.0 as u64).wrapping_mul(FIB_MULT) >> 32) as usize) % shards
}

/// Lock-free occupancy gauges mirrored out of one shard.
///
/// Refreshed (relaxed stores) every time the shard's lock is released by
/// a [`ShardedCache`] accessor, so readers — a metrics endpoint scraping
/// per-shard occupancy — never take a shard lock. Each gauge is
/// individually exact as of some recent quiescent point; cross-gauge
/// consistency is approximate while writers run, which is all statistics
/// need.
#[derive(Debug, Default)]
struct ShardGauges {
    bytes: AtomicU64,
    entries: AtomicU64,
    evictions: AtomicU64,
}

/// A plain snapshot of one shard's occupancy (see [`ShardedCache::occupancy`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Bytes cached in this shard.
    pub bytes: u64,
    /// Entries cached in this shard.
    pub entries: u64,
    /// Evictions from this shard since construction.
    pub evictions: u64,
}

/// A byte-capacity cache split into independently locked shards.
pub struct ShardedCache {
    shards: Vec<Mutex<Cache>>,
    gauges: Vec<ShardGauges>,
    /// Bumped (Release) by every mutating operation — insert, remove,
    /// take, freshen — and read (Acquire) by [`mutation_epoch`]. Lets a
    /// lock-free reader (a reactor shard's affine L1) prove "nothing in
    /// the cache changed between these two samples" without touching any
    /// shard lock. Lookups don't bump it: the `used`/recency marks they
    /// write never change what a hit would serve.
    ///
    /// [`mutation_epoch`]: ShardedCache::mutation_epoch
    epoch: AtomicU64,
}

impl ShardedCache {
    /// Build `shards` shards (at least 1) sharing `capacity` bytes evenly.
    pub fn new(capacity: u64, shards: usize, policy: PolicyKind) -> Self {
        let n = shards.max(1) as u64;
        let per = capacity / n;
        let remainder = capacity % n;
        let shards: Vec<_> = (0..n)
            .map(|i| {
                // Give the remainder to shard 0 so no byte is lost.
                let cap = per + if i == 0 { remainder } else { 0 };
                Mutex::new(Cache::new(cap, policy.build()))
            })
            .collect();
        let gauges = (0..shards.len()).map(|_| ShardGauges::default()).collect();
        ShardedCache {
            shards,
            gauges,
            epoch: AtomicU64::new(0),
        }
    }

    /// Current mutation epoch: unchanged between two samples ⇔ no entry
    /// was inserted, removed, invalidated, or re-freshened in between.
    /// Pair with [`bump`](Self::bump_epoch)-on-mutate to validate
    /// lock-free snapshots (acquire/release so an observed bump also
    /// publishes the mutation that caused it).
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `r` routes to.
    pub fn shard_of(&self, r: ResourceId) -> usize {
        shard_index(r, self.shards.len())
    }

    /// Run `f` with the shard that owns `r` locked.
    pub fn with_resource_shard<T>(&self, r: ResourceId, f: impl FnOnce(&mut Cache) -> T) -> T {
        self.with_shard(self.shard_of(r), f)
    }

    /// Run `f` with shard `i` locked (statistics, tests, maintenance).
    pub fn with_shard<T>(&self, i: usize, f: impl FnOnce(&mut Cache) -> T) -> T {
        let mut guard = self.shards[i].lock();
        let out = f(&mut guard);
        // Mirror occupancy into the lock-free gauges while still holding
        // the lock, so each store publishes a state the shard really had.
        let g = &self.gauges[i];
        g.bytes.store(guard.used_bytes(), Relaxed);
        g.entries.store(guard.len() as u64, Relaxed);
        g.evictions.store(guard.evictions(), Relaxed);
        out
    }

    /// Per-shard occupancy, read entirely from atomic gauges — no shard
    /// lock is taken, so a metrics scrape can never contend with (or wait
    /// on) the request hot path.
    pub fn occupancy(&self) -> Vec<ShardOccupancy> {
        self.gauges
            .iter()
            .map(|g| ShardOccupancy {
                bytes: g.bytes.load(Relaxed),
                entries: g.entries.load(Relaxed),
                evictions: g.evictions.load(Relaxed),
            })
            .collect()
    }

    /// Client-request lookup: touches recency and marks the entry used.
    /// The snapshot reflects the state before the `used` mark, matching
    /// [`Cache::lookup`].
    pub fn lookup(&self, r: ResourceId, now: Timestamp) -> Option<CacheEntry> {
        self.with_resource_shard(r, |c| c.lookup(r, now))
    }

    /// Peek without touching recency (copies the entry out of the lock).
    pub fn peek(&self, r: ResourceId) -> Option<CacheEntry> {
        self.with_resource_shard(r, |c| c.peek(r).copied())
    }

    /// Insert (or replace), evicting within the owning shard as needed.
    /// Returns the evicted resources — all from the same shard, so a
    /// co-sharded side table can clean up under one lock.
    pub fn insert(&self, r: ResourceId, entry: CacheEntry, now: Timestamp) -> Vec<ResourceId> {
        self.bump_epoch();
        self.with_resource_shard(r, |c| c.insert(r, entry, now))
    }

    /// [`ShardedCache::insert`] that reports the displaced entries (same
    /// shard), matching [`Cache::insert_accounted`].
    pub fn insert_accounted(
        &self,
        r: ResourceId,
        entry: CacheEntry,
        now: Timestamp,
    ) -> InsertOutcome {
        self.bump_epoch();
        self.with_resource_shard(r, |c| c.insert_accounted(r, entry, now))
    }

    /// Remove an entry (invalidation). Returns whether it was present.
    pub fn remove(&self, r: ResourceId) -> bool {
        self.bump_epoch();
        self.with_resource_shard(r, |c| c.remove(r))
    }

    /// Remove an entry and return it, matching [`Cache::take`].
    pub fn take(&self, r: ResourceId) -> Option<CacheEntry> {
        self.bump_epoch();
        self.with_resource_shard(r, |c| c.take(r))
    }

    /// Extend an entry's expiration (piggyback freshen or 304 validation).
    pub fn freshen(&self, r: ResourceId, expires: Timestamp) -> bool {
        self.bump_epoch();
        self.with_resource_shard(r, |c| c.freshen(r, expires))
    }

    /// Record that a piggyback mentioned `r` (policy hint).
    pub fn note_piggyback_mention(&self, r: ResourceId, now: Timestamp) {
        self.with_resource_shard(r, |c| c.note_piggyback_mention(r, now));
    }

    /// Total configured capacity across shards.
    pub fn capacity(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Total bytes cached (approximate across shards under writers).
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Total entries cached (approximate across shards under writers).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total evictions across shards since construction.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().evictions()).sum()
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn entry(size: u64, expires: u64) -> CacheEntry {
        CacheEntry {
            size,
            last_modified: Timestamp::ZERO,
            expires: ts(expires),
            prefetched: false,
            used: false,
        }
    }

    #[test]
    fn routes_are_stable_and_in_range() {
        let c = ShardedCache::new(1 << 20, 8, PolicyKind::Lru);
        for i in 0..10_000u32 {
            let s = c.shard_of(ResourceId(i));
            assert!(s < 8);
            assert_eq!(s, c.shard_of(ResourceId(i)), "routing must be stable");
            assert_eq!(s, shard_index(ResourceId(i), 8));
        }
    }

    #[test]
    fn single_shard_degenerates_to_plain_cache() {
        let c = ShardedCache::new(1000, 1, PolicyKind::Lru);
        c.insert(ResourceId(1), entry(400, 100), ts(1));
        c.insert(ResourceId(2), entry(400, 100), ts(2));
        c.lookup(ResourceId(1), ts(3));
        let evicted = c.insert(ResourceId(3), entry(400, 100), ts(4));
        assert_eq!(evicted, vec![ResourceId(2)], "LRU order preserved");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn capacity_split_loses_no_bytes() {
        for shards in 1..=9 {
            let c = ShardedCache::new(1_000_003, shards, PolicyKind::Lru);
            assert_eq!(c.capacity(), 1_000_003, "shards={shards}");
        }
    }

    #[test]
    fn basic_ops_route_through_shards() {
        let c = ShardedCache::new(1 << 20, 4, PolicyKind::Lru);
        let r = ResourceId(42);
        assert!(c.lookup(r, ts(0)).is_none());
        c.insert(r, entry(100, 50), ts(0));
        assert!(c.peek(r).is_some());
        assert!(c.lookup(r, ts(1)).unwrap().is_fresh(ts(49)));
        assert!(c.freshen(r, ts(500)));
        assert!(c.peek(r).unwrap().is_fresh(ts(499)));
        c.note_piggyback_mention(r, ts(2));
        assert!(c.remove(r));
        assert!(!c.remove(r));
        assert!(c.is_empty());
    }

    /// The eviction bias survives sharding: within a shard, an unused
    /// prefetched entry is evicted before demand-fetched LRU victims, and
    /// a used one is not. Single shard pins all ids to one eviction arena.
    #[test]
    fn sharded_eviction_prefers_unused_prefetched() {
        let c = ShardedCache::new(1200, 1, PolicyKind::Lru);
        c.insert(ResourceId(1), entry(400, 100), ts(1));
        let spec = CacheEntry {
            prefetched: true,
            ..entry(400, 100)
        };
        c.insert(ResourceId(2), spec, ts(2));
        c.insert(ResourceId(3), entry(400, 100), ts(3));
        // r1 is the LRU victim, but r2 is speculative and unproven.
        let out = c.insert_accounted(ResourceId(4), entry(400, 100), ts(4));
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].0, ResourceId(2));
        assert!(out.evicted[0].1.prefetched && !out.evicted[0].1.used);
        assert!(c.peek(ResourceId(1)).is_some());

        // A client hit removes the bias: next eviction is plain LRU (r1).
        assert!(c.take(ResourceId(4)).is_some());
        c.insert(ResourceId(2), spec, ts(5));
        assert!(c.lookup(ResourceId(2), ts(6)).is_some());
        let out = c.insert_accounted(ResourceId(5), entry(400, 100), ts(7));
        assert_eq!(
            out.evicted.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![ResourceId(1)]
        );
        c.with_shard(0, |shard| shard.check_invariants());
    }

    /// Deterministic seeded-interleaving check: replay the same randomized
    /// schedule of operations from T logical threads in a seed-derived
    /// order, twice, and require identical observable end states plus
    /// per-shard invariants after every step. This is a loom-style
    /// exploration driven by seeds rather than exhaustive model checking
    /// (loom is not available offline), so each seed is one fully
    /// deterministic interleaving.
    fn run_interleaving(seed: u64) -> (usize, u64, u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = ShardedCache::new(8 * 1024, 4, PolicyKind::Lru);

        // T logical threads each hold a scripted op sequence; the scheduler
        // picks which thread runs next from the same RNG stream.
        const THREADS: usize = 4;
        const OPS: usize = 64;
        let mut scripts: Vec<Vec<(u8, u32)>> = (0..THREADS)
            .map(|_| {
                (0..OPS)
                    .map(|_| {
                        let op = (rng.next_u64() % 5) as u8;
                        let id = (rng.next_u64() % 32) as u32;
                        (op, id)
                    })
                    .collect()
            })
            .collect();

        let mut step = 0u64;
        while scripts.iter().any(|s| !s.is_empty()) {
            let t = (rng.next_u64() as usize) % THREADS;
            let Some((op, id)) = scripts[t].pop() else {
                continue;
            };
            let r = ResourceId(id);
            let now = ts(step);
            step += 1;
            match op {
                0 => {
                    c.insert(r, entry(64 + u64::from(id), step + 100), now);
                }
                1 => {
                    c.lookup(r, now);
                }
                2 => {
                    c.remove(r);
                }
                3 => {
                    c.freshen(r, ts(step + 200));
                }
                _ => {
                    c.note_piggyback_mention(r, now);
                }
            }
            for i in 0..c.shard_count() {
                c.with_shard(i, |shard| shard.check_invariants());
            }
        }
        (c.len(), c.used_bytes(), c.evictions())
    }

    #[test]
    fn seeded_interleavings_are_deterministic_and_invariant_preserving() {
        for seed in 0..16u64 {
            let a = run_interleaving(seed);
            let b = run_interleaving(seed);
            assert_eq!(a, b, "seed {seed} must replay identically");
        }
    }

    /// The lock-free occupancy gauges track the real shard state exactly
    /// once the cache is quiescent.
    #[test]
    fn occupancy_gauges_match_locked_state_when_quiescent() {
        let c = ShardedCache::new(1 << 20, 4, PolicyKind::Lru);
        for i in 0..64u32 {
            c.insert(ResourceId(i), entry(100, 1000), ts(u64::from(i)));
        }
        for i in 0..16u32 {
            c.remove(ResourceId(i * 4));
        }
        let occ = c.occupancy();
        assert_eq!(occ.len(), 4);
        let total_bytes: u64 = occ.iter().map(|o| o.bytes).sum();
        let total_entries: u64 = occ.iter().map(|o| o.entries).sum();
        assert_eq!(total_bytes, c.used_bytes());
        assert_eq!(total_entries, c.len() as u64);
        for (i, o) in occ.iter().enumerate() {
            c.with_shard(i, |shard| {
                assert_eq!(o.bytes, shard.used_bytes(), "shard {i}");
                assert_eq!(o.entries, shard.len() as u64, "shard {i}");
                assert_eq!(o.evictions, shard.evictions(), "shard {i}");
            });
        }
    }

    /// Real threads hammering disjoint-and-overlapping id ranges: no
    /// deadlock, no panic, and byte accounting still balances after.
    #[test]
    fn concurrent_threads_preserve_invariants() {
        let c = Arc::new(ShardedCache::new(64 * 1024, 8, PolicyKind::Lru));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let r = ResourceId((t * 100 + i) % 256);
                    let now = ts(u64::from(i));
                    match i % 4 {
                        0 => {
                            c.insert(r, entry(128, u64::from(i) + 50), now);
                        }
                        1 => {
                            c.lookup(r, now);
                        }
                        2 => {
                            c.freshen(r, ts(u64::from(i) + 100));
                        }
                        _ => {
                            c.remove(r);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no shard op may panic");
        }
        for i in 0..c.shard_count() {
            c.with_shard(i, |shard| shard.check_invariants());
        }
        assert!(c.used_bytes() <= c.capacity());
    }

    proptest! {
        /// Every id routes in-range and identically on repeated calls, for
        /// arbitrary shard counts.
        #[test]
        fn shard_index_total_and_stable(id in any::<u32>(), shards in 1usize..64) {
            let a = shard_index(ResourceId(id), shards);
            let b = shard_index(ResourceId(id), shards);
            prop_assert!(a < shards);
            prop_assert_eq!(a, b);
        }

        /// Dense and strided id populations spread across shards: no shard
        /// takes more than 4x its fair share (Fibonacci hashing keeps
        /// low-entropy populations balanced).
        #[test]
        fn shard_distribution_is_balanced(
            start in 0u32..1_000_000,
            stride in 1u32..64,
            shards in 2usize..17,
        ) {
            let n = 512usize;
            let mut counts = vec![0usize; shards];
            for k in 0..n {
                let id = start.wrapping_add(stride * k as u32);
                counts[shard_index(ResourceId(id), shards)] += 1;
            }
            let fair = n / shards;
            for (i, &c) in counts.iter().enumerate() {
                prop_assert!(
                    c <= fair * 4,
                    "shard {} got {} of {} ({} shards, fair {})",
                    i, c, n, shards, fair
                );
            }
        }

        /// Sharded and single-shard caches agree on membership for any op
        /// sequence (eviction order differs by design — capacity is split —
        /// so this uses an over-provisioned cache where no eviction fires).
        #[test]
        fn membership_matches_unsharded_reference(
            ops in proptest::collection::vec((0u8..4, 0u32..64), 0..200)
        ) {
            let sharded = ShardedCache::new(1 << 30, 8, PolicyKind::Lru);
            let mut reference = Cache::new(1 << 30, PolicyKind::Lru.build());
            for (i, &(op, id)) in ops.iter().enumerate() {
                let r = ResourceId(id);
                let now = ts(i as u64);
                match op {
                    0 => {
                        sharded.insert(r, entry(64, i as u64 + 10), now);
                        reference.insert(r, entry(64, i as u64 + 10), now);
                    }
                    1 => {
                        prop_assert_eq!(
                            sharded.lookup(r, now),
                            reference.lookup(r, now)
                        );
                    }
                    2 => {
                        prop_assert_eq!(sharded.remove(r), reference.remove(r));
                    }
                    _ => {
                        prop_assert_eq!(
                            sharded.freshen(r, ts(i as u64 + 99)),
                            reference.freshen(r, ts(i as u64 + 99))
                        );
                    }
                }
            }
            prop_assert_eq!(sharded.len(), reference.len());
            prop_assert_eq!(sharded.used_bytes(), reference.used_bytes());
        }
    }
}
