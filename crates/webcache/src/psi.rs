//! Piggyback Server Invalidation (PSI) — the comparator mechanism of the
//! paper's reference [20] (Krishnamurthy & Wills, WWW7 1998).
//!
//! Where volumes piggyback *related resources* of the requested one, PSI
//! piggybacks the list of resources **modified since the proxy's last
//! contact**. The server keeps a global modification log (no per-proxy
//! state); the proxy remembers its own last-contact time per server and
//! sends it with each request. The paper's volume mechanism generalizes
//! PSI ("the server can improve cache coherency by sending a list of
//! resources that have been modified [19, 20]"), so this module exists as
//! the baseline volumes are measured against in `ext_psi`.

use crate::adaptive::FreshnessPolicy;
use crate::cache::{Cache, CacheEntry};
use crate::policy::PolicyKind;
use piggyback_core::types::{DurationMs, ResourceId, Timestamp};
use piggyback_trace::synth::changes::ChangeEvent;
use piggyback_trace::ServerLog;

/// The server's modification log: appended on every resource change,
/// queried by "everything after t".
#[derive(Debug, Default)]
pub struct ModificationLog {
    events: Vec<(Timestamp, ResourceId)>,
}

impl ModificationLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a modification (times must be non-decreasing).
    pub fn record(&mut self, time: Timestamp, resource: ResourceId) {
        debug_assert!(
            self.events.last().is_none_or(|&(t, _)| t <= time),
            "modification log must be appended in time order"
        );
        self.events.push((time, resource));
    }

    /// Resources modified strictly after `since`, up to `cap` (the most
    /// recent are preferred when truncating, as the paper's PSI does).
    pub fn modified_since(&self, since: Timestamp, cap: usize) -> Vec<(Timestamp, ResourceId)> {
        let start = self.events.partition_point(|&(t, _)| t <= since);
        let slice = &self.events[start..];
        if slice.len() <= cap {
            slice.to_vec()
        } else {
            slice[slice.len() - cap..].to_vec()
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// PSI simulation configuration.
#[derive(Debug, Clone)]
pub struct PsiConfig {
    pub capacity_bytes: u64,
    pub freshness: FreshnessPolicy,
    /// Maximum invalidations piggybacked per response.
    pub max_piggy: usize,
    /// PSI on/off (off = plain TTL proxy, for baselining).
    pub enabled: bool,
}

impl Default for PsiConfig {
    fn default() -> Self {
        PsiConfig {
            capacity_bytes: 64 * 1024 * 1024,
            freshness: FreshnessPolicy::Fixed(DurationMs::from_secs(3600)),
            max_piggy: 10,
            enabled: true,
        }
    }
}

/// Counters from a PSI run (aligned with
/// [`ProxySimReport`](crate::sim::ProxySimReport) where meaningful).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PsiReport {
    pub client_requests: u64,
    pub cache_hits: u64,
    pub fresh_hits: u64,
    pub stale_served: u64,
    pub validations: u64,
    pub not_modified: u64,
    pub full_fetches: u64,
    pub piggyback_messages: u64,
    pub piggybacked_elements: u64,
    pub psi_invalidations: u64,
}

impl PsiReport {
    pub fn stale_rate(&self) -> f64 {
        if self.fresh_hits == 0 {
            0.0
        } else {
            self.stale_served as f64 / self.fresh_hits as f64
        }
    }

    pub fn avg_piggyback_size(&self) -> f64 {
        if self.piggyback_messages == 0 {
            0.0
        } else {
            self.piggybacked_elements as f64 / self.piggyback_messages as f64
        }
    }
}

/// Run the PSI coherency simulation: one proxy, one origin, the origin
/// piggybacks its modification log since the proxy's last contact.
pub fn simulate_psi(log: &ServerLog, changes: &[ChangeEvent], cfg: &PsiConfig) -> PsiReport {
    let mut report = PsiReport::default();
    let mut cache = Cache::new(cfg.capacity_bytes, PolicyKind::Lru.build());
    let mut modlog = ModificationLog::new();
    // Current Last-Modified per resource (the origin's file system).
    let mut server_lm: std::collections::HashMap<ResourceId, Timestamp> = Default::default();
    let mut last_contact: Option<Timestamp> = None;

    let mut change_idx = 0usize;
    for entry in &log.entries {
        let now = entry.time;
        while change_idx < changes.len() && changes[change_idx].time <= now {
            let ev = changes[change_idx];
            modlog.record(ev.time, ev.resource);
            server_lm.insert(ev.resource, ev.time);
            change_idx += 1;
        }

        let r = entry.resource;
        report.client_requests += 1;
        let origin_lm = server_lm.get(&r).copied().unwrap_or(Timestamp::ZERO);
        let delta = match cfg.freshness {
            FreshnessPolicy::Fixed(d) => d,
            FreshnessPolicy::Adaptive { default, .. } => default,
        };

        if let Some(snap) = cache.lookup(r, now) {
            report.cache_hits += 1;
            if snap.is_fresh(now) {
                report.fresh_hits += 1;
                if origin_lm > snap.last_modified {
                    report.stale_served += 1;
                }
                continue;
            }
            // Validation contact.
            report.validations += 1;
            if origin_lm > snap.last_modified {
                report.full_fetches += 1;
            } else {
                report.not_modified += 1;
            }
        } else {
            report.full_fetches += 1;
        }

        // Server contact: install/freshen the entry and absorb the PSI
        // piggyback.
        let size = log.table.meta(r).map_or(0, |m| m.size);
        cache.insert(
            r,
            CacheEntry {
                size,
                last_modified: origin_lm,
                expires: now + delta,
                prefetched: false,
                used: true,
            },
            now,
        );
        if cfg.enabled {
            let since = last_contact.unwrap_or(Timestamp::ZERO);
            let mods = modlog.modified_since(since, cfg.max_piggy);
            if !mods.is_empty() {
                report.piggyback_messages += 1;
                report.piggybacked_elements += mods.len() as u64;
                for (_, modified) in mods {
                    if modified != r && cache.remove(modified) {
                        report.psi_invalidations += 1;
                    }
                }
            }
        }
        last_contact = Some(now);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use piggyback_core::types::SourceId;
    use piggyback_trace::record::{Method, ServerLogEntry};

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn tiny_log(reqs: &[(u64, &str)]) -> ServerLog {
        let mut log = ServerLog {
            name: "psi".into(),
            ..Default::default()
        };
        for p in ["/a.html", "/b.html"] {
            log.table.register_path(p, 1_000, Timestamp::ZERO);
        }
        for &(t, path) in reqs {
            let r = log.table.lookup(path).unwrap();
            log.entries.push(ServerLogEntry {
                time: ts(t),
                client: SourceId(1),
                resource: r,
                method: Method::Get,
                status: 200,
                bytes: 1_000,
            });
        }
        log
    }

    #[test]
    fn modification_log_windows() {
        let mut m = ModificationLog::new();
        for i in 1..=5u64 {
            m.record(ts(i * 10), ResourceId(i as u32));
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m.modified_since(ts(0), 10).len(), 5);
        assert_eq!(m.modified_since(ts(30), 10).len(), 2);
        assert_eq!(m.modified_since(ts(50), 10).len(), 0);
        // Truncation keeps the most recent.
        let capped = m.modified_since(ts(0), 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].1, ResourceId(4));
        assert_eq!(capped[1].1, ResourceId(5));
    }

    #[test]
    fn psi_invalidates_stale_copies() {
        // a and b cached; a modified; next contact (for b, expired via
        // tiny Δ? no: b's re-request within Δ is a fresh hit)... force a
        // contact by requesting b after expiry.
        let log = tiny_log(&[
            (0, "/a.html"),
            (1, "/b.html"),
            (4000, "/b.html"),
            (4010, "/a.html"),
        ]);
        let a = log.table.lookup("/a.html").unwrap();
        let changes = vec![ChangeEvent {
            time: ts(100),
            resource: a,
        }];
        let report = simulate_psi(&log, &changes, &PsiConfig::default());
        // b@4000 expired -> validation contact -> PSI piggybacks a's
        // modification -> a invalidated -> a@4010 is a full fetch, never
        // served stale.
        assert!(report.psi_invalidations >= 1, "{report:?}");
        assert_eq!(report.stale_served, 0);

        // Without PSI, a@4010's copy expired anyway (Δ=1h, 4010 > 3600)...
        // shrink the window: request a at 500 instead.
        let log = tiny_log(&[
            (0, "/a.html"),
            (1, "/b.html"),
            (200, "/b.html"),
            (500, "/a.html"),
        ]);
        let changes = vec![ChangeEvent {
            time: ts(100),
            resource: a,
        }];
        let off = simulate_psi(
            &log,
            &changes,
            &PsiConfig {
                enabled: false,
                ..Default::default()
            },
        );
        // a@500 is fresh by TTL but stale in fact.
        assert_eq!(off.stale_served, 1);
        let on = simulate_psi(&log, &changes, &PsiConfig::default());
        // With PSI... b@200 is also fresh (no contact!), so no piggyback
        // flows and a stays stale — PSI only helps when contacts happen.
        assert_eq!(on.stale_served, 1, "PSI needs a contact to carry news");
    }

    #[test]
    fn psi_cap_bounds_piggybacks() {
        let log = tiny_log(&[(0, "/a.html"), (5000, "/a.html")]);
        let b = log.table.lookup("/b.html").unwrap();
        // 100 modifications of b between the contacts.
        let changes: Vec<ChangeEvent> = (1..=100)
            .map(|i| ChangeEvent {
                time: ts(i * 10),
                resource: b,
            })
            .collect();
        let report = simulate_psi(
            &log,
            &changes,
            &PsiConfig {
                max_piggy: 10,
                ..Default::default()
            },
        );
        assert!(report.piggybacked_elements <= 10);
    }
}
