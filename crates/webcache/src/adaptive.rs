//! Adaptive freshness intervals (paper Section 4, "Adaptive freshness
//! interval").
//!
//! "Since the piggyback includes the Last-Modified time of each resource,
//! the proxy can estimate and record how often the resource changes" and
//! pick a per-resource freshness interval Δ, balancing validation cost
//! against staleness risk.

use piggyback_core::types::{DurationMs, ResourceId, Timestamp};
use std::collections::HashMap;

/// How the proxy assigns freshness intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FreshnessPolicy {
    /// A fixed Δ for everything.
    Fixed(DurationMs),
    /// Per-resource adaptive Δ: `clamp(factor * estimated_change_interval,
    /// min, max)`, falling back to `default` until two distinct
    /// Last-Modified values have been seen.
    Adaptive {
        factor: f64,
        min: DurationMs,
        max: DurationMs,
        default: DurationMs,
    },
}

impl FreshnessPolicy {
    /// A conservative adaptive default: Δ is 20% of the observed mean
    /// change interval, between one minute and one day.
    pub fn adaptive_default() -> Self {
        FreshnessPolicy::Adaptive {
            factor: 0.2,
            min: DurationMs::from_secs(60),
            max: DurationMs::from_secs(86_400),
            default: DurationMs::from_secs(3_600),
        }
    }
}

/// Tracks observed Last-Modified times and estimates change intervals with
/// an exponentially weighted moving average.
#[derive(Debug, Default)]
pub struct ChangeEstimator {
    state: HashMap<ResourceId, (Timestamp, Option<f64>)>,
}

impl ChangeEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a Last-Modified observation (from a response header or a
    /// piggyback element). Returns true if this revealed a *new version*.
    pub fn observe(&mut self, r: ResourceId, last_modified: Timestamp) -> bool {
        match self.state.get_mut(&r) {
            None => {
                self.state.insert(r, (last_modified, None));
                false
            }
            Some((seen_lm, est)) => {
                if last_modified > *seen_lm {
                    let gap = last_modified.since(*seen_lm).as_millis() as f64;
                    *est = Some(match *est {
                        None => gap,
                        Some(prev) => 0.7 * prev + 0.3 * gap,
                    });
                    *seen_lm = last_modified;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Estimated mean change interval, if at least one change was observed.
    pub fn estimated_interval(&self, r: ResourceId) -> Option<DurationMs> {
        self.state
            .get(&r)
            .and_then(|(_, est)| est.map(|ms| DurationMs::from_millis(ms as u64)))
    }

    /// The freshness interval `policy` assigns to `r` right now.
    pub fn freshness_for(&self, r: ResourceId, policy: FreshnessPolicy) -> DurationMs {
        match policy {
            FreshnessPolicy::Fixed(d) => d,
            FreshnessPolicy::Adaptive {
                factor,
                min,
                max,
                default,
            } => match self.estimated_interval(r) {
                Some(est) => {
                    let ms = (est.as_millis() as f64 * factor) as u64;
                    DurationMs(ms.clamp(min.as_millis(), max.as_millis()))
                }
                None => default,
            },
        }
    }

    /// Number of tracked resources.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn r(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn first_observation_is_not_a_change() {
        let mut e = ChangeEstimator::new();
        assert!(!e.observe(r(1), ts(100)));
        assert_eq!(e.estimated_interval(r(1)), None);
    }

    #[test]
    fn change_detection_and_estimation() {
        let mut e = ChangeEstimator::new();
        e.observe(r(1), ts(0));
        assert!(e.observe(r(1), ts(1000)));
        assert_eq!(
            e.estimated_interval(r(1)),
            Some(DurationMs::from_secs(1000))
        );
        // Same LM again: not a change.
        assert!(!e.observe(r(1), ts(1000)));
        // Older LM (out-of-order piggyback): ignored.
        assert!(!e.observe(r(1), ts(500)));
        // EWMA: next gap of 2000s mixes 0.7*1000 + 0.3*2000 = 1300.
        assert!(e.observe(r(1), ts(3000)));
        assert_eq!(
            e.estimated_interval(r(1)),
            Some(DurationMs::from_secs(1300))
        );
    }

    #[test]
    fn fixed_policy_ignores_estimates() {
        let mut e = ChangeEstimator::new();
        e.observe(r(1), ts(0));
        e.observe(r(1), ts(10));
        let d = e.freshness_for(r(1), FreshnessPolicy::Fixed(DurationMs::from_secs(77)));
        assert_eq!(d, DurationMs::from_secs(77));
    }

    #[test]
    fn adaptive_policy_scales_and_clamps() {
        let mut e = ChangeEstimator::new();
        let policy = FreshnessPolicy::Adaptive {
            factor: 0.5,
            min: DurationMs::from_secs(10),
            max: DurationMs::from_secs(100),
            default: DurationMs::from_secs(42),
        };
        // Unknown resource: default.
        assert_eq!(e.freshness_for(r(1), policy), DurationMs::from_secs(42));
        // Fast changer: clamped to min.
        e.observe(r(1), ts(0));
        e.observe(r(1), ts(4));
        assert_eq!(e.freshness_for(r(1), policy), DurationMs::from_secs(10));
        // Slow changer: clamped to max.
        e.observe(r(2), ts(0));
        e.observe(r(2), ts(100_000));
        assert_eq!(e.freshness_for(r(2), policy), DurationMs::from_secs(100));
        // Mid-range: factor applied.
        e.observe(r(3), ts(0));
        e.observe(r(3), ts(60));
        assert_eq!(e.freshness_for(r(3), policy), DurationMs::from_secs(30));
    }
}
