//! Regression harness for [`ProbabilityVolumesBuilder`]'s counter storage.
//!
//! The builder keeps its counters in per-resource nested maps with expired
//! per-source state pruned; this test pins its observable behaviour to a
//! deliberately naive reference implementation using the wide-key flat maps
//! the builder originally shipped with (one `(r, s)` tuple map, one
//! `(source, r, s)` map, nothing ever pruned). Any divergence in counter
//! values, sampling decisions, or built volumes is a bug in the rework, not
//! a tolerance to widen.

use piggyback_core::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};

const WINDOW: DurationMs = DurationMs::from_secs(300);

/// The original builder algorithm, transcribed: flat wide-key maps, no
/// pruning, per-observe snapshot of the history window.
struct NaiveBuilder {
    window: DurationMs,
    build_threshold: f64,
    sampling_factor: Option<f64>,
    rng: StdRng,
    occurrences: HashMap<ResourceId, u64>,
    pair_counts: HashMap<(ResourceId, ResourceId), u64>,
    rejected_pairs: u64,
    histories: HashMap<SourceId, VecDeque<(Timestamp, ResourceId)>>,
    last_credit: HashMap<(SourceId, ResourceId, ResourceId), Timestamp>,
}

impl NaiveBuilder {
    fn new(build_threshold: f64, sampling_factor: Option<f64>, seed: u64) -> Self {
        NaiveBuilder {
            window: WINDOW,
            build_threshold,
            sampling_factor,
            rng: StdRng::seed_from_u64(seed),
            occurrences: HashMap::new(),
            pair_counts: HashMap::new(),
            rejected_pairs: 0,
            histories: HashMap::new(),
            last_credit: HashMap::new(),
        }
    }

    fn observe(&mut self, source: SourceId, s: ResourceId, now: Timestamp) {
        let history = self.histories.entry(source).or_default();
        let cutoff = now.before(self.window);
        while let Some(&(t, _)) = history.front() {
            if t < cutoff {
                history.pop_front();
            } else {
                break;
            }
        }
        let snapshot: Vec<ResourceId> = history.iter().map(|&(_, r)| r).collect();
        let mut seen: Vec<ResourceId> = Vec::new();
        for r in snapshot {
            if seen.contains(&r) {
                continue;
            }
            seen.push(r);
            self.credit(source, r, s, now);
        }
        *self.occurrences.entry(s).or_insert(0) += 1;
        self.histories
            .get_mut(&source)
            .expect("exists")
            .push_back((now, s));
    }

    fn credit(&mut self, source: SourceId, r: ResourceId, s: ResourceId, now: Timestamp) {
        let credit_key = (source, r, s);
        if let Some(&t) = self.last_credit.get(&credit_key) {
            if now.since(t) < self.window {
                return;
            }
        }
        if !self.pair_counts.contains_key(&(r, s)) {
            if let Some(factor) = self.sampling_factor {
                let freq_r = *self.occurrences.get(&r).unwrap_or(&1) as f64;
                let p_create = (factor / (freq_r * self.build_threshold)).min(1.0);
                if self.rng.random::<f64>() >= p_create {
                    self.rejected_pairs += 1;
                    return;
                }
            }
        }
        *self.pair_counts.entry((r, s)).or_insert(0) += 1;
        self.last_credit.insert(credit_key, now);
    }

    fn probability(&self, r: ResourceId, s: ResourceId) -> Option<f64> {
        let c_pair = *self.pair_counts.get(&(r, s))?;
        let c_r = *self.occurrences.get(&r)?;
        (c_r > 0).then(|| c_pair as f64 / c_r as f64)
    }
}

/// A deterministic synthetic trace with overlapping sessions, repeats,
/// window-straddling gaps, and enough sources to make pruning fire.
fn synthetic_trace() -> Vec<(SourceId, ResourceId, Timestamp)> {
    // Simple LCG so the trace is reproducible without the builder's RNG.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move |modulus: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    let mut out = Vec::new();
    let mut now = 0u64;
    for _ in 0..4000 {
        now += next(40); // 0..40 s between requests; sessions straddle T
        let source = SourceId(next(25) as u32);
        let resource = ResourceId(next(60) as u32);
        out.push((source, resource, Timestamp::from_secs(now)));
    }
    out
}

fn assert_matches_reference(sampling: SamplingMode, seed: u64) {
    let factor = match sampling {
        SamplingMode::Exact => None,
        SamplingMode::Sampled { factor } => Some(factor),
    };
    let mut naive = NaiveBuilder::new(0.2, factor, seed);
    let mut real = ProbabilityVolumesBuilder::new(WINDOW, 0.2, sampling).with_seed(seed);
    for &(source, resource, t) in &synthetic_trace() {
        naive.observe(source, resource, t);
        real.observe(source, resource, t);
    }

    assert_eq!(real.counter_count(), naive.pair_counts.len());
    assert_eq!(real.rejected_pair_observations(), naive.rejected_pairs);
    for r in 0..60u32 {
        for s in 0..60u32 {
            assert_eq!(
                real.probability(ResourceId(r), ResourceId(s)),
                naive.probability(ResourceId(r), ResourceId(s)),
                "p({s}|{r}) diverged"
            );
        }
    }

    // Built volumes agree implication-for-implication at several thresholds.
    for p_t in [0.05, 0.2, 0.5] {
        let vols = real.build(p_t);
        let mut expected: Vec<(u32, u32)> = naive
            .pair_counts
            .iter()
            .filter(|(&(r, _), &c)| {
                let c_r = *naive.occurrences.get(&r).unwrap_or(&0);
                c_r > 0 && c as f64 / c_r as f64 >= p_t
            })
            .map(|(&(r, s), _)| (r.0, s.0))
            .collect();
        expected.sort_unstable();
        let mut got: Vec<(u32, u32)> = vols.iter().map(|(r, s, _)| (r.0, s.0)).collect();
        got.sort_unstable();
        assert_eq!(got, expected, "volumes diverged at p_t={p_t}");
    }
}

#[test]
fn exact_mode_matches_wide_key_reference() {
    assert_matches_reference(SamplingMode::Exact, 11);
}

#[test]
fn sampled_mode_matches_wide_key_reference() {
    // Sampling draws from the RNG in trace order; the nested-map rework and
    // the pruning sweep must not perturb the stream.
    for seed in [1u64, 42, 0xdead_beef] {
        assert_matches_reference(SamplingMode::Sampled { factor: 1.0 }, seed);
    }
}

#[test]
fn pruned_builder_keeps_memory_bounded() {
    // 2000 sources in disjoint windows: the naive reference retains credit
    // state for all of them, the real builder only for the active tail.
    let mut real = ProbabilityVolumesBuilder::new(WINDOW, 0.2, SamplingMode::Exact);
    for i in 0..2000u64 {
        let base = i * 700; // > T apart
        let src = SourceId(i as u32);
        real.observe(src, ResourceId(0), Timestamp::from_secs(base));
        real.observe(src, ResourceId(1), Timestamp::from_secs(base + 1));
        real.observe(src, ResourceId(2), Timestamp::from_secs(base + 2));
    }
    assert!(
        real.active_source_count() <= 2,
        "per-source state should be bounded by the window, got {} sources",
        real.active_source_count()
    );
    assert!(real.credit_entry_count() <= 3);
    assert!(real.history_entry_count() <= 3);
    // And the counters still saw every burst.
    assert_eq!(real.probability(ResourceId(0), ResourceId(1)), Some(1.0));
    assert_eq!(real.probability(ResourceId(0), ResourceId(2)), Some(1.0));
}
