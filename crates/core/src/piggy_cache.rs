//! Memoized `P-volume` encode cache.
//!
//! A proxy fleet fronting one origin tends to send a handful of distinct
//! `Piggy-filter` headers (often exactly one, the deployment's configured
//! filter). For probability volumes the piggyback for `(resource, filter)`
//! is a pure function of the volume snapshot — no recency, no per-request
//! state — so identical filters can reuse one serialized trailer instead
//! of re-running element selection and [`encode_p_volume`] per request.
//!
//! The cache key is `(volume id, filter signature, table generation)`:
//! the signature is an FxHash of the filter's canonical header form, and
//! the generation ties every entry to the snapshot it was computed from,
//! so a `/_pb/modify` or epoch swap invalidates the whole cache by
//! construction — stale entries are evicted lazily on the next probe.
//! Suppressed outcomes (`None`) are cached too: "this filter admits
//! nothing from this volume" is just as pure and just as hot.
//!
//! [`encode_p_volume`]: crate::wire::encode_p_volume

use crate::fasthash::{fx_hash_bytes, fx_hash_u64, FxHashMap};
use crate::filter::ProxyFilter;
use crate::types::VolumeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cached encode outcome: the serialized trailer value and its element
/// count (`None` = the filter suppressed the piggyback entirely).
pub type CachedEncoding = Option<(Arc<str>, u64)>;

#[derive(Debug, Clone)]
struct Entry {
    /// Snapshot generation this entry was computed against.
    generation: u64,
    /// Collision guards: FxHash is not injective, so verify the full key.
    volume: VolumeId,
    filter: Arc<str>,
    encoding: CachedEncoding,
}

/// Sharded memo table for serialized piggyback trailers.
#[derive(Debug)]
pub struct PiggybackCache {
    shards: Box<[Mutex<FxHashMap<u64, Entry>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Aggregate cache counters (relaxed reads).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl PiggybackCache {
    /// Shard count balancing contention against footprint; lookups are
    /// sub-microsecond so a modest count suffices.
    pub const DEFAULT_SHARDS: usize = 16;
    /// Per-shard entry cap; beyond it the shard drops stale-generation
    /// entries, then clears outright (distinct live filters per volume are
    /// expected to number in the tens at most).
    pub const SHARD_CAP: usize = 256;

    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        PiggybackCache {
            shards: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cache key signature for a filter: FxHash of its canonical
    /// header form, mixed with the volume id. Canonicalization means two
    /// differently-spelled but equivalent headers share an entry.
    fn key(volume: VolumeId, filter_canonical: &str) -> u64 {
        fx_hash_bytes(filter_canonical.as_bytes()) ^ fx_hash_u64(volume.0 as u64 | 1 << 32)
    }

    /// Look up the trailer for `(volume, filter)` at `generation`, or
    /// compute-and-insert it via `compute`.
    ///
    /// `compute` runs outside the shard lock; under a race the first
    /// insert wins and later duplicates simply overwrite with an equal
    /// value, so callers never observe mixed-generation results.
    pub fn get_or_insert_with(
        &self,
        volume: VolumeId,
        filter: &ProxyFilter,
        generation: u64,
        compute: impl FnOnce() -> CachedEncoding,
    ) -> CachedEncoding {
        let canonical = filter.to_header_value();
        let key = Self::key(volume, &canonical);
        let shard = &self.shards[key as usize % self.shards.len()];
        {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = guard.get(&key) {
                if entry.generation == generation
                    && entry.volume == volume
                    && *entry.filter == *canonical
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return entry.encoding.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let encoding = compute();
        let entry = Entry {
            generation,
            volume,
            filter: canonical.into(),
            encoding: encoding.clone(),
        };
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        if guard.len() >= Self::SHARD_CAP && !guard.contains_key(&key) {
            let before = guard.len();
            guard.retain(|_, e| e.generation == generation);
            if guard.len() >= Self::SHARD_CAP {
                guard.clear();
            }
            self.evictions
                .fetch_add((before - guard.len()) as u64, Ordering::Relaxed);
        }
        guard.insert(key, entry);
        encoding
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for PiggybackCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoding(s: &str, n: u64) -> CachedEncoding {
        Some((Arc::from(s), n))
    }

    #[test]
    fn hit_after_miss_and_generation_invalidation() {
        let cache = PiggybackCache::new();
        let f = ProxyFilter::default();
        let vol = VolumeId(3);

        let first = cache.get_or_insert_with(vol, &f, 1, || encoding("3; \"/a\" 1 2", 1));
        assert_eq!(first.as_ref().unwrap().1, 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );

        let second = cache.get_or_insert_with(vol, &f, 1, || panic!("must not recompute"));
        assert_eq!(second, first);
        assert_eq!(cache.stats().hits, 1);

        // A generation bump invalidates without explicit flushing.
        let third = cache.get_or_insert_with(vol, &f, 2, || encoding("3; \"/a\" 9 2", 1));
        assert_ne!(third, first);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn suppressed_outcomes_are_cached() {
        let cache = PiggybackCache::new();
        let f = ProxyFilter::default();
        assert!(cache
            .get_or_insert_with(VolumeId(1), &f, 0, || None)
            .is_none());
        assert!(cache
            .get_or_insert_with(VolumeId(1), &f, 0, || panic!("cached suppression"))
            .is_none());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn distinct_filters_and_volumes_do_not_collide() {
        let cache = PiggybackCache::new();
        let plain = ProxyFilter::default();
        let capped = ProxyFilter::builder().max_piggy(1).build();
        let a = cache.get_or_insert_with(VolumeId(1), &plain, 0, || encoding("a", 2));
        let b = cache.get_or_insert_with(VolumeId(1), &capped, 0, || encoding("b", 1));
        let c = cache.get_or_insert_with(VolumeId(2), &plain, 0, || encoding("c", 2));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            cache.get_or_insert_with(VolumeId(1), &plain, 0, || unreachable!()),
            a
        );
    }

    #[test]
    fn shard_cap_evicts_stale_generations() {
        let cache = PiggybackCache::with_shards(1);
        let f = ProxyFilter::default();
        for i in 0..PiggybackCache::SHARD_CAP as u32 {
            cache.get_or_insert_with(VolumeId(i), &f, 1, || encoding("x", 1));
        }
        // Next insert at a newer generation forces the stale sweep.
        cache.get_or_insert_with(VolumeId(100_000), &f, 2, || encoding("y", 1));
        assert!(cache.stats().evictions >= PiggybackCache::SHARD_CAP as u64);
        // The new entry survived.
        assert_eq!(
            cache.get_or_insert_with(VolumeId(100_000), &f, 2, || unreachable!()),
            encoding("y", 1)
        );
    }

    #[test]
    fn concurrent_probes_agree() {
        let cache = std::sync::Arc::new(PiggybackCache::new());
        let f = ProxyFilter::default();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let f = f.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u32 {
                        let got = cache.get_or_insert_with(VolumeId(i % 4), &f, 7, || {
                            encoding("t", u64::from(i % 4))
                        });
                        assert!(got.is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8_000);
        assert!(
            s.hits >= 8_000 - 4 * 8,
            "at most one miss per (thread, volume)"
        );
    }
}
