//! Read-mostly origin serving state: immutable snapshots behind an
//! atomically swapped `Arc`, with mutable per-resource access state held
//! in plain atomics outside the snapshot.
//!
//! The paper's server-side cost argument (Section 2.3: piggybacking adds
//! "no new TCP connections and no per-proxy server state") only holds if
//! computing a piggyback is cheap *per request*. A single global mutex
//! around the resource table and volume mapping serializes every response;
//! this module splits that state by write frequency instead:
//!
//! * [`OriginSnapshot`] — the resource table and volume mapping, rebuilt
//!   and swapped wholesale on the rare mutations (`/_pb/modify`,
//!   probability-volume epoch advance) and read lock-free-in-practice via
//!   [`SnapshotCell`]. A monotone `generation` counter identifies each
//!   snapshot, which is also the piggyback encode cache's invalidation key
//!   (see [`crate::piggy_cache`]).
//! * [`AccessState`] — per-resource access counts and recency, written on
//!   every request with relaxed atomic adds. Volume *membership* never
//!   changes per request, only per-resource counters do, so these live
//!   outside the snapshot and survive swaps.

use crate::element::{PiggybackElement, PiggybackMessage};
use crate::filter::ProxyFilter;
use crate::intern::directory_prefix;
use crate::table::ResourceTable;
use crate::types::{ResourceId, ResourceMeta, Timestamp, VolumeId};
use crate::volume::ProbabilityVolumes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A read-mostly cell holding an `Arc<T>` that readers load with a shared
/// (never exclusive) lock and writers replace wholesale.
///
/// The cell is replicated across cache-line-padded slots; each reader
/// thread pins itself to one slot, so concurrent loads from different
/// threads touch different cache lines and never contend on one lock word.
/// A store walks every replica — writers are rare by construction (table
/// modification, epoch advance), so the O(replicas) swap cost is paid off
/// the serving path.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    replicas: Box<[Replica<T>]>,
}

/// One padded slot. The alignment keeps neighbouring replicas on distinct
/// cache lines so reader lock traffic does not ping-pong between cores.
#[derive(Debug)]
#[repr(align(64))]
struct Replica<T>(RwLock<Arc<T>>);

/// Next reader slot to hand out; threads grab one lazily and keep it.
static NEXT_REPLICA_HINT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static REPLICA_HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn replica_hint() -> usize {
    REPLICA_HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT_REPLICA_HINT.fetch_add(1, Ordering::Relaxed);
            h.set(v);
        }
        v
    })
}

impl<T> SnapshotCell<T> {
    /// Default replica count: enough to spread a busy worker pool without
    /// making writer swaps noticeable.
    pub const DEFAULT_REPLICAS: usize = 8;

    pub fn new(value: Arc<T>) -> Self {
        Self::with_replicas(value, Self::DEFAULT_REPLICAS)
    }

    pub fn with_replicas(value: Arc<T>, replicas: usize) -> Self {
        let n = replicas.max(1);
        SnapshotCell {
            replicas: (0..n)
                .map(|_| Replica(RwLock::new(Arc::clone(&value))))
                .collect(),
        }
    }

    /// Clone the current snapshot handle (shared lock on this thread's
    /// replica only).
    pub fn load(&self) -> Arc<T> {
        let slot = replica_hint() % self.replicas.len();
        let guard = self.replicas[slot]
            .0
            .read()
            .unwrap_or_else(|e| e.into_inner());
        Arc::clone(&guard)
    }

    /// Replace the snapshot in every replica. Callers serialize stores
    /// themselves (e.g. under a swap mutex) so concurrent writers cannot
    /// interleave replica updates.
    pub fn store(&self, value: Arc<T>) {
        for r in &self.replicas {
            let mut guard = r.0.write().unwrap_or_else(|e| e.into_inner());
            *guard = Arc::clone(&value);
        }
    }
}

/// Mutable per-resource access state, updated on every request with
/// relaxed atomics and read when building piggybacks.
///
/// Sized once for a fixed resource id space (origin resource sets are
/// fixed at startup); ids beyond the initial table length are ignored.
#[derive(Debug)]
pub struct AccessState {
    counts: Box<[AtomicU64]>,
    /// `millis + 1` of the most recent access; 0 means never accessed.
    /// Monotone via `fetch_max`, mirroring move-to-front semantics where
    /// the latest touch wins.
    recency: Box<[AtomicU64]>,
}

impl AccessState {
    pub fn new(resources: usize) -> Self {
        AccessState {
            counts: (0..resources).map(|_| AtomicU64::new(0)).collect(),
            recency: (0..resources).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Record one access to `r` at `now`.
    pub fn record(&self, r: ResourceId, now: Timestamp) {
        self.record_many(r, 1, now);
    }

    /// Record `hits` accesses at once (report absorption), touching
    /// recency a single time.
    pub fn record_many(&self, r: ResourceId, hits: u64, now: Timestamp) {
        let Some(c) = self.counts.get(r.index()) else {
            return;
        };
        c.fetch_add(hits, Ordering::Relaxed);
        self.recency[r.index()].fetch_max(now.as_millis() + 1, Ordering::Relaxed);
    }

    /// Whole-history access count for `r`.
    pub fn count(&self, r: ResourceId) -> u64 {
        self.counts
            .get(r.index())
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Raw recency key (`millis + 1`; 0 = never accessed).
    pub fn recency_raw(&self, r: ResourceId) -> u64 {
        self.recency
            .get(r.index())
            .map_or(0, |t| t.load(Ordering::Relaxed))
    }

    /// Snapshot `r`'s metadata with the *live* access count overlaid, for
    /// filters that threshold on access frequency.
    pub fn live_meta(&self, table: &ResourceTable, r: ResourceId) -> Option<ResourceMeta> {
        let mut meta = *table.meta(r)?;
        meta.access_count = self.count(r);
        Some(meta)
    }
}

/// Directory-prefix volumes frozen for snapshot serving: membership only
/// (recency ordering comes from [`AccessState`] at piggyback time).
///
/// Volume ids are assigned in first-seen prefix order over table id order,
/// matching what [`crate::volume::DirectoryVolumes`] produces when
/// resources are registered in the same order — so RPV filters and wire
/// volume ids agree between the locked and snapshot serving paths.
#[derive(Debug)]
pub struct StaticDirectoryVolumes {
    level: usize,
    /// Indexed by `ResourceId`.
    membership: Vec<VolumeId>,
    /// Members per volume, in id order.
    members: Vec<Vec<ResourceId>>,
}

impl StaticDirectoryVolumes {
    pub fn build(table: &ResourceTable, level: usize) -> Self {
        let mut ids_by_prefix: HashMap<&str, VolumeId> = HashMap::new();
        let mut membership = Vec::with_capacity(table.len());
        let mut members: Vec<Vec<ResourceId>> = Vec::new();
        for (id, path, _) in table.iter() {
            let prefix = directory_prefix(path, level);
            let vol = *ids_by_prefix.entry(prefix).or_insert_with(|| {
                members.push(Vec::new());
                VolumeId(members.len() as u32 - 1)
            });
            debug_assert_eq!(membership.len(), id.index(), "table ids must be dense");
            membership.push(vol);
            members[vol.index()].push(id);
        }
        StaticDirectoryVolumes {
            level,
            membership,
            members,
        }
    }

    pub fn level(&self) -> usize {
        self.level
    }

    pub fn volume_of(&self, r: ResourceId) -> Option<VolumeId> {
        self.membership.get(r.index()).copied()
    }

    pub fn volume_count(&self) -> usize {
        self.members.len()
    }
}

/// A volume mapping frozen into a snapshot.
#[derive(Debug, Clone)]
pub enum FrozenVolumes {
    Directory(Arc<StaticDirectoryVolumes>),
    Probability(Arc<ProbabilityVolumes>),
}

impl FrozenVolumes {
    pub fn volume_of(&self, r: ResourceId) -> Option<VolumeId> {
        match self {
            FrozenVolumes::Directory(d) => d.volume_of(r),
            FrozenVolumes::Probability(_) => Some(VolumeId(r.0)),
        }
    }
}

/// The immutable serving state one request observes: a resource table, a
/// volume mapping, and the generation that identifies this build.
#[derive(Debug)]
pub struct OriginSnapshot {
    /// Monotone build counter; bumped on every rebuild-and-swap. Cache
    /// entries keyed on an older generation are stale by definition.
    pub generation: u64,
    /// Paths and metadata. `access_count` fields in here are the values at
    /// registration time — live counts come from [`AccessState`].
    pub table: Arc<ResourceTable>,
    pub volumes: FrozenVolumes,
}

impl OriginSnapshot {
    pub fn new(generation: u64, table: Arc<ResourceTable>, volumes: FrozenVolumes) -> Self {
        OriginSnapshot {
            generation,
            table,
            volumes,
        }
    }

    /// Derive the successor snapshot with a replacement table (e.g. after
    /// a Last-Modified bump), sharing the volume mapping.
    pub fn with_table(&self, table: ResourceTable) -> Self {
        OriginSnapshot {
            generation: self.generation + 1,
            table: Arc::new(table),
            volumes: self.volumes.clone(),
        }
    }

    /// Whether `(resource, filter)` piggybacks are reusable across
    /// requests within this generation, and under which wire volume id.
    ///
    /// Directory volumes are never cacheable (move-to-front content shifts
    /// with every access), and an access-count threshold reads live
    /// counters, so only probability volumes with no `minacc` qualify.
    pub fn cacheable_volume(&self, resource: ResourceId, filter: &ProxyFilter) -> Option<VolumeId> {
        match &self.volumes {
            FrozenVolumes::Probability(_) if filter.min_access_count.is_none() => {
                Some(VolumeId(resource.0))
            }
            _ => None,
        }
    }

    /// Build the piggyback for a response to `resource` under `filter`,
    /// using `access` for recency ordering and live access counts.
    ///
    /// Produces byte-identical messages to the locked
    /// [`PiggybackServer`](crate::server::PiggybackServer) path given the
    /// same access history (same membership, same recency keys, same
    /// tie-break by ascending resource id).
    pub fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        access: &AccessState,
    ) -> Option<PiggybackMessage> {
        match &self.volumes {
            FrozenVolumes::Directory(d) => self.piggyback_directory(d, resource, filter, access),
            FrozenVolumes::Probability(p) => {
                self.piggyback_probability(p, resource, filter, access)
            }
        }
    }

    fn piggyback_directory(
        &self,
        dirs: &StaticDirectoryVolumes,
        resource: ResourceId,
        filter: &ProxyFilter,
        access: &AccessState,
    ) -> Option<PiggybackMessage> {
        let vol = dirs.volume_of(resource)?;
        if !filter.allows_volume(vol) {
            return None;
        }
        let cap = filter.cap();
        if cap == 0 {
            return None;
        }
        // Accessed volume-mates passing the content filters, ranked most
        // recently accessed first (ties broken by ascending id), exactly
        // the move-to-front merge of DirectoryVolumes::piggyback.
        let mut candidates: Vec<(ResourceId, u64)> = Vec::new();
        for &r in &dirs.members[vol.index()] {
            if r == resource {
                continue;
            }
            let recency = access.recency_raw(r);
            if recency == 0 {
                continue; // never accessed: not in the logical FIFO
            }
            let Some(meta) = access.live_meta(&self.table, r) else {
                continue;
            };
            if !filter.admits(&meta) {
                continue;
            }
            candidates.push((r, recency));
        }
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        candidates.truncate(cap);
        let elements = candidates
            .into_iter()
            .filter_map(|(r, _)| {
                self.table.meta(r).map(|m| PiggybackElement {
                    resource: r,
                    size: m.size,
                    last_modified: m.last_modified,
                })
            })
            .collect();
        Some(PiggybackMessage {
            volume: vol,
            elements,
        })
    }

    fn piggyback_probability(
        &self,
        vols: &ProbabilityVolumes,
        resource: ResourceId,
        filter: &ProxyFilter,
        access: &AccessState,
    ) -> Option<PiggybackMessage> {
        let vol = VolumeId(resource.0);
        if !filter.allows_volume(vol) {
            return None;
        }
        let min_p = filter.prob_threshold.unwrap_or(0.0);
        let cap = filter.cap();
        let mut elements = Vec::new();
        for &(s, p) in vols.volume(resource) {
            if elements.len() >= cap {
                break;
            }
            if (p as f64) < min_p || s == resource {
                continue;
            }
            let Some(meta) = access.live_meta(&self.table, s) else {
                continue;
            };
            if !filter.admits(&meta) {
                continue;
            }
            elements.push(PiggybackElement {
                resource: s,
                size: meta.size,
                last_modified: meta.last_modified,
            });
        }
        if elements.is_empty() {
            return None;
        }
        Some(PiggybackMessage {
            volume: vol,
            elements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::ProxyFilter;
    use crate::server::PiggybackServer;
    use crate::types::SourceId;
    use crate::volume::DirectoryVolumes;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn snapshot_cell_load_store_across_threads() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = *cell.load();
                        assert!(v >= last, "snapshots must be monotone");
                        last = v;
                    }
                })
            })
            .collect();
        for g in 1..=100u64 {
            cell.store(Arc::new(g));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 100);
    }

    #[test]
    fn access_state_counts_and_recency() {
        let access = AccessState::new(2);
        let r = ResourceId(1);
        access.record(r, ts(10));
        access.record(r, ts(5)); // out-of-order touch must not regress
        assert_eq!(access.count(r), 2);
        assert_eq!(access.recency_raw(r), 11);
        assert_eq!(access.recency_raw(ResourceId(0)), 0);
        // Out-of-range ids are ignored.
        access.record(ResourceId(99), ts(1));
        assert_eq!(access.count(ResourceId(99)), 0);
    }

    /// The frozen directory path must reproduce DirectoryVolumes exactly:
    /// same volume ids, same element sets, same ordering.
    #[test]
    fn directory_snapshot_matches_locked_provider() {
        let mut server = PiggybackServer::new(DirectoryVolumes::new(1));
        let paths = [
            "/a/one.html",
            "/a/two.html",
            "/a/three.gif",
            "/b/four.html",
            "/b/five.html",
        ];
        let ids: Vec<ResourceId> = paths
            .iter()
            .map(|p| server.register_path(p, 700, Timestamp::ZERO))
            .collect();
        let table = Arc::new(server.table().clone());
        let dirs = Arc::new(StaticDirectoryVolumes::build(&table, 1));
        let snap = OriginSnapshot::new(0, Arc::clone(&table), FrozenVolumes::Directory(dirs));
        let access = AccessState::new(table.len());

        // Identical access histories on both sides (distinct millis so
        // recency ordering is unambiguous).
        for (i, &r) in ids.iter().enumerate() {
            let t = ts(10 + 3 * i as u64);
            server.record_access(r, SourceId(1), t);
            access.record(r, t);
        }

        for &r in &ids {
            for filter in [
                ProxyFilter::default(),
                ProxyFilter::builder().max_piggy(1).build(),
                ProxyFilter::builder().min_access_count(2).build(),
                ProxyFilter::disabled(),
            ] {
                let locked = server.piggyback(r, &filter, ts(100));
                let frozen = snap.piggyback(r, &filter, &access);
                assert_eq!(locked, frozen, "resource {r} filter {filter}");
            }
        }
    }

    #[test]
    fn probability_snapshot_honours_thresholds() {
        let mut table = ResourceTable::new();
        let a = table.register_path("/a.html", 100, ts(1));
        let b = table.register_path("/b.html", 200, ts(1));
        let c = table.register_path("/c.gif", 300, ts(1));
        let mut implications = HashMap::new();
        implications.insert(a, vec![(b, 0.9f32), (c, 0.3f32)]);
        let vols = Arc::new(ProbabilityVolumes::from_implications(0.2, implications));
        let table = Arc::new(table);
        let snap = OriginSnapshot::new(0, Arc::clone(&table), FrozenVolumes::Probability(vols));
        let access = AccessState::new(table.len());

        let all = snap.piggyback(a, &ProxyFilter::default(), &access).unwrap();
        assert_eq!(all.elements.len(), 2);
        assert_eq!(all.volume, VolumeId(a.0));

        let strict = ProxyFilter::builder().prob_threshold(0.5).build();
        let msg = snap.piggyback(a, &strict, &access).unwrap();
        assert_eq!(msg.elements.len(), 1);
        assert_eq!(msg.elements[0].resource, b);

        assert!(snap
            .piggyback(b, &ProxyFilter::default(), &access)
            .is_none());
    }

    #[test]
    fn cacheability_rules() {
        let table = Arc::new(ResourceTable::new());
        let prob = OriginSnapshot::new(
            0,
            Arc::clone(&table),
            FrozenVolumes::Probability(Arc::new(ProbabilityVolumes::default())),
        );
        let dir = OriginSnapshot::new(
            0,
            Arc::clone(&table),
            FrozenVolumes::Directory(Arc::new(StaticDirectoryVolumes::build(&table, 1))),
        );
        let plain = ProxyFilter::default();
        let minacc = ProxyFilter::builder().min_access_count(5).build();
        let r = ResourceId(3);
        assert_eq!(prob.cacheable_volume(r, &plain), Some(VolumeId(3)));
        assert_eq!(prob.cacheable_volume(r, &minacc), None, "live counts");
        assert_eq!(dir.cacheable_volume(r, &plain), None, "MTF recency");
    }

    #[test]
    fn with_table_bumps_generation_and_shares_volumes() {
        let mut table = ResourceTable::new();
        let a = table.register_path("/a", 1, ts(0));
        let snap = OriginSnapshot::new(
            7,
            Arc::new(table.clone()),
            FrozenVolumes::Probability(Arc::new(ProbabilityVolumes::default())),
        );
        table.touch_modified(a, ts(99));
        let next = snap.with_table(table);
        assert_eq!(next.generation, 8);
        assert_eq!(next.table.meta(a).unwrap().last_modified, ts(99));
    }
}
