//! Text encoding of the `P-volume` trailer header (paper Section 2.3).
//!
//! The piggyback rides in the trailer of a chunked HTTP/1.1 response. The
//! value carries the volume id and one clause per element:
//!
//! ```text
//! P-volume: 7; "/a/b.html" 887725423 5243, "/a/c.gif" 887725001 10230
//! ```
//!
//! i.e. `volume-id ';' element (',' element)*` where each element is
//! `quoted-path SP last-modified-epoch-seconds SP size-bytes`. Paths are
//! server-relative (the paper omits "the redundant server name portion").

use crate::element::{PiggybackElement, PiggybackMessage};
use crate::table::ResourceTable;
use crate::types::{Timestamp, VolumeId};
use std::fmt;

/// Name of the trailer header carrying the piggyback.
pub const P_VOLUME_HEADER: &str = "P-volume";

/// A decoded piggyback element, with its path still textual (the proxy
/// interns it into its own id space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireElement {
    pub path: String,
    pub last_modified: Timestamp,
    pub size: u64,
}

/// A decoded `P-volume` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePiggyback {
    pub volume: VolumeId,
    pub elements: Vec<WireElement>,
}

/// Errors decoding a `P-volume` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Missing the `volume-id ';'` prefix.
    MissingVolume,
    /// Volume id not a number.
    BadVolume(String),
    /// An element clause did not match `"path" lm size`.
    BadElement(String),
    /// A resource id in the message is unknown to the resource table
    /// (encoding side).
    UnknownResource,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::MissingVolume => write!(f, "P-volume value missing volume id"),
            WireError::BadVolume(s) => write!(f, "bad volume id: {s:?}"),
            WireError::BadElement(s) => write!(f, "bad piggyback element: {s:?}"),
            WireError::UnknownResource => write!(f, "piggyback references unknown resource"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode a piggyback message as a `P-volume` header value, resolving
/// resource ids to paths via `table`.
pub fn encode_p_volume(msg: &PiggybackMessage, table: &ResourceTable) -> Result<String, WireError> {
    let mut out = String::with_capacity(16 + msg.elements.len() * 64);
    encode_p_volume_into(msg, table, &mut out)?;
    Ok(out)
}

/// Encode into a caller-provided buffer (appended, not cleared), so hot
/// paths can reuse one allocation across requests. On error the buffer may
/// hold a partial encoding; callers should truncate back to their mark.
pub fn encode_p_volume_into(
    msg: &PiggybackMessage,
    table: &ResourceTable,
    out: &mut String,
) -> Result<(), WireError> {
    use std::fmt::Write;
    write!(out, "{};", msg.volume.0).expect("string write is infallible");
    for (i, e) in msg.elements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let path = table.path(e.resource).ok_or(WireError::UnknownResource)?;
        write!(out, " \"{path}\" {} {}", e.last_modified.as_secs(), e.size)
            .expect("string write is infallible");
    }
    Ok(())
}

/// Decode a `P-volume` header value.
pub fn decode_p_volume(value: &str) -> Result<WirePiggyback, WireError> {
    let (vol_str, rest) = value.split_once(';').ok_or(WireError::MissingVolume)?;
    let volume: u32 = vol_str
        .trim()
        .parse()
        .map_err(|_| WireError::BadVolume(vol_str.trim().to_owned()))?;
    let mut elements = Vec::new();
    let rest = rest.trim();
    if !rest.is_empty() {
        for clause in rest.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            elements.push(parse_element(clause)?);
        }
    }
    Ok(WirePiggyback {
        volume: VolumeId(volume),
        elements,
    })
}

fn parse_element(clause: &str) -> Result<WireElement, WireError> {
    let bad = || WireError::BadElement(clause.to_owned());
    let clause = clause.trim();
    if !clause.starts_with('"') {
        return Err(bad());
    }
    let close = clause[1..].find('"').ok_or_else(bad)? + 1;
    let path = clause[1..close].to_owned();
    let mut nums = clause[close + 1..].split_whitespace();
    let lm: u64 = nums.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let size: u64 = nums.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if nums.next().is_some() {
        return Err(bad());
    }
    Ok(WireElement {
        path,
        last_modified: Timestamp::from_secs(lm),
        size,
    })
}

/// Convert a decoded wire piggyback back into an in-memory message using
/// the *receiver's* resource table (interning unknown paths).
pub fn intern_wire_piggyback(wire: &WirePiggyback, table: &mut ResourceTable) -> PiggybackMessage {
    let elements = wire
        .elements
        .iter()
        .map(|e| {
            let id = table.register_path(&e.path, e.size, e.last_modified);
            PiggybackElement {
                resource: id,
                size: e.size,
                last_modified: e.last_modified,
            }
        })
        .collect();
    PiggybackMessage {
        volume: wire.volume,
        elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ResourceId;

    fn sample_table() -> (ResourceTable, ResourceId, ResourceId) {
        let mut t = ResourceTable::new();
        let a = t.register_path("/a/b.html", 5243, Timestamp::from_secs(887725423));
        let b = t.register_path("/a/c.gif", 10230, Timestamp::from_secs(887725001));
        (t, a, b)
    }

    #[test]
    fn encode_matches_documented_shape() {
        let (t, a, b) = sample_table();
        let msg = PiggybackMessage {
            volume: VolumeId(7),
            elements: vec![
                PiggybackElement {
                    resource: a,
                    size: 5243,
                    last_modified: Timestamp::from_secs(887725423),
                },
                PiggybackElement {
                    resource: b,
                    size: 10230,
                    last_modified: Timestamp::from_secs(887725001),
                },
            ],
        };
        let s = encode_p_volume(&msg, &t).unwrap();
        assert_eq!(
            s,
            "7; \"/a/b.html\" 887725423 5243, \"/a/c.gif\" 887725001 10230"
        );
    }

    #[test]
    fn round_trip_through_receiver_table() {
        let (t, a, _) = sample_table();
        let msg = PiggybackMessage {
            volume: VolumeId(3),
            elements: vec![PiggybackElement {
                resource: a,
                size: 5243,
                last_modified: Timestamp::from_secs(887725423),
            }],
        };
        let s = encode_p_volume(&msg, &t).unwrap();
        let wire = decode_p_volume(&s).unwrap();
        assert_eq!(wire.volume, VolumeId(3));
        assert_eq!(wire.elements[0].path, "/a/b.html");
        assert_eq!(wire.elements[0].size, 5243);

        // Receiver with its own id space.
        let mut proxy_table = ResourceTable::new();
        proxy_table.register_path("/something-else", 1, Timestamp::ZERO);
        let interned = intern_wire_piggyback(&wire, &mut proxy_table);
        assert_eq!(interned.volume, VolumeId(3));
        let rid = interned.elements[0].resource;
        assert_eq!(proxy_table.path(rid), Some("/a/b.html"));
        assert_eq!(proxy_table.meta(rid).unwrap().size, 5243);
    }

    #[test]
    fn empty_piggyback_round_trips() {
        let t = ResourceTable::new();
        let msg = PiggybackMessage::new(VolumeId(9));
        let s = encode_p_volume(&msg, &t).unwrap();
        assert_eq!(s, "9;");
        let wire = decode_p_volume(&s).unwrap();
        assert!(wire.elements.is_empty());
        assert_eq!(wire.volume, VolumeId(9));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(decode_p_volume("novolume"), Err(WireError::MissingVolume));
        assert!(matches!(
            decode_p_volume("abc; \"/x\" 1 2"),
            Err(WireError::BadVolume(_))
        ));
        assert!(matches!(
            decode_p_volume("1; /x 1 2"),
            Err(WireError::BadElement(_))
        ));
        assert!(matches!(
            decode_p_volume("1; \"/x\" 1"),
            Err(WireError::BadElement(_))
        ));
        assert!(matches!(
            decode_p_volume("1; \"/x\" 1 2 3"),
            Err(WireError::BadElement(_))
        ));
        assert!(matches!(
            decode_p_volume("1; \"/x\" one 2"),
            Err(WireError::BadElement(_))
        ));
    }

    #[test]
    fn encode_unknown_resource_fails() {
        let t = ResourceTable::new();
        let msg = PiggybackMessage {
            volume: VolumeId(1),
            elements: vec![PiggybackElement {
                resource: ResourceId(42),
                size: 1,
                last_modified: Timestamp::ZERO,
            }],
        };
        assert_eq!(encode_p_volume(&msg, &t), Err(WireError::UnknownResource));
    }
}
