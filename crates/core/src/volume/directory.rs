//! Directory-based volumes (paper Section 3.2).
//!
//! Resources sharing the first `level` directory components of their URL
//! path belong to the same volume. Level 0 yields a single site-wide volume
//! [20]; deeper levels trade prediction recall for smaller piggybacks
//! (Figure 2). Each volume's members are kept in partitioned move-to-front
//! FIFO lists so that piggyback messages carry the most recently accessed
//! elements and all maintenance is constant-time.

use crate::element::{PiggybackElement, PiggybackMessage};
use crate::filter::ProxyFilter;
use crate::intern::directory_prefix;
use crate::table::ResourceTable;
use crate::types::{ContentType, ResourceId, SourceId, Timestamp, VolumeId};
use crate::volume::fifo::{size_class_min, PartitionedFifo, SIZE_CLASSES};
use crate::volume::VolumeProvider;
use std::collections::HashMap;

/// How piggyback elements are ranked within a volume (paper Section 3.2.1:
/// move-to-front is "an approximate way to rank volume elements in order
/// of popularity" — the exact way is the access counters; DESIGN.md §5
/// lists this as an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElementOrdering {
    /// Most recently accessed first (move-to-front semantics, O(1)).
    #[default]
    RecencyMtf,
    /// Highest whole-history access count first.
    AccessCount,
}

/// Directory-prefix volumes with move-to-front maintenance.
#[derive(Debug, Clone)]
pub struct DirectoryVolumes {
    level: usize,
    ids_by_prefix: HashMap<Box<str>, VolumeId>,
    fifos: Vec<PartitionedFifo>,
    membership: HashMap<ResourceId, VolumeId>,
    max_volume_len: Option<usize>,
    ordering: ElementOrdering,
}

impl DirectoryVolumes {
    /// Volumes keyed on `level`-deep directory prefixes (0 = site-wide).
    pub fn new(level: usize) -> Self {
        DirectoryVolumes {
            level,
            ids_by_prefix: HashMap::new(),
            fifos: Vec::new(),
            membership: HashMap::new(),
            max_volume_len: None,
            ordering: ElementOrdering::default(),
        }
    }

    /// Use an explicit element ordering (default: recency).
    pub fn with_ordering(mut self, ordering: ElementOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Bound each volume to at most `max` members; the least recently
    /// accessed member is dropped first ("removing unpopular entries from
    /// the tail of the logical FIFO").
    pub fn with_max_volume_len(mut self, max: usize) -> Self {
        self.max_volume_len = Some(max);
        self
    }

    /// The configured prefix depth.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The volume id for a path's prefix, creating the volume if new.
    fn volume_for_path(&mut self, path: &str) -> VolumeId {
        let prefix = directory_prefix(path, self.level);
        if let Some(&id) = self.ids_by_prefix.get(prefix) {
            return id;
        }
        let id = VolumeId(self.fifos.len() as u32);
        self.ids_by_prefix.insert(prefix.into(), id);
        self.fifos.push(PartitionedFifo::new());
        id
    }

    /// Remove a resource from its volume entirely (e.g. the file was
    /// deleted at the server). The paper's FIFO maintenance covers
    /// popularity-driven trimming; this is the deletion path. O(1).
    /// Returns whether the resource was a member.
    pub fn remove_resource(&mut self, resource: ResourceId) -> bool {
        match self.membership.remove(&resource) {
            Some(vol) => self.fifos[vol.index()].remove(resource),
            None => false,
        }
    }

    /// Number of members currently in `volume`'s FIFO (accessed resources).
    pub fn volume_len(&self, volume: VolumeId) -> usize {
        self.fifos.get(volume.index()).map_or(0, |f| f.len())
    }

    /// Iterate the member ids of `volume`, most recently accessed first.
    pub fn members_recent_first(&self, volume: VolumeId) -> impl Iterator<Item = ResourceId> + '_ {
        self.fifos
            .get(volume.index())
            .into_iter()
            .flat_map(|f| f.iter_recent().map(|(r, _)| r))
    }
}

impl VolumeProvider for DirectoryVolumes {
    fn assign(&mut self, resource: ResourceId, path: &str) {
        let vol = self.volume_for_path(path);
        self.membership.insert(resource, vol);
    }

    fn volume_of(&self, resource: ResourceId) -> Option<VolumeId> {
        self.membership.get(&resource).copied()
    }

    fn record_access(
        &mut self,
        resource: ResourceId,
        _source: SourceId,
        now: Timestamp,
        table: &ResourceTable,
    ) {
        let Some(&vol) = self.membership.get(&resource) else {
            return;
        };
        let Some(meta) = table.meta(resource) else {
            return;
        };
        let fifo = &mut self.fifos[vol.index()];
        fifo.touch(resource, meta.content_type, meta.size, now);
        if let Some(max) = self.max_volume_len {
            fifo.trim_to(max);
        }
    }

    fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        _now: Timestamp,
        table: &ResourceTable,
    ) -> Option<PiggybackMessage> {
        let vol = self.volume_of(resource)?;
        if !filter.allows_volume(vol) {
            return None;
        }
        let fifo = self.fifos.get(vol.index())?;
        let cap = filter.cap();
        if cap == 0 {
            return None;
        }

        // Walk only the partitions the filter admits, collecting up to `cap`
        // candidates from each (each partition list is recency-ordered),
        // then merge by recency.
        let mut candidates: Vec<(ResourceId, Timestamp)> = Vec::new();
        for ct in ContentType::ALL {
            if let Some(types) = filter.content_types {
                if !types.contains(ct) {
                    continue;
                }
            }
            for class in 0..SIZE_CLASSES {
                if let Some(max_size) = filter.max_size {
                    if size_class_min(class) > max_size {
                        continue;
                    }
                }
                // Each partition list is recency-ordered, so under MTF
                // ordering we never need more than `cap` from any one
                // partition; count-ordering must scan the whole partition.
                let mut taken = 0usize;
                for (r, t) in fifo.iter_partition(ct, class) {
                    if taken >= cap && self.ordering == ElementOrdering::RecencyMtf {
                        break;
                    }
                    if r == resource {
                        continue;
                    }
                    let meta = match table.meta(r) {
                        Some(m) => m,
                        None => continue,
                    };
                    if !filter.admits(meta) {
                        continue;
                    }
                    candidates.push((r, t));
                    taken += 1;
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        match self.ordering {
            ElementOrdering::RecencyMtf => {
                candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
            }
            ElementOrdering::AccessCount => {
                candidates.sort_by(|a, b| {
                    let ca = table.meta(a.0).map_or(0, |m| m.access_count);
                    let cb = table.meta(b.0).map_or(0, |m| m.access_count);
                    cb.cmp(&ca).then(a.0 .0.cmp(&b.0 .0))
                });
            }
        }
        candidates.truncate(cap);

        let elements = candidates
            .into_iter()
            .filter_map(|(r, _)| {
                table.meta(r).map(|m| PiggybackElement {
                    resource: r,
                    size: m.size,
                    last_modified: m.last_modified,
                })
            })
            .collect();
        Some(PiggybackMessage {
            volume: vol,
            elements,
        })
    }

    fn volume_count(&self) -> usize {
        self.fifos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ContentTypeSet;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// A small site: two resources in /a, one in /f (the paper's example).
    fn setup() -> (
        ResourceTable,
        DirectoryVolumes,
        ResourceId,
        ResourceId,
        ResourceId,
    ) {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(1);
        let ab = table.register_path("/a/b.html", 500, ts(1));
        let ae = table.register_path("/a/d/e.html", 900, ts(1));
        let fg = table.register_path("/f/g.html", 700, ts(1));
        for (id, path) in [(ab, "/a/b.html"), (ae, "/a/d/e.html"), (fg, "/f/g.html")] {
            vols.assign(id, path);
        }
        (table, vols, ab, ae, fg)
    }

    #[test]
    fn paper_grouping_example() {
        let (_, vols, ab, ae, fg) = setup();
        assert_eq!(vols.volume_of(ab), vols.volume_of(ae));
        assert_ne!(vols.volume_of(ab), vols.volume_of(fg));
        assert_eq!(vols.volume_count(), 2);
        // Zero-level: everything in one volume.
        let mut v0 = DirectoryVolumes::new(0);
        v0.assign(ab, "/a/b.html");
        v0.assign(fg, "/f/g.html");
        assert_eq!(v0.volume_of(ab), v0.volume_of(fg));
        assert_eq!(v0.volume_count(), 1);
    }

    #[test]
    fn piggyback_includes_volume_peers_not_self() {
        let (mut table, mut vols, ab, ae, fg) = setup();
        for (r, t) in [(ab, 10), (ae, 11), (fg, 12)] {
            table.count_access(r);
            vols.record_access(r, SourceId(1), ts(t), &table);
        }
        let msg = vols
            .piggyback(ab, &ProxyFilter::default(), ts(20), &table)
            .expect("piggyback expected");
        assert_eq!(msg.volume, vols.volume_of(ab).unwrap());
        let ids: Vec<_> = msg.elements.iter().map(|e| e.resource).collect();
        assert_eq!(ids, vec![ae], "peer in same volume, never self or /f");
        // Element metadata comes from the live table.
        assert_eq!(msg.elements[0].size, 900);
    }

    #[test]
    fn rpv_suppresses_piggyback() {
        let (mut table, mut vols, ab, ae, _) = setup();
        vols.record_access(ae, SourceId(1), ts(1), &table);
        table.count_access(ae);
        let vol = vols.volume_of(ab).unwrap();
        let filter = ProxyFilter::builder().rpv([vol]).build();
        assert!(vols.piggyback(ab, &filter, ts(2), &table).is_none());
    }

    #[test]
    fn disabled_filter_suppresses_piggyback() {
        let (table, mut vols, ab, ae, _) = setup();
        vols.record_access(ae, SourceId(1), ts(1), &table);
        assert!(vols
            .piggyback(ab, &ProxyFilter::disabled(), ts(2), &table)
            .is_none());
    }

    #[test]
    fn maxpiggy_caps_and_prefers_recent() {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(0);
        let ids: Vec<ResourceId> = (0..10)
            .map(|i| {
                let path = format!("/p{i}.html");
                let id = table.register_path(&path, 100, ts(0));
                vols.assign(id, &path);
                id
            })
            .collect();
        for (i, &r) in ids.iter().enumerate() {
            vols.record_access(r, SourceId(1), ts(i as u64 + 1), &table);
        }
        let filter = ProxyFilter::builder().max_piggy(3).build();
        let msg = vols.piggyback(ids[0], &filter, ts(100), &table).unwrap();
        assert_eq!(msg.len(), 3);
        // The three most recently accessed peers (9, 8, 7).
        let got: Vec<u32> = msg.elements.iter().map(|e| e.resource.0).collect();
        assert_eq!(got, vec![ids[9].0, ids[8].0, ids[7].0]);
    }

    #[test]
    fn access_filter_excludes_unpopular() {
        let (mut table, mut vols, ab, ae, _) = setup();
        // ae accessed once, ab many times.
        vols.record_access(ae, SourceId(1), ts(1), &table);
        table.count_access(ae);
        for t in 2..8 {
            table.count_access(ab);
            vols.record_access(ab, SourceId(1), ts(t), &table);
        }
        let filter = ProxyFilter::builder().min_access_count(5).build();
        // Requesting ae: only ab passes the access filter.
        let msg = vols.piggyback(ae, &filter, ts(10), &table).unwrap();
        assert_eq!(msg.elements.len(), 1);
        assert_eq!(msg.elements[0].resource, ab);
        // Requesting ab: ae fails the filter; nothing to send.
        assert!(vols.piggyback(ab, &filter, ts(10), &table).is_none());
    }

    #[test]
    fn content_type_and_size_filters_prune() {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(0);
        let page = table.register_path("/p.html", 500, ts(0));
        let img = table.register_path("/big.gif", 2_000_000, ts(0));
        let txt = table.register_path("/notes.txt", 300, ts(0));
        for (id, p) in [(page, "/p.html"), (img, "/big.gif"), (txt, "/notes.txt")] {
            vols.assign(id, p);
            vols.record_access(id, SourceId(1), ts(1), &table);
        }
        // Wireless-proxy filter: no images, nothing over 1 KB.
        let filter = ProxyFilter::builder()
            .max_size(1024)
            .content_types(ContentTypeSet::new([ContentType::Html, ContentType::Text]))
            .build();
        let msg = vols.piggyback(page, &filter, ts(2), &table).unwrap();
        let ids: Vec<_> = msg.elements.iter().map(|e| e.resource).collect();
        assert_eq!(ids, vec![txt]);
    }

    #[test]
    fn volume_len_bound_evicts_lru() {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(0).with_max_volume_len(2);
        let ids: Vec<ResourceId> = (0..3)
            .map(|i| {
                let p = format!("/r{i}");
                let id = table.register_path(&p, 10, ts(0));
                vols.assign(id, &p);
                id
            })
            .collect();
        for (i, &r) in ids.iter().enumerate() {
            vols.record_access(r, SourceId(1), ts(i as u64), &table);
        }
        let vol = vols.volume_of(ids[0]).unwrap();
        assert_eq!(vols.volume_len(vol), 2);
        assert!(
            !vols.members_recent_first(vol).any(|r| r == ids[0]),
            "least recently accessed member trimmed"
        );
    }

    #[test]
    fn removed_resources_never_piggybacked() {
        let (mut table, mut vols, ab, ae, _) = setup();
        for (r, t) in [(ab, 1u64), (ae, 2)] {
            table.count_access(r);
            vols.record_access(r, SourceId(1), ts(t), &table);
        }
        // /a/d/e.html is deleted at the server.
        assert!(vols.remove_resource(ae));
        assert!(!vols.remove_resource(ae), "second removal is a no-op");
        assert!(
            vols.piggyback(ab, &ProxyFilter::default(), ts(3), &table)
                .is_none(),
            "deleted volume-mate must not appear"
        );
        assert_eq!(vols.volume_of(ae), None);
        // Re-registering restores membership.
        vols.assign(ae, "/a/d/e.html");
        vols.record_access(ae, SourceId(1), ts(4), &table);
        assert!(vols
            .piggyback(ab, &ProxyFilter::default(), ts(5), &table)
            .is_some());
    }

    #[test]
    fn access_count_ordering_ranks_by_popularity() {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(0).with_ordering(ElementOrdering::AccessCount);
        let ids: Vec<ResourceId> = (0..4)
            .map(|i| {
                let p = format!("/r{i}");
                let id = table.register_path(&p, 100, ts(0));
                vols.assign(id, &p);
                id
            })
            .collect();
        // Access counts: r1=5, r2=3, r3=1; recency order is r3 newest.
        for &(n, r) in &[(5u64, ids[1]), (3, ids[2]), (1, ids[3])] {
            for _ in 0..n {
                table.count_access(r);
            }
        }
        vols.record_access(ids[1], SourceId(1), ts(1), &table);
        vols.record_access(ids[2], SourceId(1), ts(2), &table);
        vols.record_access(ids[3], SourceId(1), ts(3), &table);

        let filter = ProxyFilter::builder().max_piggy(2).build();
        let msg = vols.piggyback(ids[0], &filter, ts(10), &table).unwrap();
        let got: Vec<u32> = msg.elements.iter().map(|e| e.resource.0).collect();
        // Popularity order (r1, r2), not recency order (r3, r2).
        assert_eq!(got, vec![ids[1].0, ids[2].0]);

        // The same state under MTF ordering prefers recency.
        let mtf = vols.clone().with_ordering(ElementOrdering::RecencyMtf);
        let msg = mtf.piggyback(ids[0], &filter, ts(10), &table).unwrap();
        let got: Vec<u32> = msg.elements.iter().map(|e| e.resource.0).collect();
        assert_eq!(got, vec![ids[3].0, ids[2].0]);
    }

    #[test]
    fn unaccessed_volume_produces_no_piggyback() {
        let (table, vols, ab, _, _) = setup();
        assert!(vols
            .piggyback(ab, &ProxyFilter::default(), ts(1), &table)
            .is_none());
    }
}
