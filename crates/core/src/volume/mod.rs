//! Server volume construction and maintenance (paper Section 3).
//!
//! A *volume provider* groups a server's resources into volumes and, given
//! a requested resource and a proxy filter, produces the piggyback message.
//! Two families are implemented, as in the paper:
//!
//! * [`DirectoryVolumes`] — static grouping by k-level directory prefix,
//!   maintained as partitioned move-to-front FIFO lists (Section 3.2);
//! * [`ProbabilityVolumes`] — measured pairwise implication probabilities
//!   `p(s|r)` with sampled counters (Section 3.3), plus *effectiveness
//!   thinning* and *combined* (same-prefix) restriction.

pub mod directory;
pub mod effective;
pub mod fifo;
pub mod online;
pub mod persist;
pub mod popularity;
pub mod probability;

pub use directory::{DirectoryVolumes, ElementOrdering};
pub use effective::{thin_with_trace, thin_with_trace_by, EffectivenessTrainer, ThinningCriterion};
pub use fifo::{size_class, size_class_min, PartitionedFifo, SIZE_CLASSES};
pub use online::OnlineProbabilityVolumes;
pub use persist::{read_volumes, write_volumes};
pub use popularity::{WithPopularityFallback, POPULARITY_VOLUME};
pub use probability::{PairKey, ProbabilityVolumes, ProbabilityVolumesBuilder, SamplingMode};

use crate::element::PiggybackMessage;
use crate::filter::ProxyFilter;
use crate::table::ResourceTable;
use crate::types::{ResourceId, SourceId, Timestamp, VolumeId};

/// A scheme that assigns resources to volumes and generates piggybacks.
///
/// Implementations receive the server's [`ResourceTable`] so that element
/// metadata (size, Last-Modified, access counts) is always current: volumes
/// track *membership and ordering*, never stale copies of metadata.
pub trait VolumeProvider {
    /// Tell the provider about a resource and its path. Called when the
    /// server registers the resource; safe to call repeatedly.
    fn assign(&mut self, resource: ResourceId, path: &str);

    /// The volume currently containing `resource`. For probability-based
    /// schemes this is the per-resource volume identifier.
    fn volume_of(&self, resource: ResourceId) -> Option<VolumeId>;

    /// Observe a request for `resource` from `source` at `now` (used by
    /// schemes that maintain recency or online statistics).
    fn record_access(
        &mut self,
        resource: ResourceId,
        source: SourceId,
        now: Timestamp,
        table: &ResourceTable,
    );

    /// Build the piggyback message for a response to a request for
    /// `resource`, honouring `filter`. Returns `None` when the filter
    /// disables piggybacking, suppresses this volume via its RPV list, or
    /// no elements survive filtering.
    fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        now: Timestamp,
        table: &ResourceTable,
    ) -> Option<PiggybackMessage>;

    /// Number of volumes currently defined.
    fn volume_count(&self) -> usize;
}

impl<V: VolumeProvider + ?Sized> VolumeProvider for Box<V> {
    fn assign(&mut self, resource: ResourceId, path: &str) {
        (**self).assign(resource, path);
    }

    fn volume_of(&self, resource: ResourceId) -> Option<VolumeId> {
        (**self).volume_of(resource)
    }

    fn record_access(
        &mut self,
        resource: ResourceId,
        source: SourceId,
        now: Timestamp,
        table: &ResourceTable,
    ) {
        (**self).record_access(resource, source, now, table);
    }

    fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        now: Timestamp,
        table: &ResourceTable,
    ) -> Option<PiggybackMessage> {
        (**self).piggyback(resource, filter, now, table)
    }

    fn volume_count(&self) -> usize {
        (**self).volume_count()
    }
}
