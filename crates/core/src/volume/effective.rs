//! Effectiveness thinning of probability-based volumes (paper
//! Section 3.3.1–3.3.2).
//!
//! A request for `s` is often preceded by several resources each of which
//! "predicts" `s`; only the first prediction in a window is *new* — the rest
//! are redundant and inflate piggyback size without improving accuracy.
//! This module replays a trace against candidate volumes, measures for each
//! implication `(r, s)` how often an access to `r` generated a **new**
//! prediction of `s` that **came true** (s accessed within `T`), and removes
//! implications whose *effective probability* — new true predictions per
//! access to `r` — falls below a threshold.
//!
//! The paper's headline result (Figure 7) is that thinning restores the
//! monotonic "smaller piggybacks are more precise" relationship and
//! dramatically shrinks piggyback size at equal recall.

use crate::types::{DurationMs, ResourceId, SourceId, Timestamp};
use crate::volume::probability::ProbabilityVolumes;
use std::collections::HashMap;

/// Which notion of "effective" an implication must satisfy to survive
/// thinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThinningCriterion {
    /// Accesses to `r` that created a **new** prediction of `s` which then
    /// **came true** (s requested within `T`). The strictest reading —
    /// maximizes precision (Figure 7) at some cost in recall.
    NewTrue,
    /// Accesses to `r` that created a **new** prediction of `s`, fulfilled
    /// or not — removes only *redundant* predictors, preserving recall
    /// (the paper's Figure 5(a) shows thinning barely moves the
    /// prediction rate).
    New,
}

/// Per-implication tallies collected during the replay.
#[derive(Debug, Default, Clone, Copy)]
struct PairTally {
    /// Accesses to `r` that created a new prediction of `s`.
    new_preds: u64,
    /// Of those, predictions that came true.
    new_true: u64,
}

/// Measures effective probabilities for a candidate volume set.
///
/// Feed the same (or a held-out) trace in time order via
/// [`observe`](Self::observe), then call [`thin`](Self::thin).
#[derive(Debug)]
pub struct EffectivenessTrainer<'v> {
    volumes: &'v ProbabilityVolumes,
    window: DurationMs,
    /// Per source: resource -> time it was last predicted (by any r).
    predicted: HashMap<SourceId, HashMap<ResourceId, Timestamp>>,
    /// Per source: pending *new* prediction of `s`, attributed to the `r`
    /// whose access created it.
    pending: HashMap<SourceId, HashMap<ResourceId, (Timestamp, ResourceId)>>,
    tallies: HashMap<(ResourceId, ResourceId), PairTally>,
    occurrences: HashMap<ResourceId, u64>,
}

impl<'v> EffectivenessTrainer<'v> {
    pub fn new(volumes: &'v ProbabilityVolumes, window: DurationMs) -> Self {
        EffectivenessTrainer {
            volumes,
            window,
            predicted: HashMap::new(),
            pending: HashMap::new(),
            tallies: HashMap::new(),
            occurrences: HashMap::new(),
        }
    }

    /// Observe a request for `r` by `source` at `now` (time-ordered).
    pub fn observe(&mut self, source: SourceId, r: ResourceId, now: Timestamp) {
        // 1. Fulfilment: if r itself was newly predicted recently, credit
        //    the implication that generated that prediction.
        if let Some(pending) = self.pending.get_mut(&source) {
            if let Some(&(t_pred, by)) = pending.get(&r) {
                if now.since(t_pred) <= self.window {
                    self.tallies.entry((by, r)).or_default().new_true += 1;
                }
                pending.remove(&r);
            }
        }

        *self.occurrences.entry(r).or_insert(0) += 1;

        // 2. Generation: r's volume predicts each member s. A prediction is
        //    *new* iff s has no active prediction in the window; redundant
        //    predictions refresh the active window but earn no attribution.
        let vol = self.volumes.volume(r);
        if vol.is_empty() {
            return;
        }
        let predicted = self.predicted.entry(source).or_default();
        let pending = self.pending.entry(source).or_default();
        for &(s, _p) in vol {
            let active = predicted
                .get(&s)
                .is_some_and(|&t| now.since(t) <= self.window);
            if !active {
                pending.insert(s, (now, r));
                self.tallies.entry((r, s)).or_default().new_preds += 1;
            }
            predicted.insert(s, now);
        }

        // Opportunistic cleanup to bound memory on long traces.
        if predicted.len() > 4096 {
            let w = self.window;
            predicted.retain(|_, &mut t| now.since(t) <= w);
            pending.retain(|_, &mut (t, _)| now.since(t) <= w);
        }
    }

    /// Effective probability of the implication `(r, s)`: new true
    /// predictions of `s` per access to `r` (the [`ThinningCriterion::NewTrue`]
    /// measure).
    pub fn effective_probability(&self, r: ResourceId, s: ResourceId) -> f64 {
        self.probability_by(r, s, ThinningCriterion::NewTrue)
    }

    /// New-prediction probability of `(r, s)`: new (fulfilled or not)
    /// predictions of `s` per access to `r`.
    pub fn new_prediction_probability(&self, r: ResourceId, s: ResourceId) -> f64 {
        self.probability_by(r, s, ThinningCriterion::New)
    }

    fn probability_by(&self, r: ResourceId, s: ResourceId, c: ThinningCriterion) -> f64 {
        let c_r = *self.occurrences.get(&r).unwrap_or(&0);
        if c_r == 0 {
            return 0.0;
        }
        let t = self.tallies.get(&(r, s)).copied().unwrap_or_default();
        let n = match c {
            ThinningCriterion::NewTrue => t.new_true,
            ThinningCriterion::New => t.new_preds,
        };
        n as f64 / c_r as f64
    }

    /// Produce thinned volumes keeping only implications whose
    /// [`ThinningCriterion::NewTrue`] effective probability is
    /// `>= eff_threshold`.
    pub fn thin(&self, eff_threshold: f64) -> ProbabilityVolumes {
        self.thin_by(eff_threshold, ThinningCriterion::NewTrue)
    }

    /// Thin under an explicit criterion.
    pub fn thin_by(&self, eff_threshold: f64, criterion: ThinningCriterion) -> ProbabilityVolumes {
        let mut implications: HashMap<ResourceId, Vec<(ResourceId, f32)>> = HashMap::new();
        for (r, s, p) in self.volumes.iter() {
            if self.probability_by(r, s, criterion) >= eff_threshold {
                implications.entry(r).or_default().push((s, p));
            }
        }
        for list in implications.values_mut() {
            list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
        }
        ProbabilityVolumes::from_implications(self.volumes.threshold(), implications)
    }
}

/// Convenience: build volumes, replay `trace` once, and thin at
/// `eff_threshold` (new-true criterion) in one call.
pub fn thin_with_trace<I>(
    volumes: &ProbabilityVolumes,
    window: DurationMs,
    trace: I,
    eff_threshold: f64,
) -> ProbabilityVolumes
where
    I: IntoIterator<Item = (Timestamp, SourceId, ResourceId)>,
{
    thin_with_trace_by(
        volumes,
        window,
        trace,
        eff_threshold,
        ThinningCriterion::NewTrue,
    )
}

/// [`thin_with_trace`] under an explicit criterion.
pub fn thin_with_trace_by<I>(
    volumes: &ProbabilityVolumes,
    window: DurationMs,
    trace: I,
    eff_threshold: f64,
    criterion: ThinningCriterion,
) -> ProbabilityVolumes
where
    I: IntoIterator<Item = (Timestamp, SourceId, ResourceId)>,
{
    let mut trainer = EffectivenessTrainer::new(volumes, window);
    for (t, src, r) in trace {
        trainer.observe(src, r, t);
    }
    trainer.thin_by(eff_threshold, criterion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    const T: DurationMs = DurationMs::from_secs(300);

    fn r(i: u32) -> ResourceId {
        ResourceId(i)
    }

    /// Volumes where both 0 and 1 predict 2 ("page sequence a, b, img").
    fn chain_volumes() -> ProbabilityVolumes {
        let mut impls = Map::new();
        impls.insert(r(0), vec![(r(2), 0.9f32)]);
        impls.insert(r(1), vec![(r(2), 0.9f32)]);
        ProbabilityVolumes::from_implications(0.2, impls)
    }

    #[test]
    fn redundant_predictor_gets_no_credit() {
        let vols = chain_volumes();
        let mut tr = EffectivenessTrainer::new(&vols, T);
        // Sessions: 0 then 1 then 2. Resource 0's prediction of 2 is new;
        // resource 1's is redundant.
        for i in 0..10u64 {
            let base = i * 10_000;
            tr.observe(SourceId(1), r(0), ts(base));
            tr.observe(SourceId(1), r(1), ts(base + 1));
            tr.observe(SourceId(1), r(2), ts(base + 2));
        }
        assert!((tr.effective_probability(r(0), r(2)) - 1.0).abs() < 1e-9);
        assert_eq!(tr.effective_probability(r(1), r(2)), 0.0);

        let thinned = tr.thin(0.2);
        assert_eq!(thinned.volume(r(0)).len(), 1, "effective implication kept");
        assert!(
            thinned.volume(r(1)).is_empty(),
            "redundant implication removed"
        );
    }

    #[test]
    fn prediction_must_come_true_for_credit() {
        let mut impls = Map::new();
        impls.insert(r(0), vec![(r(2), 0.9f32)]);
        let vols = ProbabilityVolumes::from_implications(0.2, impls);
        let mut tr = EffectivenessTrainer::new(&vols, T);
        // r0 predicts r2, but r2 never arrives.
        for i in 0..10u64 {
            tr.observe(SourceId(1), r(0), ts(i * 10_000));
        }
        assert_eq!(tr.effective_probability(r(0), r(2)), 0.0);
        assert!(tr.thin(0.1).volume(r(0)).is_empty());
    }

    #[test]
    fn late_fulfilment_outside_window_not_credited() {
        let mut impls = Map::new();
        impls.insert(r(0), vec![(r(2), 0.9f32)]);
        let vols = ProbabilityVolumes::from_implications(0.2, impls);
        let mut tr = EffectivenessTrainer::new(&vols, T);
        tr.observe(SourceId(1), r(0), ts(0));
        tr.observe(SourceId(1), r(2), ts(301)); // too late
        assert_eq!(tr.effective_probability(r(0), r(2)), 0.0);
    }

    #[test]
    fn prediction_becomes_new_again_after_window() {
        let vols = chain_volumes();
        let mut tr = EffectivenessTrainer::new(&vols, T);
        // First session: 0 predicts 2 (new, true).
        tr.observe(SourceId(1), r(0), ts(0));
        tr.observe(SourceId(1), r(2), ts(5));
        // Second session long after: 1's prediction is new now (0's window
        // expired), so 1 earns the credit this time.
        tr.observe(SourceId(1), r(1), ts(10_000));
        tr.observe(SourceId(1), r(2), ts(10_005));
        assert!(tr.effective_probability(r(0), r(2)) > 0.0);
        assert!(tr.effective_probability(r(1), r(2)) > 0.0);
    }

    #[test]
    fn sources_are_independent() {
        let vols = chain_volumes();
        let mut tr = EffectivenessTrainer::new(&vols, T);
        tr.observe(SourceId(1), r(0), ts(0));
        // Different source accesses 2: no fulfilment for source 1's pending.
        tr.observe(SourceId(2), r(2), ts(5));
        assert_eq!(tr.effective_probability(r(0), r(2)), 0.0);
    }

    #[test]
    fn new_criterion_keeps_unfulfilled_first_predictors() {
        // r0 newly predicts r2 but r2 never arrives: kept under `New`,
        // dropped under `NewTrue`.
        let mut impls = Map::new();
        impls.insert(r(0), vec![(r(2), 0.9f32)]);
        let vols = ProbabilityVolumes::from_implications(0.2, impls);
        let mut tr = EffectivenessTrainer::new(&vols, T);
        for i in 0..5u64 {
            tr.observe(SourceId(1), r(0), ts(i * 10_000));
        }
        assert!((tr.new_prediction_probability(r(0), r(2)) - 1.0).abs() < 1e-9);
        assert_eq!(tr.effective_probability(r(0), r(2)), 0.0);
        assert_eq!(
            tr.thin_by(0.5, ThinningCriterion::New).implication_count(),
            1
        );
        assert_eq!(
            tr.thin_by(0.5, ThinningCriterion::NewTrue)
                .implication_count(),
            0
        );
    }

    #[test]
    fn new_criterion_still_drops_redundant_predictors() {
        let vols = chain_volumes();
        let mut tr = EffectivenessTrainer::new(&vols, T);
        for i in 0..10u64 {
            let base = i * 10_000;
            tr.observe(SourceId(1), r(0), ts(base));
            tr.observe(SourceId(1), r(1), ts(base + 1)); // redundant predictor
            tr.observe(SourceId(1), r(2), ts(base + 2));
        }
        let thinned = tr.thin_by(0.2, ThinningCriterion::New);
        assert_eq!(thinned.volume(r(0)).len(), 1);
        assert!(thinned.volume(r(1)).is_empty());
    }

    #[test]
    fn thin_with_trace_helper() {
        let vols = chain_volumes();
        let trace: Vec<(Timestamp, SourceId, ResourceId)> = (0..5u64)
            .flat_map(|i| {
                let base = i * 10_000;
                vec![
                    (ts(base), SourceId(1), r(0)),
                    (ts(base + 1), SourceId(1), r(1)),
                    (ts(base + 2), SourceId(1), r(2)),
                ]
            })
            .collect();
        let thinned = thin_with_trace(&vols, T, trace, 0.5);
        assert_eq!(thinned.implication_count(), 1);
        assert_eq!(thinned.volume(r(0))[0].0, r(2));
    }
}
