//! Online probability-based volumes (paper Section 3.3.1: "The server can
//! estimate the probabilities ... in a periodic fashion, such as once a
//! day or once a week, or in an online fashion if access patterns and
//! resource characteristics change frequently").
//!
//! [`OnlineProbabilityVolumes`] keeps the streaming counter builder live
//! inside the serving path: every recorded access feeds the counters, and
//! the serving snapshot is rebuilt after every `rebuild_every` requests
//! (amortizing the `build()` cost). Until the first rebuild it serves
//! nothing — a cold server has no statistics to piggyback.

use crate::element::PiggybackMessage;
use crate::filter::ProxyFilter;
use crate::table::ResourceTable;
use crate::types::{DurationMs, ResourceId, SourceId, Timestamp, VolumeId};
use crate::volume::probability::{ProbabilityVolumes, ProbabilityVolumesBuilder, SamplingMode};
use crate::volume::VolumeProvider;

/// A self-maintaining probability-volume provider.
#[derive(Debug)]
pub struct OnlineProbabilityVolumes {
    builder: ProbabilityVolumesBuilder,
    snapshot: ProbabilityVolumes,
    threshold: f64,
    rebuild_every: u64,
    since_rebuild: u64,
    rebuilds: u64,
}

impl OnlineProbabilityVolumes {
    /// `window` is the pairing window `T`; `threshold` the membership
    /// `p_t`; the snapshot is rebuilt every `rebuild_every` accesses.
    pub fn new(
        window: DurationMs,
        threshold: f64,
        sampling: SamplingMode,
        rebuild_every: u64,
    ) -> Self {
        OnlineProbabilityVolumes {
            builder: ProbabilityVolumesBuilder::new(window, threshold, sampling),
            snapshot: ProbabilityVolumes::default(),
            threshold,
            rebuild_every: rebuild_every.max(1),
            since_rebuild: 0,
            rebuilds: 0,
        }
    }

    /// Times the serving snapshot has been rebuilt.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// The current serving snapshot.
    pub fn snapshot(&self) -> &ProbabilityVolumes {
        &self.snapshot
    }

    /// Force an immediate rebuild (e.g. at a maintenance window).
    pub fn rebuild_now(&mut self) {
        self.snapshot = self.builder.build(self.threshold);
        self.since_rebuild = 0;
        self.rebuilds += 1;
    }

    /// Access to the live counters (e.g. for stats).
    pub fn builder(&self) -> &ProbabilityVolumesBuilder {
        &self.builder
    }
}

impl VolumeProvider for OnlineProbabilityVolumes {
    fn assign(&mut self, _resource: ResourceId, _path: &str) {
        // Membership is learned from traffic.
    }

    fn volume_of(&self, resource: ResourceId) -> Option<VolumeId> {
        Some(VolumeId(resource.0))
    }

    fn record_access(
        &mut self,
        resource: ResourceId,
        source: SourceId,
        now: Timestamp,
        _table: &ResourceTable,
    ) {
        self.builder.observe(source, resource, now);
        self.since_rebuild += 1;
        if self.since_rebuild >= self.rebuild_every {
            self.rebuild_now();
        }
    }

    fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        now: Timestamp,
        table: &ResourceTable,
    ) -> Option<PiggybackMessage> {
        self.snapshot.piggyback(resource, filter, now, table)
    }

    fn volume_count(&self) -> usize {
        self.snapshot.volume_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    const T: DurationMs = DurationMs::from_secs(300);

    fn feed_sessions(vols: &mut OnlineProbabilityVolumes, table: &ResourceTable, n: u64) {
        for i in 0..n {
            let base = i * 10_000;
            vols.record_access(ResourceId(0), SourceId(1), ts(base), table);
            vols.record_access(ResourceId(1), SourceId(1), ts(base + 2), table);
        }
    }

    #[test]
    fn cold_server_piggybacks_nothing() {
        let mut table = ResourceTable::new();
        table.register_path("/a", 10, ts(0));
        table.register_path("/b", 10, ts(0));
        let vols = OnlineProbabilityVolumes::new(T, 0.2, SamplingMode::Exact, 10);
        assert!(vols
            .piggyback(ResourceId(0), &ProxyFilter::default(), ts(0), &table)
            .is_none());
        assert_eq!(vols.rebuild_count(), 0);
    }

    #[test]
    fn learns_after_rebuild_interval() {
        let mut table = ResourceTable::new();
        table.register_path("/a", 10, ts(0));
        table.register_path("/b", 10, ts(0));
        let mut vols = OnlineProbabilityVolumes::new(T, 0.2, SamplingMode::Exact, 10);
        feed_sessions(&mut vols, &table, 6); // 12 accesses => one rebuild
        assert!(vols.rebuild_count() >= 1);
        let msg = vols
            .piggyback(ResourceId(0), &ProxyFilter::default(), ts(100_000), &table)
            .expect("a implies b after learning");
        assert_eq!(msg.elements[0].resource, ResourceId(1));
        // The implication is absent in the other direction.
        assert!(vols
            .piggyback(ResourceId(1), &ProxyFilter::default(), ts(100_000), &table)
            .is_none());
    }

    #[test]
    fn snapshot_is_stable_between_rebuilds() {
        let mut table = ResourceTable::new();
        table.register_path("/a", 10, ts(0));
        table.register_path("/b", 10, ts(0));
        table.register_path("/c", 10, ts(0));
        let mut vols = OnlineProbabilityVolumes::new(T, 0.2, SamplingMode::Exact, 100);
        feed_sessions(&mut vols, &table, 50); // exactly one rebuild at 100
        assert_eq!(vols.rebuild_count(), 1);
        let before = vols.snapshot().implication_count();
        // More traffic, but below the next rebuild threshold: snapshot
        // unchanged even though counters moved.
        vols.record_access(ResourceId(2), SourceId(2), ts(900_000), &table);
        assert_eq!(vols.snapshot().implication_count(), before);
        assert_eq!(vols.rebuild_count(), 1);
        // Forced rebuild picks up the new resource's occurrence counts.
        vols.rebuild_now();
        assert_eq!(vols.rebuild_count(), 2);
    }

    #[test]
    fn volume_ids_are_resource_ids() {
        let vols = OnlineProbabilityVolumes::new(T, 0.2, SamplingMode::Exact, 10);
        assert_eq!(vols.volume_of(ResourceId(7)), Some(VolumeId(7)));
    }
}
