//! Persistence for probability-based volumes.
//!
//! The paper's evaluation builds volumes offline and applies "a single set
//! of volumes for the duration of each log"; a production server would
//! build from yesterday's logs in a cron job and load the result at
//! startup. The format is a line-oriented text file keyed on *paths* (not
//! interned ids), so it is portable across processes with different
//! interning orders:
//!
//! ```text
//! piggyback-volumes v1 threshold=0.25
//! "/a/index.html" "/a/logo.gif" 0.9231
//! "/a/index.html" "/a/news.html" 0.4400
//! ```

use crate::table::ResourceTable;
use crate::types::ResourceId;
use crate::volume::probability::ProbabilityVolumes;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

const MAGIC: &str = "piggyback-volumes v1";

/// Serialize `vols` to `w`, resolving ids through `table`.
///
/// Implications whose endpoints are missing from `table` are skipped (they
/// cannot be expressed portably).
pub fn write_volumes<W: Write>(
    vols: &ProbabilityVolumes,
    table: &ResourceTable,
    w: &mut W,
) -> io::Result<()> {
    writeln!(w, "{MAGIC} threshold={}", vols.threshold())?;
    let mut implications: Vec<(ResourceId, ResourceId, f32)> = vols.iter().collect();
    implications.sort_by_key(|&(r, s, _)| (r.0, s.0));
    for (r, s, p) in implications {
        let (Some(pr), Some(ps)) = (table.path(r), table.path(s)) else {
            continue;
        };
        writeln!(w, "\"{pr}\" \"{ps}\" {p:.6}")?;
    }
    Ok(())
}

/// Error deserializing a volumes file.
#[derive(Debug)]
pub enum PersistError {
    Io(io::Error),
    /// Missing or wrong magic header.
    BadHeader(String),
    /// A malformed implication line, with its 1-based line number.
    BadLine(usize, String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadHeader(h) => write!(f, "bad volumes header: {h:?}"),
            PersistError::BadLine(n, l) => write!(f, "bad implication at line {n}: {l:?}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Deserialize volumes from `r`, interning paths into `table` (so the
/// loading server's table gains any resources it did not already know).
pub fn read_volumes<R: BufRead>(
    r: &mut R,
    table: &mut ResourceTable,
) -> Result<ProbabilityVolumes, PersistError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| PersistError::BadHeader("".into()))??;
    let rest = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| PersistError::BadHeader(header.clone()))?;
    let threshold: f64 = rest
        .trim()
        .strip_prefix("threshold=")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| PersistError::BadHeader(header.clone()))?;

    let mut implications: HashMap<ResourceId, Vec<(ResourceId, f32)>> = HashMap::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = || PersistError::BadLine(lineno, line.clone());
        let (pr, rest) = parse_quoted(trimmed).ok_or_else(bad)?;
        let (ps, rest) = parse_quoted(rest.trim_start()).ok_or_else(bad)?;
        let p: f32 = rest.trim().parse().map_err(|_| bad())?;
        if !(0.0..=1.0).contains(&p) {
            return Err(bad());
        }
        let r_id = table.register_path(pr, 0, crate::types::Timestamp::ZERO);
        let s_id = table.register_path(ps, 0, crate::types::Timestamp::ZERO);
        implications.entry(r_id).or_default().push((s_id, p));
    }
    for list in implications.values_mut() {
        list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
    }
    Ok(ProbabilityVolumes::from_implications(
        threshold,
        implications,
    ))
}

/// Parse a leading `"..."` token; returns (inner, remainder).
fn parse_quoted(s: &str) -> Option<(&str, &str)> {
    let s = s.strip_prefix('"')?;
    let close = s.find('"')?;
    Some((&s[..close], &s[close + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{SourceId, Timestamp};
    use crate::volume::probability::{ProbabilityVolumesBuilder, SamplingMode};
    use crate::volume::VolumeProvider;
    use std::io::BufReader;

    fn sample() -> (ResourceTable, ProbabilityVolumes) {
        let mut table = ResourceTable::new();
        let a = table.register_path("/a/index.html", 100, Timestamp::ZERO);
        let b = table.register_path("/a/logo.gif", 50, Timestamp::ZERO);
        let c = table.register_path("/b/other.html", 70, Timestamp::ZERO);
        let mut builder = ProbabilityVolumesBuilder::new(
            crate::types::DurationMs::from_secs(300),
            0.1,
            SamplingMode::Exact,
        );
        for i in 0..10u64 {
            let base = i * 10_000;
            builder.observe(SourceId(1), a, Timestamp::from_secs(base));
            builder.observe(SourceId(1), b, Timestamp::from_secs(base + 1));
            if i < 4 {
                builder.observe(SourceId(1), c, Timestamp::from_secs(base + 2));
            }
        }
        (table, builder.build(0.1))
    }

    #[test]
    fn round_trip_preserves_implications() {
        let (table, vols) = sample();
        let mut buf = Vec::new();
        write_volumes(&vols, &table, &mut buf).unwrap();

        // Load into a *fresh* process: empty table, different id order.
        let mut new_table = ResourceTable::new();
        new_table.register_path("/zzz/first.html", 1, Timestamp::ZERO);
        let loaded = read_volumes(&mut BufReader::new(buf.as_slice()), &mut new_table).unwrap();

        assert_eq!(loaded.threshold(), vols.threshold());
        assert_eq!(loaded.implication_count(), vols.implication_count());
        // Compare by path.
        let by_path = |v: &ProbabilityVolumes, t: &ResourceTable| {
            let mut out: Vec<(String, String, String)> = v
                .iter()
                .map(|(r, s, p)| {
                    (
                        t.path(r).unwrap().to_owned(),
                        t.path(s).unwrap().to_owned(),
                        format!("{p:.6}"),
                    )
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(by_path(&loaded, &new_table), by_path(&vols, &table));
    }

    #[test]
    fn loaded_volumes_serve_piggybacks() {
        let (table, vols) = sample();
        let mut buf = Vec::new();
        write_volumes(&vols, &table, &mut buf).unwrap();
        let mut new_table = ResourceTable::new();
        let loaded = read_volumes(&mut BufReader::new(buf.as_slice()), &mut new_table).unwrap();
        let a = new_table.lookup("/a/index.html").unwrap();
        let msg = loaded
            .piggyback(
                a,
                &crate::filter::ProxyFilter::default(),
                Timestamp::ZERO,
                &new_table,
            )
            .expect("piggyback from loaded volumes");
        assert!(!msg.is_empty());
    }

    #[test]
    fn rejects_bad_headers_and_lines() {
        let mut t = ResourceTable::new();
        assert!(matches!(
            read_volumes(&mut BufReader::new(&b"nonsense\n"[..]), &mut t),
            Err(PersistError::BadHeader(_))
        ));
        let bad = b"piggyback-volumes v1 threshold=0.2\nnot-a-line\n";
        assert!(matches!(
            read_volumes(&mut BufReader::new(&bad[..]), &mut t),
            Err(PersistError::BadLine(2, _))
        ));
        let bad_p = b"piggyback-volumes v1 threshold=0.2\n\"/a\" \"/b\" 1.5\n";
        assert!(matches!(
            read_volumes(&mut BufReader::new(&bad_p[..]), &mut t),
            Err(PersistError::BadLine(2, _))
        ));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let mut t = ResourceTable::new();
        let text = "piggyback-volumes v1 threshold=0.3\n\n# comment\n\"/x\" \"/y\" 0.5\n";
        let vols = read_volumes(&mut BufReader::new(text.as_bytes()), &mut t).unwrap();
        assert_eq!(vols.implication_count(), 1);
        assert_eq!(vols.threshold(), 0.3);
    }

    #[test]
    fn empty_volume_set_round_trips() {
        let table = ResourceTable::new();
        let vols = ProbabilityVolumes::default();
        let mut buf = Vec::new();
        write_volumes(&vols, &table, &mut buf).unwrap();
        let mut t = ResourceTable::new();
        let loaded = read_volumes(&mut BufReader::new(buf.as_slice()), &mut t).unwrap();
        assert_eq!(loaded.implication_count(), 0);
    }
}
