//! Probability-based volumes (paper Section 3.3).
//!
//! The server estimates, from its request stream, the pairwise implication
//! probability `p(s|r)`: the proportion of requests for `r` that are
//! followed by a request for `s` from the same source within `T` seconds.
//! Resource `s` joins `r`'s volume when `p(s|r) >= p_t`.
//!
//! Counter space is bounded by *random sampling*: when a pair is first
//! observed, its counter is created only with probability inversely
//! proportional to `freq(r) * p_t` — pairs that often occur together are
//! likely to get a counter, pairs with low implication probability rarely
//! waste one. Optionally, counters are restricted to pairs sharing a
//! directory prefix ("combined" volumes).
//!
//! Volume construction is offline, as in the paper's evaluation ("we applied
//! a single set of volumes for the duration of each log"): feed a trace to
//! [`ProbabilityVolumesBuilder`], then [`build`](ProbabilityVolumesBuilder::build)
//! the immutable [`ProbabilityVolumes`] used at serving time.

use crate::element::{PiggybackElement, PiggybackMessage};
use crate::fasthash::FxHashMap;
use crate::filter::ProxyFilter;
use crate::intern::directory_prefix;
use crate::table::ResourceTable;
use crate::types::{DurationMs, ResourceId, SourceId, Timestamp, VolumeId};
use crate::volume::VolumeProvider;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// An ordered resource pair: `r` (the earlier request) implies `s`.
pub type PairKey = (ResourceId, ResourceId);

/// How pair counters are allocated during construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingMode {
    /// A counter for every observed pair (memory `O(pairs)`).
    Exact,
    /// Create a missing counter with probability
    /// `min(1, factor / (freq(r) * p_t))`, the paper's sampling heuristic.
    /// Larger `factor` means more counters and better estimates.
    Sampled { factor: f64 },
}

/// Streaming builder computing the pairwise counters `c(s|r)` and `c(r)`.
///
/// Feed requests in non-decreasing time order via
/// [`observe`](Self::observe). Each source's recent history is kept in a
/// deque bounded by the window `T`; each arrival of `s` credits `c(s|r)`
/// for every distinct `r` in the window, at most once per `T` per source —
/// this guarantees `c(s|r) <= c(r)`, i.e. estimated probabilities never
/// exceed 1.
#[derive(Debug)]
pub struct ProbabilityVolumesBuilder {
    window: DurationMs,
    sampling: SamplingMode,
    build_threshold: f64,
    restrict_prefix_level: Option<usize>,
    rng: StdRng,

    occurrences: FxHashMap<ResourceId, u64>,
    /// `r -> (s -> c(s|r))`: nested so the hot double lookup hashes one
    /// dense id at a time instead of a wide tuple key.
    pair_counts: FxHashMap<ResourceId, FxHashMap<ResourceId, u64>>,
    /// Pairs sampling decided to permanently ignore.
    rejected_pairs: u64,
    histories: FxHashMap<SourceId, VecDeque<(Timestamp, ResourceId)>>,
    /// `source -> ((r, s) -> last credit time)`, swept once per window so
    /// memory stays bounded by the sources active within the last `T`.
    last_credit: FxHashMap<SourceId, FxHashMap<PairKey, Timestamp>>,
    last_time: Timestamp,
    last_prune: Timestamp,
    /// Scratch for the distinct-`r` scan, reused across observe calls.
    seen_scratch: Vec<ResourceId>,
}

impl ProbabilityVolumesBuilder {
    /// `window` is the paper's `T` (300 s in the evaluation);
    /// `build_threshold` is the `p_t` the sampling heuristic targets.
    pub fn new(window: DurationMs, build_threshold: f64, sampling: SamplingMode) -> Self {
        assert!(
            build_threshold > 0.0 && build_threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        ProbabilityVolumesBuilder {
            window,
            sampling,
            build_threshold,
            restrict_prefix_level: None,
            rng: StdRng::seed_from_u64(0x9e3779b97f4a7c15),
            occurrences: FxHashMap::default(),
            pair_counts: FxHashMap::default(),
            rejected_pairs: 0,
            histories: FxHashMap::default(),
            last_credit: FxHashMap::default(),
            last_time: Timestamp::ZERO,
            last_prune: Timestamp::ZERO,
            seen_scratch: Vec::new(),
        }
    }

    /// Only count pairs whose paths share a `level`-deep directory prefix
    /// (reduces counters and avoids coincidental cross-directory pairs, at
    /// the cost of missing cross-directory associations). Requires passing
    /// a [`ResourceTable`] to [`observe_with_table`](Self::observe_with_table).
    pub fn restrict_same_prefix(mut self, level: usize) -> Self {
        self.restrict_prefix_level = Some(level);
        self
    }

    /// Deterministic seed for the sampling decisions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Observe a request. Panics (debug) if timestamps go backwards.
    pub fn observe(&mut self, source: SourceId, resource: ResourceId, now: Timestamp) {
        self.observe_inner(source, resource, now, None);
    }

    /// Observe with path information available, as needed by
    /// [`restrict_same_prefix`](Self::restrict_same_prefix).
    pub fn observe_with_table(
        &mut self,
        source: SourceId,
        resource: ResourceId,
        now: Timestamp,
        table: &ResourceTable,
    ) {
        self.observe_inner(source, resource, now, Some(table));
    }

    fn observe_inner(
        &mut self,
        source: SourceId,
        s: ResourceId,
        now: Timestamp,
        table: Option<&ResourceTable>,
    ) {
        debug_assert!(now >= self.last_time, "requests must be time-ordered");
        self.last_time = now;
        self.maybe_prune(now);

        // Take the history out of the map so crediting can borrow `self`
        // mutably without cloning a snapshot of the window.
        let mut history = self.histories.remove(&source).unwrap_or_default();
        let cutoff = now.before(self.window);
        while let Some(&(t, _)) = history.front() {
            if t < cutoff {
                history.pop_front();
            } else {
                break;
            }
        }

        // Credit each distinct r in the window once (nearest instance).
        let mut seen = std::mem::take(&mut self.seen_scratch);
        seen.clear();
        for &(_, r) in history.iter() {
            if seen.contains(&r) {
                continue;
            }
            seen.push(r);
            self.credit_pair(source, r, s, now, table);
        }
        self.seen_scratch = seen;

        *self.occurrences.entry(s).or_insert(0) += 1;
        history.push_back((now, s));
        self.histories.insert(source, history);
    }

    /// Amortized (once-per-window) sweep of per-source state older than `T`.
    ///
    /// Semantics-preserving: a `last_credit` entry whose age reached `T`
    /// behaves exactly like an absent entry (crediting proceeds either way),
    /// and a history entry older than `T` can never pair again. After the
    /// sweep, transient memory is bounded by the sources active within the
    /// last window rather than by every source ever seen.
    fn maybe_prune(&mut self, now: Timestamp) {
        if now.since(self.last_prune) < self.window {
            return;
        }
        self.last_prune = now;
        let cutoff = now.before(self.window);
        let window = self.window;
        self.histories.retain(|_, h| {
            while let Some(&(t, _)) = h.front() {
                if t < cutoff {
                    h.pop_front();
                } else {
                    break;
                }
            }
            !h.is_empty()
        });
        self.last_credit.retain(|_, m| {
            m.retain(|_, t| now.since(*t) < window);
            !m.is_empty()
        });
    }

    fn credit_pair(
        &mut self,
        source: SourceId,
        r: ResourceId,
        s: ResourceId,
        now: Timestamp,
        table: Option<&ResourceTable>,
    ) {
        if let Some(level) = self.restrict_prefix_level {
            let table = table.expect("restrict_same_prefix requires observe_with_table");
            let (Some(pr), Some(ps)) = (table.path(r), table.path(s)) else {
                return;
            };
            if directory_prefix(pr, level) != directory_prefix(ps, level) {
                return;
            }
        }

        // At most one credit per (source, pair) per window, so that
        // c(s|r) <= c(r) holds.
        let pair = (r, s);
        if let Some(&t) = self.last_credit.get(&source).and_then(|m| m.get(&pair)) {
            if now.since(t) < self.window {
                return;
            }
        }

        let exists = self.pair_counts.get(&r).is_some_and(|m| m.contains_key(&s));
        if !exists {
            match self.sampling {
                SamplingMode::Exact => {}
                SamplingMode::Sampled { factor } => {
                    let freq_r = *self.occurrences.get(&r).unwrap_or(&1) as f64;
                    let p_create = (factor / (freq_r * self.build_threshold)).min(1.0);
                    if self.rng.random::<f64>() >= p_create {
                        self.rejected_pairs += 1;
                        return;
                    }
                }
            }
        }
        *self.pair_counts.entry(r).or_default().entry(s).or_insert(0) += 1;
        self.last_credit
            .entry(source)
            .or_default()
            .insert(pair, now);
    }

    /// Number of live pair counters.
    pub fn counter_count(&self) -> usize {
        self.pair_counts.values().map(|m| m.len()).sum()
    }

    /// Sources with buffered history inside the current window (as of the
    /// last sweep) — the quantity that bounds transient memory.
    pub fn active_source_count(&self) -> usize {
        self.histories.len().max(self.last_credit.len())
    }

    /// Live `last_credit` entries across all sources.
    pub fn credit_entry_count(&self) -> usize {
        self.last_credit.values().map(|m| m.len()).sum()
    }

    /// Buffered history entries across all sources.
    pub fn history_entry_count(&self) -> usize {
        self.histories.values().map(|h| h.len()).sum()
    }

    /// Pair observations the sampler chose not to track.
    pub fn rejected_pair_observations(&self) -> u64 {
        self.rejected_pairs
    }

    /// Estimated `p(s|r)` right now, if a counter exists.
    pub fn probability(&self, r: ResourceId, s: ResourceId) -> Option<f64> {
        let c_pair = *self.pair_counts.get(&r)?.get(&s)?;
        let c_r = *self.occurrences.get(&r)?;
        if c_r == 0 {
            return None;
        }
        Some(c_pair as f64 / c_r as f64)
    }

    /// Freeze into serving-time volumes with membership threshold `p_t`
    /// (usually `>= build_threshold` when sampling was used).
    pub fn build(&self, p_t: f64) -> ProbabilityVolumes {
        let mut implications: HashMap<ResourceId, Vec<(ResourceId, f32)>> = HashMap::new();
        for (&r, inner) in &self.pair_counts {
            let c_r = *self.occurrences.get(&r).unwrap_or(&0);
            if c_r == 0 {
                continue;
            }
            for (&s, &c_pair) in inner {
                let p = c_pair as f64 / c_r as f64;
                if p >= p_t {
                    implications.entry(r).or_default().push((s, p as f32));
                }
            }
        }
        for list in implications.values_mut() {
            list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
        }
        ProbabilityVolumes {
            threshold: p_t,
            implications,
        }
    }

    /// All estimated probabilities, for Figure 5(b)'s distribution.
    pub fn all_probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (&r, inner) in &self.pair_counts {
            let Some(&c_r) = self.occurrences.get(&r) else {
                continue;
            };
            if c_r == 0 {
                continue;
            }
            out.extend(inner.values().map(|&c| c as f64 / c_r as f64));
        }
        out
    }
}

/// Immutable probability-based volumes: for each resource `r`, the resources
/// `s` with `p(s|r) >= p_t`, sorted by descending probability.
///
/// Every resource is its own volume; the wire volume id is the resource id.
#[derive(Debug, Clone, Default)]
pub struct ProbabilityVolumes {
    threshold: f64,
    implications: HashMap<ResourceId, Vec<(ResourceId, f32)>>,
}

impl ProbabilityVolumes {
    /// Construct directly from implication lists (used by thinning).
    pub fn from_implications(
        threshold: f64,
        implications: HashMap<ResourceId, Vec<(ResourceId, f32)>>,
    ) -> Self {
        ProbabilityVolumes {
            threshold,
            implications,
        }
    }

    /// The membership threshold `p_t` used at construction.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The implication list for `r` (descending probability).
    pub fn volume(&self, r: ResourceId) -> &[(ResourceId, f32)] {
        self.implications.get(&r).map_or(&[], |v| v.as_slice())
    }

    /// Iterate all `(r, s, p)` implications.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, ResourceId, f32)> + '_ {
        self.implications
            .iter()
            .flat_map(|(&r, list)| list.iter().map(move |&(s, p)| (r, s, p)))
    }

    /// Total number of implications.
    pub fn implication_count(&self) -> usize {
        self.implications.values().map(|v| v.len()).sum()
    }

    /// Mean volume size over resources with a non-empty volume.
    pub fn avg_volume_size(&self) -> f64 {
        if self.implications.is_empty() {
            return 0.0;
        }
        self.implication_count() as f64 / self.implications.len() as f64
    }

    /// Fraction of resources (with volumes) that belong to their own volume
    /// — the paper reports ~1% at `p_t = 0.2`.
    pub fn self_membership_fraction(&self) -> f64 {
        if self.implications.is_empty() {
            return 0.0;
        }
        let selfs = self
            .implications
            .iter()
            .filter(|(&r, list)| list.iter().any(|&(s, _)| s == r))
            .count();
        selfs as f64 / self.implications.len() as f64
    }

    /// Fraction of implications `(r, s)` whose reverse `(s, r)` also holds —
    /// the paper reports 3–18% symmetric volume contents.
    pub fn symmetric_fraction(&self) -> f64 {
        let total = self.implication_count();
        if total == 0 {
            return 0.0;
        }
        let mut symmetric = 0usize;
        for (r, list) in &self.implications {
            for &(s, _) in list {
                // Self-pairs are reported by `self_membership_fraction`,
                // not here.
                if s != *r
                    && self
                        .implications
                        .get(&s)
                        .is_some_and(|back| back.iter().any(|&(x, _)| x == *r))
                {
                    symmetric += 1;
                }
            }
        }
        symmetric as f64 / total as f64
    }

    /// "Combined" volumes: drop implications whose endpoints do not share a
    /// `level`-deep directory prefix (paper Section 3.3.2, bottom curve of
    /// Figure 5(a)).
    pub fn restrict_same_prefix(&self, level: usize, table: &ResourceTable) -> Self {
        let mut implications = HashMap::new();
        for (&r, list) in &self.implications {
            let Some(pr) = table.path(r) else { continue };
            let prefix = directory_prefix(pr, level);
            let kept: Vec<(ResourceId, f32)> = list
                .iter()
                .filter(|&&(s, _)| {
                    table
                        .path(s)
                        .is_some_and(|ps| directory_prefix(ps, level) == prefix)
                })
                .copied()
                .collect();
            if !kept.is_empty() {
                implications.insert(r, kept);
            }
        }
        ProbabilityVolumes {
            threshold: self.threshold,
            implications,
        }
    }

    /// Re-threshold: keep only implications with `p >= p_t` (must not be
    /// lower than the construction threshold to be meaningful).
    pub fn rethreshold(&self, p_t: f64) -> Self {
        let mut implications = HashMap::new();
        for (&r, list) in &self.implications {
            let kept: Vec<(ResourceId, f32)> = list
                .iter()
                .filter(|&&(_, p)| p as f64 >= p_t)
                .copied()
                .collect();
            if !kept.is_empty() {
                implications.insert(r, kept);
            }
        }
        ProbabilityVolumes {
            threshold: p_t.max(self.threshold),
            implications,
        }
    }
}

impl VolumeProvider for ProbabilityVolumes {
    fn assign(&mut self, _resource: ResourceId, _path: &str) {
        // Membership comes from the offline build; nothing to do.
    }

    fn volume_of(&self, resource: ResourceId) -> Option<VolumeId> {
        // Every resource identifies its own volume.
        Some(VolumeId(resource.0))
    }

    fn record_access(
        &mut self,
        _resource: ResourceId,
        _source: SourceId,
        _now: Timestamp,
        _table: &ResourceTable,
    ) {
        // Static volumes: online maintenance happens in the builder.
    }

    fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        _now: Timestamp,
        table: &ResourceTable,
    ) -> Option<PiggybackMessage> {
        let vol = VolumeId(resource.0);
        if !filter.allows_volume(vol) {
            return None;
        }
        let min_p = filter.prob_threshold.unwrap_or(0.0);
        let cap = filter.cap();
        let mut elements = Vec::new();
        for &(s, p) in self.volume(resource) {
            if elements.len() >= cap {
                break;
            }
            if (p as f64) < min_p || s == resource {
                continue;
            }
            let Some(meta) = table.meta(s) else { continue };
            if !filter.admits(meta) {
                continue;
            }
            elements.push(PiggybackElement {
                resource: s,
                size: meta.size,
                last_modified: meta.last_modified,
            });
        }
        if elements.is_empty() {
            return None;
        }
        Some(PiggybackMessage {
            volume: vol,
            elements,
        })
    }

    fn volume_count(&self) -> usize {
        self.implications.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    const T: DurationMs = DurationMs::from_secs(300);

    /// Feed a simple repeating session: page /a then image /b, many times.
    fn feed_page_image(builder: &mut ProbabilityVolumesBuilder, reps: u64) {
        for i in 0..reps {
            let base = i * 1000; // sessions far apart (> T)
            builder.observe(SourceId(i as u32 % 7), ResourceId(0), ts(base));
            builder.observe(SourceId(i as u32 % 7), ResourceId(1), ts(base + 2));
        }
    }

    #[test]
    fn counts_simple_implication() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        feed_page_image(&mut b, 20);
        // Every /a is followed by /b: p(b|a) = 1.
        assert_eq!(b.probability(ResourceId(0), ResourceId(1)), Some(1.0));
        // /b is never followed by /a within the window.
        assert_eq!(b.probability(ResourceId(1), ResourceId(0)), None);
        let vols = b.build(0.5);
        assert_eq!(vols.volume(ResourceId(0)), &[(ResourceId(1), 1.0f32)]);
        assert!(vols.volume(ResourceId(1)).is_empty());
    }

    #[test]
    fn window_bounds_pairing() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        b.observe(SourceId(1), ResourceId(0), ts(0));
        // 301 s later: outside the window, no pair.
        b.observe(SourceId(1), ResourceId(1), ts(301));
        assert_eq!(b.probability(ResourceId(0), ResourceId(1)), None);
        // Exactly at the window edge counts.
        b.observe(SourceId(2), ResourceId(0), ts(1000));
        b.observe(SourceId(2), ResourceId(1), ts(1300));
        assert!(b.probability(ResourceId(0), ResourceId(1)).is_some());
    }

    #[test]
    fn different_sources_do_not_pair() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        b.observe(SourceId(1), ResourceId(0), ts(0));
        b.observe(SourceId(2), ResourceId(1), ts(1));
        assert_eq!(b.probability(ResourceId(0), ResourceId(1)), None);
    }

    #[test]
    fn probability_never_exceeds_one() {
        // r requested once, s requested many times right after.
        let mut b = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        b.observe(SourceId(1), ResourceId(0), ts(0));
        for i in 1..50 {
            b.observe(SourceId(1), ResourceId(1), ts(i));
        }
        let p = b.probability(ResourceId(0), ResourceId(1)).unwrap();
        assert!(p <= 1.0, "got {p}");
    }

    #[test]
    fn fractional_probability() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        // /a followed by /b in 2 of 4 sessions.
        for i in 0..4u64 {
            let base = i * 10_000;
            b.observe(SourceId(1), ResourceId(0), ts(base));
            if i % 2 == 0 {
                b.observe(SourceId(1), ResourceId(1), ts(base + 5));
            }
        }
        assert_eq!(b.probability(ResourceId(0), ResourceId(1)), Some(0.5));
        let vols = b.build(0.6);
        assert!(vols.volume(ResourceId(0)).is_empty(), "0.5 < p_t 0.6");
        let vols = b.build(0.5);
        assert_eq!(vols.volume(ResourceId(0)).len(), 1);
    }

    #[test]
    fn volume_sorted_by_descending_probability() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.01, SamplingMode::Exact);
        for i in 0..10u64 {
            let base = i * 10_000;
            b.observe(SourceId(1), ResourceId(0), ts(base));
            b.observe(SourceId(1), ResourceId(1), ts(base + 1)); // always
            if i < 5 {
                b.observe(SourceId(1), ResourceId(2), ts(base + 2)); // half
            }
        }
        let vols = b.build(0.1);
        let v = vols.volume(ResourceId(0));
        assert_eq!(v[0].0, ResourceId(1));
        assert_eq!(v[1].0, ResourceId(2));
        assert!(v[0].1 > v[1].1);
    }

    #[test]
    fn sampling_reduces_counters() {
        let mut exact = ProbabilityVolumesBuilder::new(T, 0.25, SamplingMode::Exact);
        let mut sampled =
            ProbabilityVolumesBuilder::new(T, 0.25, SamplingMode::Sampled { factor: 1.0 })
                .with_seed(7);
        // A popular resource r followed by 200 different one-off resources:
        // all implications have probability ~1/200, far below p_t.
        for i in 0..200u32 {
            let base = i as u64 * 10_000;
            for b in [&mut exact, &mut sampled] {
                b.observe(SourceId(1), ResourceId(0), ts(base));
                b.observe(SourceId(1), ResourceId(1 + i), ts(base + 1));
            }
        }
        assert_eq!(exact.counter_count(), 200);
        assert!(
            sampled.counter_count() < 100,
            "sampling should reject most low-probability pairs, kept {}",
            sampled.counter_count()
        );
        assert!(sampled.rejected_pair_observations() > 0);
    }

    #[test]
    fn sampling_keeps_strong_pairs() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.25, SamplingMode::Sampled { factor: 4.0 })
            .with_seed(3);
        feed_page_image(&mut b, 300);
        // p(b|a)=1 with 300 chances to create the counter: it must exist
        // and its estimate must still clear the threshold.
        let p = b
            .probability(ResourceId(0), ResourceId(1))
            .expect("counter for a strong pair");
        assert!(p > 0.5, "estimate {p} too low");
    }

    #[test]
    fn restrict_same_prefix_drops_cross_directory_pairs() {
        let mut table = ResourceTable::new();
        let a = table.register_path("/x/a.html", 1, ts(0));
        let b_ = table.register_path("/x/b.gif", 1, ts(0));
        let c = table.register_path("/y/c.html", 1, ts(0));
        let mut builder =
            ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact).restrict_same_prefix(1);
        for i in 0..5u64 {
            let base = i * 10_000;
            builder.observe_with_table(SourceId(1), a, ts(base), &table);
            builder.observe_with_table(SourceId(1), b_, ts(base + 1), &table);
            builder.observe_with_table(SourceId(1), c, ts(base + 2), &table);
        }
        assert!(builder.probability(a, b_).is_some(), "same prefix kept");
        assert!(builder.probability(a, c).is_none(), "cross prefix dropped");
        assert!(builder.probability(b_, c).is_none());
    }

    #[test]
    fn post_hoc_prefix_restriction() {
        let mut table = ResourceTable::new();
        let a = table.register_path("/x/a.html", 1, ts(0));
        let b_ = table.register_path("/x/b.gif", 1, ts(0));
        let c = table.register_path("/y/c.html", 1, ts(0));
        let mut builder = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        for i in 0..5u64 {
            let base = i * 10_000;
            builder.observe(SourceId(1), a, ts(base));
            builder.observe(SourceId(1), b_, ts(base + 1));
            builder.observe(SourceId(1), c, ts(base + 2));
        }
        let vols = builder.build(0.5);
        assert_eq!(vols.volume(a).len(), 2);
        let combined = vols.restrict_same_prefix(1, &table);
        assert_eq!(combined.volume(a).len(), 1);
        assert_eq!(combined.volume(a)[0].0, b_);
    }

    #[test]
    fn piggyback_respects_probability_threshold_filter() {
        let mut table = ResourceTable::new();
        let a = table.register_path("/a", 10, ts(0));
        let b_ = table.register_path("/b", 10, ts(0));
        let c = table.register_path("/c", 10, ts(0));
        let mut builder = ProbabilityVolumesBuilder::new(T, 0.01, SamplingMode::Exact);
        for i in 0..10u64 {
            let base = i * 10_000;
            builder.observe(SourceId(1), a, ts(base));
            builder.observe(SourceId(1), b_, ts(base + 1));
            if i < 3 {
                builder.observe(SourceId(1), c, ts(base + 2));
            }
        }
        let vols = builder.build(0.1);
        // Unfiltered: both b (p=1.0) and c (p=0.3).
        let all = vols
            .piggyback(a, &ProxyFilter::default(), ts(0), &table)
            .unwrap();
        assert_eq!(all.len(), 2);
        // pt=0.5 filter: only b.
        let f = ProxyFilter::builder().prob_threshold(0.5).build();
        let strong = vols.piggyback(a, &f, ts(0), &table).unwrap();
        assert_eq!(strong.len(), 1);
        assert_eq!(strong.elements[0].resource, b_);
        // Volume id equals resource id; RPV can suppress it.
        assert_eq!(all.volume, VolumeId(a.0));
        let rpv = ProxyFilter::builder().rpv([VolumeId(a.0)]).build();
        assert!(vols.piggyback(a, &rpv, ts(0), &table).is_none());
    }

    #[test]
    fn stats_on_symmetry_and_self_membership() {
        let mut impls = HashMap::new();
        impls.insert(ResourceId(0), vec![(ResourceId(1), 0.9f32)]);
        impls.insert(
            ResourceId(1),
            vec![(ResourceId(0), 0.8f32), (ResourceId(2), 0.5)],
        );
        impls.insert(ResourceId(3), vec![(ResourceId(3), 0.7f32)]);
        let v = ProbabilityVolumes::from_implications(0.2, impls);
        // (0,1) and (1,0) are symmetric => 2 of 4 implications.
        assert!((v.symmetric_fraction() - 0.5).abs() < 1e-9);
        // One of three resources contains itself.
        assert!((v.self_membership_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert!((v.avg_volume_size() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn transient_state_bounded_by_active_sources() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.1, SamplingMode::Exact);
        // 500 sources, each a short burst of two paired requests, bursts
        // spaced far beyond T so at most one source is active at a time.
        for i in 0..500u64 {
            let base = i * 1000; // 1000 s apart > T = 300 s
            let src = SourceId(i as u32);
            b.observe(src, ResourceId(0), ts(base));
            b.observe(src, ResourceId(1), ts(base + 1));
        }
        // The counters being built keep accumulating...
        assert_eq!(b.probability(ResourceId(0), ResourceId(1)), Some(1.0));
        assert_eq!(b.counter_count(), 1);
        // ...but transient per-source state is swept down to the sources
        // active within the last window, not all 500 ever seen.
        assert!(
            b.active_source_count() <= 2,
            "transient state grew with total sources: {}",
            b.active_source_count()
        );
        assert!(b.history_entry_count() <= 4);
        assert!(b.credit_entry_count() <= 2);
    }

    #[test]
    fn rethreshold_prunes() {
        let mut b = ProbabilityVolumesBuilder::new(T, 0.01, SamplingMode::Exact);
        for i in 0..10u64 {
            let base = i * 10_000;
            b.observe(SourceId(1), ResourceId(0), ts(base));
            b.observe(SourceId(1), ResourceId(1), ts(base + 1));
            if i < 2 {
                b.observe(SourceId(1), ResourceId(2), ts(base + 2));
            }
        }
        let v = b.build(0.1);
        assert_eq!(v.volume(ResourceId(0)).len(), 2);
        let pruned = v.rethreshold(0.9);
        assert_eq!(pruned.volume(ResourceId(0)).len(), 1);
        assert_eq!(pruned.threshold(), 0.9);
    }
}
