//! Partitioned move-to-front FIFO lists for volume maintenance (paper
//! Section 3.2.1).
//!
//! "The server can maintain volume elements in a collection of FIFO lists
//! partitioned by resource sizes and content type. ... Using move-to-front
//! semantics to place a requested resource at the head of its FIFO ...
//! permits constant-time operations."
//!
//! Each volume owns one [`PartitionedFifo`]; every member resource sits in
//! exactly one partition, selected by `(content type, size class)`. Touching
//! a resource moves it to the front of its partition in O(1); piggyback
//! generation walks only the partitions a proxy filter admits.

use crate::types::{ContentType, ResourceId, Timestamp};
use std::collections::HashMap;

/// Number of logarithmic size classes: <1 KB, <8 KB, <64 KB, <1 MB, ≥1 MB.
pub const SIZE_CLASSES: usize = 5;

/// The size class for a resource of `size` bytes.
pub fn size_class(size: u64) -> usize {
    match size {
        0..=1023 => 0,
        1024..=8191 => 1,
        8192..=65535 => 2,
        65536..=1048575 => 3,
        _ => 4,
    }
}

/// Smallest byte size in class `class`, for partition pruning against a
/// filter's `maxsize`.
pub fn size_class_min(class: usize) -> u64 {
    match class {
        0 => 0,
        1 => 1024,
        2 => 8192,
        3 => 65536,
        _ => 1048576,
    }
}

const NPART: usize = ContentType::ALL.len() * SIZE_CLASSES;

fn partition_index(ct: ContentType, size: u64) -> usize {
    ct.index() * SIZE_CLASSES + size_class(size)
}

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: Option<ResourceId>,
    next: Option<ResourceId>,
    partition: usize,
    last_access: Timestamp,
}

/// A set of intrusive doubly-linked recency lists, one per
/// `(content type, size class)` partition, with O(1) touch / remove /
/// tail-trim.
///
/// The head of each list is the most recently touched member; the tail is
/// the least recently touched ("the server can control the size of volumes
/// by removing unpopular entries from the tail").
#[derive(Debug, Clone, Default)]
pub struct PartitionedFifo {
    nodes: HashMap<ResourceId, Node>,
    heads: [Option<ResourceId>; NPART],
    tails: [Option<ResourceId>; NPART],
}

impl PartitionedFifo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total members across all partitions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn contains(&self, r: ResourceId) -> bool {
        self.nodes.contains_key(&r)
    }

    /// Record an access to `r` (with current type/size) at `now`: insert if
    /// absent, else move to the front of its partition. If the resource's
    /// partition changed (size or type update), it is migrated. O(1).
    pub fn touch(&mut self, r: ResourceId, ct: ContentType, size: u64, now: Timestamp) {
        let part = partition_index(ct, size);
        if let Some(node) = self.nodes.get(&r) {
            let old_part = node.partition;
            self.unlink(r, old_part);
            self.link_front(r, part, now);
        } else {
            self.link_front(r, part, now);
        }
    }

    /// Remove `r` from its partition. O(1). Returns whether it was present.
    pub fn remove(&mut self, r: ResourceId) -> bool {
        match self.nodes.get(&r) {
            Some(node) => {
                let part = node.partition;
                self.unlink(r, part);
                self.nodes.remove(&r);
                true
            }
            None => false,
        }
    }

    /// Drop the least-recently-touched member of the *largest* partition
    /// until total membership is at most `max`. Used to bound volume size.
    pub fn trim_to(&mut self, max: usize) {
        while self.nodes.len() > max {
            // Find the partition with the oldest tail.
            let victim = (0..NPART)
                .filter_map(|p| self.tails[p].map(|t| (p, t)))
                .min_by_key(|&(_, t)| self.nodes[&t].last_access)
                .map(|(_, t)| t);
            match victim {
                Some(r) => {
                    self.remove(r);
                }
                None => break,
            }
        }
    }

    /// Iterate the members of partition `(ct, class)` from most to least
    /// recently touched.
    pub fn iter_partition(&self, ct: ContentType, class: usize) -> PartitionIter<'_> {
        let part = ct.index() * SIZE_CLASSES + class;
        PartitionIter {
            fifo: self,
            cursor: self.heads[part],
        }
    }

    /// Iterate all members, most recently touched first (merged across
    /// partitions by access time).
    pub fn iter_recent(&self) -> impl Iterator<Item = (ResourceId, Timestamp)> + '_ {
        let mut all: Vec<(ResourceId, Timestamp)> = self
            .nodes
            .iter()
            .map(|(&r, n)| (r, n.last_access))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        all.into_iter()
    }

    /// The last access time recorded for `r`.
    pub fn last_access(&self, r: ResourceId) -> Option<Timestamp> {
        self.nodes.get(&r).map(|n| n.last_access)
    }

    fn link_front(&mut self, r: ResourceId, part: usize, now: Timestamp) {
        let old_head = self.heads[part];
        self.nodes.insert(
            r,
            Node {
                prev: None,
                next: old_head,
                partition: part,
                last_access: now,
            },
        );
        if let Some(h) = old_head {
            self.nodes.get_mut(&h).expect("head node exists").prev = Some(r);
        }
        self.heads[part] = Some(r);
        if self.tails[part].is_none() {
            self.tails[part] = Some(r);
        }
    }

    fn unlink(&mut self, r: ResourceId, part: usize) {
        let node = self.nodes[&r];
        match node.prev {
            Some(p) => self.nodes.get_mut(&p).expect("prev exists").next = node.next,
            None => self.heads[part] = node.next,
        }
        match node.next {
            Some(n) => self.nodes.get_mut(&n).expect("next exists").prev = node.prev,
            None => self.tails[part] = node.prev,
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let mut seen = 0usize;
        for p in 0..NPART {
            let mut cursor = self.heads[p];
            let mut prev: Option<ResourceId> = None;
            while let Some(r) = cursor {
                let node = &self.nodes[&r];
                assert_eq!(node.partition, p, "node in wrong partition list");
                assert_eq!(node.prev, prev, "prev link broken");
                prev = Some(r);
                cursor = node.next;
                seen += 1;
            }
            assert_eq!(self.tails[p], prev, "tail mismatch");
        }
        assert_eq!(seen, self.nodes.len(), "orphaned nodes");
    }
}

/// Iterator over one partition, most recent first.
pub struct PartitionIter<'a> {
    fifo: &'a PartitionedFifo,
    cursor: Option<ResourceId>,
}

impl<'a> Iterator for PartitionIter<'a> {
    type Item = (ResourceId, Timestamp);

    fn next(&mut self) -> Option<Self::Item> {
        let r = self.cursor?;
        let node = &self.fifo.nodes[&r];
        self.cursor = node.next;
        Some((r, node.last_access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn size_classes_partition_the_range() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1023), 0);
        assert_eq!(size_class(1024), 1);
        assert_eq!(size_class(8191), 1);
        assert_eq!(size_class(8192), 2);
        assert_eq!(size_class(65535), 2);
        assert_eq!(size_class(65536), 3);
        assert_eq!(size_class(1048575), 3);
        assert_eq!(size_class(1048576), 4);
        assert_eq!(size_class(u64::MAX), 4);
        for c in 0..SIZE_CLASSES {
            assert_eq!(size_class(size_class_min(c)), c);
        }
    }

    #[test]
    fn move_to_front_ordering() {
        let mut f = PartitionedFifo::new();
        f.touch(ResourceId(1), ContentType::Html, 100, ts(1));
        f.touch(ResourceId(2), ContentType::Html, 100, ts(2));
        f.touch(ResourceId(3), ContentType::Html, 100, ts(3));
        f.check_invariants();
        let order: Vec<u32> = f
            .iter_partition(ContentType::Html, 0)
            .map(|(r, _)| r.0)
            .collect();
        assert_eq!(order, vec![3, 2, 1]);
        // Re-touch 1: moves to front.
        f.touch(ResourceId(1), ContentType::Html, 100, ts(4));
        f.check_invariants();
        let order: Vec<u32> = f
            .iter_partition(ContentType::Html, 0)
            .map(|(r, _)| r.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn partitions_are_independent() {
        let mut f = PartitionedFifo::new();
        f.touch(ResourceId(1), ContentType::Html, 100, ts(1));
        f.touch(ResourceId(2), ContentType::Image, 100, ts(2));
        f.touch(ResourceId(3), ContentType::Html, 5000, ts(3)); // class 1
        assert_eq!(f.iter_partition(ContentType::Html, 0).count(), 1);
        assert_eq!(f.iter_partition(ContentType::Html, 1).count(), 1);
        assert_eq!(f.iter_partition(ContentType::Image, 0).count(), 1);
        f.check_invariants();
    }

    #[test]
    fn partition_migration_on_size_change() {
        let mut f = PartitionedFifo::new();
        f.touch(ResourceId(1), ContentType::Html, 100, ts(1));
        // The resource grew past the class boundary.
        f.touch(ResourceId(1), ContentType::Html, 10_000, ts(2));
        f.check_invariants();
        assert_eq!(f.iter_partition(ContentType::Html, 0).count(), 0);
        assert_eq!(f.iter_partition(ContentType::Html, 2).count(), 1);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn remove_relinks() {
        let mut f = PartitionedFifo::new();
        for i in 1..=4 {
            f.touch(ResourceId(i), ContentType::Text, 10, ts(i as u64));
        }
        assert!(f.remove(ResourceId(3)));
        assert!(!f.remove(ResourceId(3)));
        f.check_invariants();
        let order: Vec<u32> = f
            .iter_partition(ContentType::Text, 0)
            .map(|(r, _)| r.0)
            .collect();
        assert_eq!(order, vec![4, 2, 1]);
        // Remove head and tail too.
        assert!(f.remove(ResourceId(4)));
        assert!(f.remove(ResourceId(1)));
        f.check_invariants();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn trim_drops_globally_oldest() {
        let mut f = PartitionedFifo::new();
        f.touch(ResourceId(1), ContentType::Html, 10, ts(1));
        f.touch(ResourceId(2), ContentType::Image, 10, ts(2));
        f.touch(ResourceId(3), ContentType::Html, 10, ts(3));
        f.trim_to(2);
        f.check_invariants();
        assert_eq!(f.len(), 2);
        assert!(!f.contains(ResourceId(1)), "oldest member evicted");
        f.trim_to(0);
        assert!(f.is_empty());
    }

    #[test]
    fn iter_recent_merges_partitions_by_time() {
        let mut f = PartitionedFifo::new();
        f.touch(ResourceId(1), ContentType::Html, 10, ts(5));
        f.touch(ResourceId(2), ContentType::Image, 10, ts(7));
        f.touch(ResourceId(3), ContentType::Text, 10, ts(6));
        let order: Vec<u32> = f.iter_recent().map(|(r, _)| r.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn last_access_tracked() {
        let mut f = PartitionedFifo::new();
        f.touch(ResourceId(9), ContentType::Other, 10, ts(42));
        assert_eq!(f.last_access(ResourceId(9)), Some(ts(42)));
        assert_eq!(f.last_access(ResourceId(1)), None);
    }
}
