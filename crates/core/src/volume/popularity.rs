//! Site-wide popularity volume (paper Section 5, future work:
//! "Additional information that could be piggybacked includes information
//! about popular resources gathered in a separate volume").
//!
//! [`WithPopularityFallback`] wraps any volume provider: when the inner
//! scheme has nothing to piggyback for a request (cold volume, thin
//! probability volume, unknown resource), the server falls back to a
//! volume holding its globally most popular resources — useful hints for
//! a proxy that has never visited the site before.

use crate::element::{PiggybackElement, PiggybackMessage};
use crate::filter::ProxyFilter;
use crate::table::ResourceTable;
use crate::types::{ResourceId, SourceId, Timestamp, VolumeId};
use crate::volume::VolumeProvider;

/// Reserved volume id for the popularity volume. Chosen at the top of the
/// paper's two-byte wire range so it cannot collide with directory volume
/// ids (assigned densely from 0) in any realistic deployment.
pub const POPULARITY_VOLUME: VolumeId = VolumeId(VolumeId::WIRE_MAX);

/// Wraps an inner provider with a most-popular-resources fallback volume.
#[derive(Debug, Clone)]
pub struct WithPopularityFallback<V> {
    inner: V,
    /// Number of top resources the fallback volume offers.
    top: usize,
    /// Only fall back when the inner piggyback is empty (true), or also
    /// top up undersized inner piggybacks (false).
    only_when_empty: bool,
}

impl<V: VolumeProvider> WithPopularityFallback<V> {
    pub fn new(inner: V, top: usize) -> Self {
        WithPopularityFallback {
            inner,
            top,
            only_when_empty: true,
        }
    }

    /// Also top up inner piggybacks smaller than the filter's cap.
    pub fn topping_up(mut self) -> Self {
        self.only_when_empty = false;
        self
    }

    pub fn inner(&self) -> &V {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut V {
        &mut self.inner
    }

    /// The current most-popular resources by access count (descending),
    /// excluding `exclude`, admitted by `filter`.
    fn popular(
        &self,
        exclude: ResourceId,
        filter: &ProxyFilter,
        table: &ResourceTable,
        limit: usize,
    ) -> Vec<PiggybackElement> {
        let mut all: Vec<(u64, ResourceId)> = table
            .iter()
            .filter(|&(id, _, meta)| id != exclude && meta.access_count > 0 && filter.admits(meta))
            .map(|(id, _, meta)| (meta.access_count, id))
            .collect();
        all.sort_by(|a, b| b.0.cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
        all.truncate(self.top.min(limit));
        all.into_iter()
            .filter_map(|(_, id)| {
                table.meta(id).map(|m| PiggybackElement {
                    resource: id,
                    size: m.size,
                    last_modified: m.last_modified,
                })
            })
            .collect()
    }
}

impl<V: VolumeProvider> VolumeProvider for WithPopularityFallback<V> {
    fn assign(&mut self, resource: ResourceId, path: &str) {
        self.inner.assign(resource, path);
    }

    fn volume_of(&self, resource: ResourceId) -> Option<VolumeId> {
        self.inner.volume_of(resource)
    }

    fn record_access(
        &mut self,
        resource: ResourceId,
        source: SourceId,
        now: Timestamp,
        table: &ResourceTable,
    ) {
        self.inner.record_access(resource, source, now, table);
    }

    fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        now: Timestamp,
        table: &ResourceTable,
    ) -> Option<PiggybackMessage> {
        let inner_msg = self.inner.piggyback(resource, filter, now, table);
        if !filter.enabled {
            return inner_msg; // inner returned None; keep semantics exact
        }
        match inner_msg {
            Some(msg) if self.only_when_empty || msg.len() >= filter.cap() => Some(msg),
            Some(mut msg) => {
                // Top up from the popularity volume, avoiding duplicates.
                let room = filter.cap().saturating_sub(msg.len());
                if room > 0 && filter.allows_volume(POPULARITY_VOLUME) {
                    let have: Vec<ResourceId> = msg.elements.iter().map(|e| e.resource).collect();
                    for e in self.popular(resource, filter, table, self.top) {
                        if msg.len() >= filter.cap() {
                            break;
                        }
                        if !have.contains(&e.resource) {
                            msg.elements.push(e);
                        }
                    }
                }
                Some(msg)
            }
            None => {
                if !filter.allows_volume(POPULARITY_VOLUME) {
                    return None;
                }
                let elements = self.popular(resource, filter, table, filter.cap());
                if elements.is_empty() {
                    return None;
                }
                Some(PiggybackMessage {
                    volume: POPULARITY_VOLUME,
                    elements,
                })
            }
        }
    }

    fn volume_count(&self) -> usize {
        self.inner.volume_count() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::DirectoryVolumes;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn setup() -> (ResourceTable, WithPopularityFallback<DirectoryVolumes>) {
        let mut table = ResourceTable::new();
        let mut vols = WithPopularityFallback::new(DirectoryVolumes::new(1), 3);
        for (path, accesses) in [
            ("/a/x.html", 10u64),
            ("/a/y.html", 5),
            ("/b/z.html", 20),
            ("/c/w.html", 1),
        ] {
            let id = table.register_path(path, 100, ts(0));
            vols.assign(id, path);
            for _ in 0..accesses {
                table.count_access(id);
            }
        }
        (table, vols)
    }

    #[test]
    fn falls_back_to_popularity_when_inner_empty() {
        let (table, vols) = setup();
        // No record_access has populated the directory FIFOs, so the inner
        // provider has nothing; the fallback kicks in.
        let r = table.lookup("/a/x.html").unwrap();
        let msg = vols
            .piggyback(r, &ProxyFilter::default(), ts(1), &table)
            .expect("popularity fallback");
        assert_eq!(msg.volume, POPULARITY_VOLUME);
        let ids: Vec<&str> = msg
            .elements
            .iter()
            .map(|e| table.path(e.resource).unwrap())
            .collect();
        // Top-3 by count, excluding the requested resource itself.
        assert_eq!(ids, vec!["/b/z.html", "/a/y.html", "/c/w.html"]);
    }

    #[test]
    fn inner_piggyback_takes_precedence() {
        let (table, mut vols) = setup();
        let x = table.lookup("/a/x.html").unwrap();
        let y = table.lookup("/a/y.html").unwrap();
        vols.record_access(y, SourceId(1), ts(1), &table);
        let msg = vols
            .piggyback(x, &ProxyFilter::default(), ts(2), &table)
            .unwrap();
        assert_ne!(msg.volume, POPULARITY_VOLUME);
        assert_eq!(msg.elements[0].resource, y);
        assert_eq!(msg.len(), 1, "no topping up by default");
    }

    #[test]
    fn topping_up_fills_to_cap_without_duplicates() {
        let (table, mut vols) = setup();
        let mut vols = {
            vols.record_access(
                table.lookup("/a/y.html").unwrap(),
                SourceId(1),
                ts(1),
                &table,
            );
            vols.topping_up()
        };
        // Re-touch after move (the builder consumed vols).
        let x = table.lookup("/a/x.html").unwrap();
        let filter = ProxyFilter::builder().max_piggy(3).build();
        let msg = vols.piggyback(x, &filter, ts(2), &table).unwrap();
        assert_eq!(msg.len(), 3);
        let mut ids: Vec<u32> = msg.elements.iter().map(|e| e.resource.0).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate element after topping up");
        vols.inner_mut(); // exercise accessor
    }

    #[test]
    fn rpv_can_suppress_popularity_volume() {
        let (table, vols) = setup();
        let r = table.lookup("/a/x.html").unwrap();
        let filter = ProxyFilter::builder().rpv([POPULARITY_VOLUME]).build();
        assert!(vols.piggyback(r, &filter, ts(1), &table).is_none());
    }

    #[test]
    fn filter_restrictions_apply_to_fallback() {
        let (table, vols) = setup();
        let r = table.lookup("/a/x.html").unwrap();
        let filter = ProxyFilter::builder().min_access_count(6).build();
        let msg = vols.piggyback(r, &filter, ts(1), &table).unwrap();
        let ids: Vec<&str> = msg
            .elements
            .iter()
            .map(|e| table.path(e.resource).unwrap())
            .collect();
        assert_eq!(ids, vec!["/b/z.html"], "only the 20-access resource passes");
        // Disabled filter: nothing at all.
        assert!(vols
            .piggyback(r, &ProxyFilter::disabled(), ts(1), &table)
            .is_none());
    }

    #[test]
    fn never_recommends_unaccessed_or_self() {
        let mut table = ResourceTable::new();
        let vols: WithPopularityFallback<DirectoryVolumes> =
            WithPopularityFallback::new(DirectoryVolumes::new(1), 5);
        let only = table.register_path("/solo.html", 10, ts(0));
        table.count_access(only);
        // The only accessed resource is the requested one: no piggyback.
        assert!(vols
            .piggyback(only, &ProxyFilter::default(), ts(1), &table)
            .is_none());
    }

    #[test]
    fn volume_count_includes_popularity() {
        let (_, vols) = setup();
        assert_eq!(vols.volume_count(), vols.inner().volume_count() + 1);
    }
}
