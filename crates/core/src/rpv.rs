//! Recently-piggybacked-volume (RPV) lists (paper Section 2.2).
//!
//! The proxy keeps, per server, a short FIFO of volume ids it has recently
//! received piggybacks for, each with the time of the last piggyback. The
//! list rides in the `Piggy-filter` header so the *server* — which knows the
//! volume membership — can suppress redundant piggybacks. The list is
//! transient state: bounded by both a timeout and a maximum length, and the
//! table of per-server lists is itself bounded.

use crate::types::{DurationMs, Timestamp, VolumeId};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Per-server FIFO of recently piggybacked volumes.
///
/// Invariants:
/// * at most `max_len` entries;
/// * no entry older than `timeout` (purged lazily on access);
/// * at most one entry per volume id (refreshed in place, moved to back).
///
/// The paper notes the timeout must not exceed the cache freshness interval
/// Δ, "since this would preclude the server from sending refresh information
/// for resources in this volume".
#[derive(Debug, Clone)]
pub struct RpvList {
    entries: VecDeque<(VolumeId, Timestamp)>,
    max_len: usize,
    timeout: DurationMs,
}

impl RpvList {
    /// Create a list bounded by `max_len` entries and `timeout` age.
    pub fn new(max_len: usize, timeout: DurationMs) -> Self {
        RpvList {
            entries: VecDeque::with_capacity(max_len.min(64)),
            max_len,
            timeout,
        }
    }

    /// Record a piggyback received for `volume` at `now`.
    pub fn record(&mut self, volume: VolumeId, now: Timestamp) {
        self.purge(now);
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == volume) {
            self.entries.remove(pos);
        }
        self.entries.push_back((volume, now));
        while self.entries.len() > self.max_len {
            self.entries.pop_front();
        }
    }

    /// Whether `volume` was piggybacked within the timeout as of `now`.
    pub fn contains(&mut self, volume: VolumeId, now: Timestamp) -> bool {
        self.purge(now);
        self.entries.iter().any(|(v, _)| *v == volume)
    }

    /// The volume ids to send in the filter's `rpv` attribute, oldest first.
    pub fn filter_ids(&mut self, now: Timestamp) -> Vec<VolumeId> {
        let mut out = Vec::new();
        self.write_ids(now, &mut out);
        out
    }

    /// Write the current `rpv` ids into `out` (cleared first), oldest
    /// first — the allocation-free form of [`filter_ids`](Self::filter_ids)
    /// for replay hot paths that reuse one filter per source stream.
    pub fn write_ids(&mut self, now: Timestamp, out: &mut Vec<VolumeId>) {
        self.purge(now);
        out.clear();
        out.extend(self.entries.iter().map(|(v, _)| *v));
    }

    /// Time the last piggyback for `volume` was received, if fresh.
    pub fn last_piggyback(&mut self, volume: VolumeId, now: Timestamp) -> Option<Timestamp> {
        self.purge(now);
        self.entries
            .iter()
            .find(|(v, _)| *v == volume)
            .map(|&(_, t)| t)
    }

    /// Current number of fresh entries.
    pub fn len(&mut self, now: Timestamp) -> usize {
        self.purge(now);
        self.entries.len()
    }

    pub fn is_empty(&mut self, now: Timestamp) -> bool {
        self.len(now) == 0
    }

    fn purge(&mut self, now: Timestamp) {
        let cutoff = now.before(self.timeout);
        while let Some(&(_, t)) = self.entries.front() {
            if t < cutoff {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The proxy's table of RPV lists, "maintain[ed] efficiently as FIFO lists
/// in a hash table keyed on the server IP address".
///
/// The table is bounded to `max_servers`; when full, the server whose most
/// recent piggyback is oldest is evicted — the paper suggests keeping lists
/// only "for a small subset of servers that are visited frequently".
#[derive(Debug)]
pub struct RpvTable<K: std::hash::Hash + Eq + Clone> {
    lists: HashMap<K, RpvList>,
    max_servers: usize,
    per_list_len: usize,
    timeout: DurationMs,
}

impl<K: std::hash::Hash + Eq + Clone> RpvTable<K> {
    pub fn new(max_servers: usize, per_list_len: usize, timeout: DurationMs) -> Self {
        RpvTable {
            lists: HashMap::new(),
            max_servers: max_servers.max(1),
            per_list_len,
            timeout,
        }
    }

    /// Record a piggyback from `server` for `volume` at `now`.
    pub fn record(&mut self, server: &K, volume: VolumeId, now: Timestamp) {
        if !self.lists.contains_key(server) {
            if self.lists.len() >= self.max_servers {
                self.evict_stalest(now);
            }
            self.lists.insert(
                server.clone(),
                RpvList::new(self.per_list_len, self.timeout),
            );
        }
        self.lists
            .get_mut(server)
            .expect("just inserted")
            .record(volume, now);
    }

    /// RPV ids to include in a request filter to `server`.
    pub fn filter_ids(&mut self, server: &K, now: Timestamp) -> Vec<VolumeId> {
        match self.lists.get_mut(server) {
            Some(list) => list.filter_ids(now),
            None => Vec::new(),
        }
    }

    /// Direct access to one server's list (e.g. for tests or policies).
    pub fn list_mut(&mut self, server: &K) -> Option<&mut RpvList> {
        self.lists.get_mut(server)
    }

    /// Number of tracked servers (including ones whose lists may be stale).
    pub fn servers(&self) -> usize {
        self.lists.len()
    }

    fn evict_stalest(&mut self, _now: Timestamp) {
        // Evict the server with the oldest most-recent entry; empty lists
        // are the stalest of all.
        let victim = self
            .lists
            .iter()
            .min_by_key(|(_, l)| l.entries.back().map(|&(_, t)| t).unwrap_or(Timestamp::ZERO))
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.lists.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn records_and_expires() {
        let mut l = RpvList::new(8, DurationMs::from_secs(30));
        l.record(VolumeId(1), ts(0));
        assert!(l.contains(VolumeId(1), ts(10)));
        assert!(l.contains(VolumeId(1), ts(30)));
        assert!(!l.contains(VolumeId(1), ts(31)), "past timeout");
        assert!(l.is_empty(ts(31)));
    }

    #[test]
    fn bounded_length_drops_oldest() {
        let mut l = RpvList::new(2, DurationMs::from_secs(1000));
        l.record(VolumeId(1), ts(1));
        l.record(VolumeId(2), ts(2));
        l.record(VolumeId(3), ts(3));
        assert!(!l.contains(VolumeId(1), ts(3)));
        assert_eq!(l.filter_ids(ts(3)), vec![VolumeId(2), VolumeId(3)]);
    }

    #[test]
    fn re_record_refreshes_and_dedupes() {
        let mut l = RpvList::new(8, DurationMs::from_secs(30));
        l.record(VolumeId(1), ts(0));
        l.record(VolumeId(2), ts(5));
        l.record(VolumeId(1), ts(20));
        // Only one entry for volume 1, refreshed to t=20.
        assert_eq!(l.filter_ids(ts(20)), vec![VolumeId(2), VolumeId(1)]);
        assert!(l.contains(VolumeId(1), ts(49)));
        assert!(!l.contains(VolumeId(2), ts(40)));
        assert_eq!(l.last_piggyback(VolumeId(1), ts(21)), Some(ts(20)));
    }

    #[test]
    fn table_tracks_per_server() {
        let mut t: RpvTable<&'static str> = RpvTable::new(4, 8, DurationMs::from_secs(60));
        t.record(&"a.com", VolumeId(1), ts(0));
        t.record(&"b.com", VolumeId(2), ts(1));
        assert_eq!(t.filter_ids(&"a.com", ts(5)), vec![VolumeId(1)]);
        assert_eq!(t.filter_ids(&"b.com", ts(5)), vec![VolumeId(2)]);
        assert_eq!(t.filter_ids(&"c.com", ts(5)), Vec::<VolumeId>::new());
    }

    #[test]
    fn table_evicts_stalest_server() {
        let mut t: RpvTable<u32> = RpvTable::new(2, 8, DurationMs::from_secs(600));
        t.record(&1, VolumeId(1), ts(0));
        t.record(&2, VolumeId(2), ts(50));
        t.record(&3, VolumeId(3), ts(100)); // evicts server 1 (stalest)
        assert_eq!(t.servers(), 2);
        assert!(t.filter_ids(&1, ts(100)).is_empty());
        assert_eq!(t.filter_ids(&2, ts(100)), vec![VolumeId(2)]);
        assert_eq!(t.filter_ids(&3, ts(100)), vec![VolumeId(3)]);
    }

    #[test]
    fn timeout_boundary_is_inclusive() {
        // An entry exactly `timeout` old is still fresh; one millisecond
        // older is purged.
        let mut l = RpvList::new(8, DurationMs::from_millis(1000));
        l.record(VolumeId(7), Timestamp::from_millis(500));
        assert!(l.contains(VolumeId(7), Timestamp::from_millis(1500)));
        assert!(!l.contains(VolumeId(7), Timestamp::from_millis(1501)));
    }
}
