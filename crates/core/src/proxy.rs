//! Proxy-side piggyback handling (paper Sections 2.1–2.2).
//!
//! [`PiggybackClient`] owns the transient per-server state a proxy keeps:
//! RPV lists and frequency-control pacing. It builds the `Piggy-filter`
//! for each outgoing request and records arriving piggybacks. The pure
//! function [`classify_element`] implements the per-element processing of
//! Section 2.1 ("if p is not in the cache, it could be prefetched...").

use crate::element::PiggybackMessage;
use crate::filter::ProxyFilter;
use crate::freq::FrequencyControl;
use crate::rpv::RpvTable;
use crate::types::{DurationMs, Timestamp};

/// What a proxy should do with one piggyback element (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementAction {
    /// Not in the cache: a prefetch candidate.
    PrefetchCandidate,
    /// Cached and the server's copy is not newer: extend the expiration
    /// time (saves a future If-Modified-Since validation).
    Freshen,
    /// Cached but the server's copy is newer: the cached copy is stale —
    /// delete it (and optionally prefetch a fresh copy).
    Invalidate,
}

/// Decide the action for a piggyback element describing a resource whose
/// cached Last-Modified (if any) is `cached_last_modified`, given the
/// element's (server-side) Last-Modified time.
pub fn classify_element(
    cached_last_modified: Option<Timestamp>,
    element_last_modified: Timestamp,
) -> ElementAction {
    match cached_last_modified {
        None => ElementAction::PrefetchCandidate,
        Some(lm) if element_last_modified > lm => ElementAction::Invalidate,
        Some(_) => ElementAction::Freshen,
    }
}

/// Configuration for a proxy's piggyback client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Template for content-oriented filter fields (maxpiggy, minacc, pt,
    /// maxsize, types); the RPV list and enable bit are filled per request.
    pub base_filter: ProxyFilter,
    /// RPV table bounds: (max servers, per-list length). `None` disables
    /// RPV filtering (appropriate for servers with many volumes).
    pub rpv: Option<(usize, usize)>,
    /// RPV entry timeout. The paper requires this to be at most the cache
    /// freshness interval Δ.
    pub rpv_timeout: DurationMs,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            base_filter: ProxyFilter::default(),
            rpv: Some((1024, 16)),
            rpv_timeout: DurationMs::from_secs(60),
        }
    }
}

/// The proxy's per-server piggyback state and filter generation.
pub struct PiggybackClient<F: FrequencyControl> {
    config: ClientConfig,
    rpv: Option<RpvTable<u64>>,
    pacing: F,
}

impl<F: FrequencyControl> PiggybackClient<F> {
    /// `pacing` decides the per-request enable bit (use
    /// [`AlwaysEnable`](crate::freq::AlwaysEnable) for no pacing).
    pub fn new(config: ClientConfig, pacing: F) -> Self {
        let rpv = config
            .rpv
            .map(|(servers, len)| RpvTable::new(servers, len, config.rpv_timeout));
        PiggybackClient {
            config,
            rpv,
            pacing,
        }
    }

    /// Build the filter to piggyback on the next request to `server`.
    pub fn filter_for(&mut self, server: u64, now: Timestamp) -> ProxyFilter {
        if !self.pacing.should_enable(server, now) {
            return ProxyFilter::disabled();
        }
        let mut f = self.config.base_filter.clone();
        if let Some(rpv) = &mut self.rpv {
            f.rpv = rpv.filter_ids(&server, now);
        }
        f
    }

    /// Record a piggyback received from `server`; `useful` is how many
    /// elements the proxy acted on (freshened, invalidated, or queued for
    /// prefetch), which feeds adaptive pacing.
    pub fn on_piggyback(
        &mut self,
        server: u64,
        msg: &PiggybackMessage,
        now: Timestamp,
        useful: usize,
    ) {
        if let Some(rpv) = &mut self.rpv {
            rpv.record(&server, msg.volume, now);
        }
        self.pacing.on_piggyback(server, now, useful, msg.len());
    }

    pub fn config(&self) -> &ClientConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{AlwaysEnable, MinInterval};
    use crate::types::VolumeId;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn msg(vol: u32) -> PiggybackMessage {
        PiggybackMessage::new(VolumeId(vol))
    }

    #[test]
    fn classify_matches_section_2_1() {
        // Not cached: prefetch candidate.
        assert_eq!(
            classify_element(None, ts(10)),
            ElementAction::PrefetchCandidate
        );
        // Cached, same version: freshen.
        assert_eq!(
            classify_element(Some(ts(10)), ts(10)),
            ElementAction::Freshen
        );
        // Cached, server older than cache (clock skew): still fresh.
        assert_eq!(
            classify_element(Some(ts(11)), ts(10)),
            ElementAction::Freshen
        );
        // Cached, server newer: stale.
        assert_eq!(
            classify_element(Some(ts(9)), ts(10)),
            ElementAction::Invalidate
        );
    }

    #[test]
    fn filter_carries_rpv_after_piggyback() {
        let mut client = PiggybackClient::new(ClientConfig::default(), AlwaysEnable);
        let f0 = client.filter_for(1, ts(0));
        assert!(f0.enabled);
        assert!(f0.rpv.is_empty());

        client.on_piggyback(1, &msg(5), ts(1), 0);
        let f1 = client.filter_for(1, ts(2));
        assert_eq!(f1.rpv, vec![VolumeId(5)]);
        // Another server is unaffected.
        assert!(client.filter_for(2, ts(2)).rpv.is_empty());
        // After the RPV timeout the id ages out.
        let f2 = client.filter_for(1, ts(120));
        assert!(f2.rpv.is_empty());
    }

    #[test]
    fn pacing_disables_filter() {
        let cfg = ClientConfig::default();
        let mut client = PiggybackClient::new(cfg, MinInterval::new(DurationMs::from_secs(60)));
        assert!(client.filter_for(1, ts(0)).enabled);
        client.on_piggyback(1, &msg(1), ts(0), 1);
        assert!(!client.filter_for(1, ts(30)).enabled, "within min interval");
        assert!(client.filter_for(1, ts(61)).enabled);
    }

    #[test]
    fn rpv_disabled_config() {
        let cfg = ClientConfig {
            rpv: None,
            ..Default::default()
        };
        let mut client = PiggybackClient::new(cfg, AlwaysEnable);
        client.on_piggyback(1, &msg(5), ts(1), 0);
        assert!(client.filter_for(1, ts(2)).rpv.is_empty());
    }

    #[test]
    fn base_filter_fields_preserved() {
        let cfg = ClientConfig {
            base_filter: ProxyFilter::builder()
                .max_piggy(10)
                .min_access_count(50)
                .build(),
            ..Default::default()
        };
        let mut client = PiggybackClient::new(cfg, AlwaysEnable);
        let f = client.filter_for(1, ts(0));
        assert_eq!(f.max_piggy, Some(10));
        assert_eq!(f.min_access_count, Some(50));
    }
}
