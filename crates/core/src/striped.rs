//! Striped per-source access histories for online volume learning.
//!
//! Probability volumes are built from `(source, resource, time)` access
//! pairs inside a window (Section 4 of the paper). On a live origin the
//! recorder sits on the serving path, so a single mutex around one big
//! history map would re-serialize exactly what the snapshot layer
//! de-serialized. Instead the map is striped across N lock shards keyed by
//! `fasthash(source)` — the same sharding pattern as the proxy cache — so
//! concurrent requests from different sources record without contention,
//! and an epoch advance drains all shards into one time-sorted batch for
//! the [`ProbabilityVolumesBuilder`](crate::volume::ProbabilityVolumesBuilder).

use crate::fasthash::{fx_hash_u64, FxHashMap};
use crate::types::{DurationMs, ResourceId, SourceId, Timestamp};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One source's bounded access log, newest at the back.
type SourceHistory = VecDeque<(Timestamp, ResourceId)>;

/// Per-source bounded access logs, striped across lock shards.
#[derive(Debug)]
pub struct StripedHistories {
    shards: Box<[Mutex<FxHashMap<SourceId, SourceHistory>>]>,
    /// Accesses older than this relative to the newest recorded entry of a
    /// source are pruned eagerly; only in-window pairs matter to the builder.
    window: DurationMs,
    /// Hard per-source cap, bounding memory against pathological sources.
    per_source_cap: usize,
}

impl StripedHistories {
    /// Default shard count; matches the proxy cache's sharding scale.
    pub const DEFAULT_SHARDS: usize = 16;
    /// Default bound on retained accesses per source.
    pub const DEFAULT_PER_SOURCE_CAP: usize = 4096;

    pub fn new(window: DurationMs) -> Self {
        Self::with_shards(window, Self::DEFAULT_SHARDS, Self::DEFAULT_PER_SOURCE_CAP)
    }

    pub fn with_shards(window: DurationMs, shards: usize, per_source_cap: usize) -> Self {
        let n = shards.max(1);
        StripedHistories {
            shards: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            window,
            per_source_cap: per_source_cap.max(1),
        }
    }

    fn shard(
        &self,
        source: SourceId,
    ) -> &Mutex<FxHashMap<SourceId, VecDeque<(Timestamp, ResourceId)>>> {
        let idx = fx_hash_u64(source.0 as u64) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Record one access, pruning entries of this source that have fallen
    /// out of the window ending at `now`.
    pub fn record(&self, source: SourceId, resource: ResourceId, now: Timestamp) {
        let mut guard = self.shard(source).lock().unwrap_or_else(|e| e.into_inner());
        let history = guard.entry(source).or_default();
        let cutoff = now.as_millis().saturating_sub(self.window.as_millis());
        while let Some(&(t, _)) = history.front() {
            if t.as_millis() < cutoff {
                history.pop_front();
            } else {
                break;
            }
        }
        if history.len() >= self.per_source_cap {
            history.pop_front();
        }
        history.push_back((now, resource));
    }

    /// Number of retained accesses across all shards (test/metrics aid;
    /// takes every shard lock in turn).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .map(VecDeque::len)
                    .sum::<usize>()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain every shard and return all retained accesses sorted by
    /// `(time, source, resource)` — the non-decreasing-time order the
    /// probability builder's `observe` contract requires. Recording may
    /// continue concurrently; entries recorded during the drain land in
    /// the next epoch.
    pub fn drain_sorted(&self) -> Vec<(Timestamp, SourceId, ResourceId)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (source, history) in guard.drain() {
                out.extend(history.into_iter().map(|(t, r)| (t, source, r)));
            }
        }
        out.sort_by_key(|&(t, s, r)| (t.as_millis(), s.0, r.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn drain_is_time_sorted_across_shards() {
        let h = StripedHistories::with_shards(DurationMs::from_secs(10), 4, 100);
        h.record(SourceId(3), ResourceId(30), ts(5));
        h.record(SourceId(1), ResourceId(10), ts(1));
        h.record(SourceId(2), ResourceId(20), ts(3));
        h.record(SourceId(1), ResourceId(11), ts(7));
        assert_eq!(h.len(), 4);
        let drained = h.drain_sorted();
        assert_eq!(
            drained,
            vec![
                (ts(1), SourceId(1), ResourceId(10)),
                (ts(3), SourceId(2), ResourceId(20)),
                (ts(5), SourceId(3), ResourceId(30)),
                (ts(7), SourceId(1), ResourceId(11)),
            ]
        );
        assert!(h.is_empty(), "drain must leave shards empty");
    }

    #[test]
    fn window_pruning_and_cap() {
        let h = StripedHistories::with_shards(DurationMs::from_millis(10), 1, 3);
        let s = SourceId(1);
        h.record(s, ResourceId(1), ts(0));
        h.record(s, ResourceId(2), ts(5));
        h.record(s, ResourceId(3), ts(20)); // prunes ts(0) and ts(5)
        assert_eq!(h.len(), 1);
        // Cap: the oldest entry is dropped once the per-source cap is hit.
        h.record(s, ResourceId(4), ts(21));
        h.record(s, ResourceId(5), ts(22));
        h.record(s, ResourceId(6), ts(23));
        assert_eq!(h.len(), 3);
        let drained = h.drain_sorted();
        assert_eq!(drained[0].2, ResourceId(4));
    }

    #[test]
    fn concurrent_recording_conserves_entries() {
        use std::sync::Arc;
        let h = Arc::new(StripedHistories::with_shards(
            DurationMs::from_secs(60),
            8,
            100_000,
        ));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u32 {
                        h.record(SourceId(t), ResourceId(i), ts(i as u64));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.len(), 8_000);
        let drained = h.drain_sorted();
        assert_eq!(drained.len(), 8_000);
        assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
