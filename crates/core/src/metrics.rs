//! Trace replay and the paper's evaluation metrics (Section 3.1).
//!
//! The engine replays a time-ordered request stream (a server log, with one
//! pseudo-proxy per source IP) against a volume provider, simulating the
//! piggyback exchange each source would have had, and computes:
//!
//! * **fraction predicted** (recall): requests that appeared in a piggyback
//!   to the same source within the last `T` seconds;
//! * **true prediction fraction** (precision): piggybacked resources that
//!   were then requested within `T` (duplicates within one interval counted
//!   once);
//! * **update fraction**: requests for recently-cached resources that a
//!   piggyback refreshed (Table 1's decomposition);
//! * **average piggyback size**: elements per sent piggyback message.

use crate::element::WireCost;
use crate::fasthash::FxHashMap;
use crate::filter::ProxyFilter;
use crate::rpv::RpvList;
use crate::table::ResourceTable;
use crate::types::{DurationMs, ResourceId, SourceId, Timestamp};
use crate::volume::VolumeProvider;

/// One trace request, as the server sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub time: Timestamp,
    pub source: SourceId,
    pub resource: ResourceId,
}

/// Per-source RPV list bounds used during replay.
#[derive(Debug, Clone, Copy)]
pub struct RpvConfig {
    pub max_len: usize,
    pub timeout: DurationMs,
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Prediction window `T` (the paper evaluates 300 s).
    pub window: DurationMs,
    /// Cache window `C` for the update metric (the paper uses 2 hours).
    pub update_window: DurationMs,
    /// Content-oriented filter fields each source sends (maxpiggy, minacc,
    /// pt, maxsize, types). Its `rpv` list is ignored — the engine manages
    /// per-source RPV state via [`ReplayConfig::rpv`].
    pub base_filter: ProxyFilter,
    /// Per-source RPV lists; `None` disables RPV filtering.
    pub rpv: Option<RpvConfig>,
    /// Per-source minimum interval between piggybacks (Figure 4's x-axis);
    /// `None` disables pacing.
    pub min_piggyback_interval: Option<DurationMs>,
    /// Count accesses into the resource table during replay. The paper's
    /// access filters use whole-trace counts, so experiments usually
    /// precount via [`precount_accesses`] and leave this off.
    pub count_accesses_online: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            window: DurationMs::from_secs(300),
            update_window: DurationMs::from_secs(7200),
            base_filter: ProxyFilter::default(),
            rpv: None,
            min_piggyback_interval: None,
            count_accesses_online: false,
        }
    }
}

/// Aggregated counters from a replay.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct MetricsReport {
    /// Total requests replayed.
    pub requests: u64,
    /// Requests predicted by a piggyback to the same source within `T`.
    pub predicted: u64,
    /// Requests predicted within `T` whose previous occurrence (same
    /// source) was within `C` — Figure 3(b)'s update metric.
    pub predicted_and_prev_within_c: u64,
    /// Requests whose previous occurrence was within `C` (Table 1 col 2).
    pub prev_within_c: u64,
    /// Requests whose previous occurrence was within `T` (Table 1 col 3).
    pub prev_within_t: u64,
    /// Requests predicted within `T` with previous occurrence in `(T, C]`
    /// (Table 1 col 4: piggybacks delivered new updates to cached copies).
    pub updated_by_piggyback: u64,
    /// Piggyback messages sent across all sources.
    pub piggyback_messages: u64,
    /// Elements across all piggyback messages.
    pub piggybacked_elements: u64,
    /// Distinct prediction events (piggybacked resource per source, deduped
    /// within one `T` interval).
    pub prediction_events: u64,
    /// Prediction events fulfilled by a request within `T`.
    pub true_predictions: u64,
}

impl MetricsReport {
    fn frac(n: u64, d: u64) -> f64 {
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// Recall: fraction of requests predicted in the last `T` seconds.
    pub fn fraction_predicted(&self) -> f64 {
        Self::frac(self.predicted, self.requests)
    }

    /// Precision: fraction of predictions that came true.
    pub fn true_prediction_fraction(&self) -> f64 {
        Self::frac(self.true_predictions, self.prediction_events)
    }

    /// Figure 3(b): predicted within `T` and previously requested within `C`.
    pub fn update_fraction_fig3(&self) -> f64 {
        Self::frac(self.predicted_and_prev_within_c, self.requests)
    }

    /// Table 1's update fraction: "the sum of the third and fourth columns".
    pub fn update_fraction_table1(&self) -> f64 {
        Self::frac(
            self.prev_within_t + self.updated_by_piggyback,
            self.requests,
        )
    }

    /// Table 1 column 2.
    pub fn prev_within_c_fraction(&self) -> f64 {
        Self::frac(self.prev_within_c, self.requests)
    }

    /// Table 1 column 3.
    pub fn prev_within_t_fraction(&self) -> f64 {
        Self::frac(self.prev_within_t, self.requests)
    }

    /// Table 1 column 4.
    pub fn updated_by_piggyback_fraction(&self) -> f64 {
        Self::frac(self.updated_by_piggyback, self.requests)
    }

    /// Mean elements per piggyback message.
    pub fn avg_piggyback_size(&self) -> f64 {
        Self::frac(self.piggybacked_elements, self.piggyback_messages)
    }

    /// Mean piggyback bytes per *response* (not per message), under `cost`.
    pub fn avg_piggyback_bytes_per_response(&self, cost: &WireCost) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let total = cost.volume_id_bytes * self.piggyback_messages
            + cost.element_bytes() * self.piggybacked_elements;
        total as f64 / self.requests as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingPrediction {
    at: Timestamp,
    fulfilled: bool,
}

#[derive(Default)]
struct SourceState {
    /// resource -> time of most recent piggyback mentioning it.
    last_predicted: FxHashMap<ResourceId, Timestamp>,
    /// resource -> time of its previous request.
    last_request: FxHashMap<ResourceId, Timestamp>,
    /// Active (deduplicated) prediction events.
    pending: FxHashMap<ResourceId, PendingPrediction>,
    rpv: Option<RpvList>,
    last_piggyback: Option<Timestamp>,
}

/// Set whole-trace access counts on `table`, for access filters that use
/// totals ("accessed less than 100 times in the entire trace").
pub fn precount_accesses<'a, I>(requests: I, table: &mut ResourceTable)
where
    I: IntoIterator<Item = &'a Request>,
{
    for req in requests {
        table.count_access(req.resource);
    }
}

/// Replay `requests` (time-ordered) and compute the evaluation metrics.
///
/// The provider's `record_access` is invoked for every request, so online
/// schemes (directory FIFOs) evolve exactly as a live server's would.
pub fn replay<V, I>(
    requests: I,
    table: &mut ResourceTable,
    provider: &mut V,
    cfg: &ReplayConfig,
) -> MetricsReport
where
    V: VolumeProvider,
    I: IntoIterator<Item = Request>,
{
    let mut report = MetricsReport::default();
    let mut sources: FxHashMap<SourceId, SourceState> = FxHashMap::default();
    let t_win = cfg.window;
    let c_win = cfg.update_window;
    // One reusable filter for the whole replay: only its `rpv` list varies
    // per request, and it is rewritten in place (base_filter.rpv is ignored,
    // as documented on [`ReplayConfig::base_filter`]). This keeps the hot
    // loop free of per-request clones of the filter's heap fields.
    let mut filter = cfg.base_filter.clone();
    filter.rpv.clear();

    for req in requests {
        let Request {
            time: now,
            source,
            resource: r,
        } = req;
        report.requests += 1;

        let state = sources.entry(source).or_insert_with(|| SourceState {
            rpv: cfg.rpv.map(|rc| RpvList::new(rc.max_len, rc.timeout)),
            ..Default::default()
        });

        // --- 1. Prediction / update metrics for this request -------------
        let was_predicted = state
            .last_predicted
            .get(&r)
            .is_some_and(|&tp| now.since(tp) <= t_win);
        if was_predicted {
            report.predicted += 1;
        }
        if let Some(p) = state.pending.get_mut(&r) {
            if now.since(p.at) <= t_win {
                p.fulfilled = true;
            }
        }
        let prev = state.last_request.get(&r).copied();
        if let Some(tp) = prev {
            let age = now.since(tp);
            if age <= c_win {
                report.prev_within_c += 1;
                if was_predicted {
                    report.predicted_and_prev_within_c += 1;
                }
                if age <= t_win {
                    report.prev_within_t += 1;
                } else if was_predicted {
                    report.updated_by_piggyback += 1;
                }
            }
        }
        state.last_request.insert(r, now);

        if cfg.count_accesses_online {
            table.count_access(r);
        }

        // --- 2. Build this request's filter and generate the piggyback ---
        let paced_out = cfg
            .min_piggyback_interval
            .is_some_and(|min| state.last_piggyback.is_some_and(|t| now.since(t) < min));
        if !paced_out {
            filter.rpv.clear();
            if let Some(rpv) = &mut state.rpv {
                rpv.write_ids(now, &mut filter.rpv);
            }
            if let Some(msg) = provider.piggyback(r, &filter, now, table) {
                report.piggyback_messages += 1;
                report.piggybacked_elements += msg.len() as u64;
                state.last_piggyback = Some(now);
                if let Some(rpv) = &mut state.rpv {
                    rpv.record(msg.volume, now);
                }
                for e in &msg.elements {
                    let s = e.resource;
                    state.last_predicted.insert(s, now);
                    match state.pending.get(&s) {
                        Some(p) if now.since(p.at) <= t_win => {
                            // Same prediction interval: counted once.
                        }
                        Some(p) => {
                            // Expired event: tally it, start a new one.
                            report.prediction_events += 1;
                            if p.fulfilled {
                                report.true_predictions += 1;
                            }
                            state.pending.insert(
                                s,
                                PendingPrediction {
                                    at: now,
                                    fulfilled: false,
                                },
                            );
                        }
                        None => {
                            state.pending.insert(
                                s,
                                PendingPrediction {
                                    at: now,
                                    fulfilled: false,
                                },
                            );
                        }
                    }
                }
            }
        }

        // --- 3. Server-side bookkeeping ----------------------------------
        provider.record_access(r, source, now, table);
    }

    // Flush outstanding prediction events.
    for state in sources.values() {
        for p in state.pending.values() {
            report.prediction_events += 1;
            if p.fulfilled {
                report.true_predictions += 1;
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{DirectoryVolumes, ProbabilityVolumesBuilder, SamplingMode};

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn req(t: u64, src: u32, r: ResourceId) -> Request {
        Request {
            time: ts(t),
            source: SourceId(src),
            resource: r,
        }
    }

    /// Two resources in one volume, accessed alternately by one source.
    fn simple_setup() -> (ResourceTable, DirectoryVolumes, ResourceId, ResourceId) {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(0);
        let a = table.register_path("/a.html", 100, ts(0));
        let b = table.register_path("/b.html", 100, ts(0));
        vols.assign(a, "/a.html");
        vols.assign(b, "/b.html");
        (table, vols, a, b)
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let (mut table, mut vols, _, _) = simple_setup();
        let report = replay(Vec::new(), &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.requests, 0);
        assert_eq!(report.fraction_predicted(), 0.0);
        assert_eq!(report.avg_piggyback_size(), 0.0);
    }

    #[test]
    fn piggyback_predicts_next_request() {
        let (mut table, mut vols, a, b) = simple_setup();
        // a at t=0 (no piggyback: volume FIFO empty), b at t=10 (response
        // piggybacks a), a at t=20 (predicted!).
        let trace = vec![req(0, 1, a), req(10, 1, b), req(20, 1, a)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.requests, 3);
        assert_eq!(report.predicted, 1, "third request was predicted");
        assert_eq!(report.piggyback_messages, 2, "responses to b and to a@20");
        // Prediction events: a predicted once (fulfilled), b predicted once
        // by the response to a@20 (never fulfilled).
        assert_eq!(report.prediction_events, 2);
        assert_eq!(report.true_predictions, 1);
        assert!((report.true_prediction_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prediction_expires_after_window() {
        let (mut table, mut vols, a, b) = simple_setup();
        let trace = vec![req(0, 1, a), req(10, 1, b), req(10 + 301, 1, a)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.predicted, 0, "prediction of a expired at T=300");
    }

    #[test]
    fn sources_are_isolated() {
        let (mut table, mut vols, a, b) = simple_setup();
        // Source 1 gets a piggyback predicting a; source 2 then requests a.
        let trace = vec![req(0, 1, a), req(10, 1, b), req(20, 2, a)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.predicted, 0);
    }

    #[test]
    fn duplicate_predictions_counted_once_per_interval() {
        let (mut table, mut vols, a, b) = simple_setup();
        // b requested twice quickly: a is piggybacked twice within T but
        // that is a single prediction event; a never arrives.
        let trace = vec![req(0, 1, a), req(10, 1, b), req(20, 1, b)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        // Events: prediction of a (unfulfilled, counted once)... plus the
        // response to a@0 predicted nothing (empty volume), and responses
        // to b@10/b@20 each piggyback a only (b is self-excluded).
        assert_eq!(report.prediction_events, 1);
        assert_eq!(report.true_predictions, 0);
    }

    #[test]
    fn update_fraction_decomposition() {
        let (mut table, mut vols, a, b) = simple_setup();
        let trace = vec![
            req(0, 1, a),
            req(10, 1, b),  // response piggybacks a
            req(400, 1, a), // a's prediction (t=10) expired; piggybacks b
            req(410, 1, b), // predicted 10s ago, prev occ 400s ago: col 4
            req(500, 1, a), // predicted (t=410), prev occ 100s ago: col 3
        ];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        // prev_within_c: a@400 (prev 0), b@410 (prev 10), a@500 (prev 400).
        assert_eq!(report.prev_within_c, 3);
        // prev_within_t: only a@500 (100 s).
        assert_eq!(report.prev_within_t, 1);
        // updated_by_piggyback: only b@410 (predicted, prev occ in (T, C]);
        // a@400's prediction expired, a@500's prev occ is within T.
        assert_eq!(report.updated_by_piggyback, 1);
        assert_eq!(report.predicted, 2, "b@410 and a@500");
        assert_eq!(report.predicted_and_prev_within_c, 2);

        // A minimal trace isolating column 4:
        let (mut table, mut vols, a, b) = simple_setup();
        let trace = vec![req(0, 1, a), req(350, 1, b), req(400, 1, a)];
        // a@400: prev occ at 0 (400s: in (T, C]); predicted at 350 (50s ago).
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.updated_by_piggyback, 1);
        assert_eq!(report.predicted_and_prev_within_c, 1);
        assert!((report.update_fraction_table1() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rpv_suppresses_redundant_piggybacks() {
        let (mut table, mut vols, a, b) = simple_setup();
        let trace = vec![req(0, 1, a), req(1, 1, b), req(2, 1, a), req(3, 1, b)];
        let base = replay(
            trace.clone(),
            &mut table,
            &mut vols,
            &ReplayConfig::default(),
        );
        // Every response after the first carries a piggyback.
        assert_eq!(base.piggyback_messages, 3);

        let (mut table, mut vols, _a, _b) = simple_setup();
        let cfg = ReplayConfig {
            rpv: Some(RpvConfig {
                max_len: 8,
                timeout: DurationMs::from_secs(60),
            }),
            ..Default::default()
        };
        let rpv = replay(trace, &mut table, &mut vols, &cfg);
        // Only the first piggyback goes out; the volume is then in the RPV
        // list for 60 s.
        assert_eq!(rpv.piggyback_messages, 1);
        // But the earlier piggyback still predicts the later requests.
        assert!(rpv.predicted >= 1);
    }

    #[test]
    fn min_interval_paces_piggybacks() {
        let (mut table, mut vols, a, b) = simple_setup();
        let trace = vec![req(0, 1, a), req(1, 1, b), req(2, 1, a), req(40, 1, b)];
        let cfg = ReplayConfig {
            min_piggyback_interval: Some(DurationMs::from_secs(30)),
            ..Default::default()
        };
        let report = replay(trace, &mut table, &mut vols, &cfg);
        // Piggyback at t=1 (response to b); t=2 suppressed (1s later);
        // t=40 allowed again.
        assert_eq!(report.piggyback_messages, 2);
    }

    #[test]
    fn online_access_counting_with_access_filter() {
        let (mut table, mut vols, a, b) = simple_setup();
        let cfg = ReplayConfig {
            base_filter: ProxyFilter::builder().min_access_count(3).build(),
            count_accesses_online: true,
            ..Default::default()
        };
        // a accessed 3 times before b: response to b piggybacks a.
        let trace = vec![
            req(0, 1, a),
            req(1, 1, a),
            req(2, 1, a),
            req(3, 1, b),
            req(4, 1, a),
        ];
        let report = replay(trace, &mut table, &mut vols, &cfg);
        // Only b@3 sends a piggyback: responses to a find either an empty
        // FIFO or only b, whose count (at most 1) fails the access filter;
        // a@4's candidate b has count 1 < 3, so it is suppressed too.
        assert_eq!(report.piggyback_messages, 1);
        // a@4 itself was predicted by the piggyback at t=3.
        assert_eq!(report.predicted, 1);
    }

    #[test]
    fn precount_matches_whole_trace() {
        let (mut table, _, a, b) = simple_setup();
        let trace = [req(0, 1, a), req(1, 1, a), req(2, 1, b)];
        precount_accesses(trace.iter(), &mut table);
        assert_eq!(table.meta(a).unwrap().access_count, 2);
        assert_eq!(table.meta(b).unwrap().access_count, 1);
    }

    #[test]
    fn wire_bytes_per_response_accounting() {
        let (mut table, mut vols, a, b) = simple_setup();
        // a@0 (no piggyback), b@1 (piggybacks a), a@2 (piggybacks b).
        let trace = vec![req(0, 1, a), req(1, 1, b), req(2, 1, a)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.piggyback_messages, 2);
        assert_eq!(report.piggybacked_elements, 2);
        let cost = crate::element::WireCost::default();
        // (2 msgs * 2B id + 2 elements * 66B) / 3 responses.
        let expected = (2 * 2 + 2 * 66) as f64 / 3.0;
        assert!((report.avg_piggyback_bytes_per_response(&cost) - expected).abs() < 1e-9);
    }

    #[test]
    fn custom_update_window() {
        let (mut table, mut vols, a, _b) = simple_setup();
        // Re-request 400 s later: inside a 500 s C-window, outside T.
        let trace = vec![req(0, 1, a), req(400, 1, a)];
        let cfg = ReplayConfig {
            update_window: DurationMs::from_secs(500),
            ..Default::default()
        };
        let report = replay(trace.clone(), &mut table, &mut vols, &cfg);
        assert_eq!(report.prev_within_c, 1);
        // With a 300 s C-window the previous occurrence is too old.
        let (mut table, mut vols, _, _) = simple_setup();
        let cfg = ReplayConfig {
            update_window: DurationMs::from_secs(300),
            ..Default::default()
        };
        let report = replay(trace, &mut table, &mut vols, &cfg);
        assert_eq!(report.prev_within_c, 0);
    }

    #[test]
    fn simultaneous_requests_process_in_order() {
        // Two requests at the same instant: the first's piggyback counts
        // as predicting the second (processing order is stream order).
        let (mut table, mut vols, a, b) = simple_setup();
        let trace = vec![req(0, 1, a), req(5, 1, b), req(5, 1, a)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        // b@5's response piggybacks a; a@5 (same instant, later in stream)
        // is predicted.
        assert_eq!(report.predicted, 1);
    }

    #[test]
    fn works_with_probability_volumes() {
        let mut table = ResourceTable::new();
        let a = table.register_path("/a", 10, ts(0));
        let b = table.register_path("/b", 10, ts(0));
        // Train: a implies b.
        let mut builder =
            ProbabilityVolumesBuilder::new(DurationMs::from_secs(300), 0.1, SamplingMode::Exact);
        for i in 0..5u64 {
            builder.observe(SourceId(1), a, ts(i * 10_000));
            builder.observe(SourceId(1), b, ts(i * 10_000 + 1));
        }
        let mut vols = builder.build(0.5);
        let trace = vec![req(100_000, 7, a), req(100_005, 7, b)];
        let report = replay(trace, &mut table, &mut vols, &ReplayConfig::default());
        assert_eq!(report.piggyback_messages, 1, "a's volume piggybacks b");
        assert_eq!(report.predicted, 1, "b was predicted");
        assert_eq!(report.true_predictions, 1);
        assert_eq!(report.prediction_events, 1);
    }
}
