//! A fast, non-cryptographic hasher for the hot counter maps.
//!
//! The volume builders key maps by dense `u32` ids ([`crate::types::SourceId`],
//! [`crate::types::ResourceId`]) and small tuples of them; SipHash's
//! DoS-resistance buys nothing there and costs a large fraction of the
//! builder's runtime. This is the FxHash multiply-rotate mix used by rustc
//! (public-domain algorithm): one wrapping multiply and a rotate per word,
//! with all integer writes funneled through `write_u64`.
//!
//! Only used for internal state keyed by trusted, dense ids — never for
//! anything fed by network input.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Default-constructible builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash word hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

/// One-shot FxHash of a single word — shard selection and cache-key
/// signatures want a plain `u64 -> u64` mix without `Hasher` ceremony.
#[inline]
pub fn fx_hash_u64(word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.add_to_hash(word);
    h.finish()
}

/// One-shot FxHash of a byte string (e.g. a canonical filter header).
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ResourceId, SourceId};
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&ResourceId(7)), hash_of(&ResourceId(7)));
        assert_ne!(hash_of(&ResourceId(7)), hash_of(&ResourceId(8)));
        assert_ne!(
            hash_of(&(SourceId(1), ResourceId(2))),
            hash_of(&(SourceId(2), ResourceId(1)))
        );
    }

    #[test]
    fn maps_work_with_tuple_keys() {
        let mut m: FxHashMap<(ResourceId, ResourceId), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((ResourceId(i), ResourceId(i * 3)), i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(ResourceId(41), ResourceId(123))), Some(&41));
        assert_eq!(m.get(&(ResourceId(41), ResourceId(122))), None);
    }

    #[test]
    fn byte_writes_cover_remainders() {
        // Strings exercise the chunked `write` path (7-byte tail).
        assert_ne!(hash_of(&"abcdefg"), hash_of(&"abcdefh"));
        assert_eq!(hash_of(&"abcdefg"), hash_of(&"abcdefg"));
    }
}
