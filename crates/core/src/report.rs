//! Proxy→server access reporting (paper Section 5, future work: "we are
//! studying ways for the proxy to piggyback information to the server
//! about accesses that are satisfied at the cache").
//!
//! A server only sees cache misses and validations, so its access counts
//! and pairwise statistics under-represent popular cached resources. The
//! proxy can piggyback a compact report of cache-served accesses onto its
//! next request via the `Piggy-report` header:
//!
//! ```text
//! Piggy-report: "/a/b.html" 3, "/icons/logo.gif" 12
//! ```
//!
//! i.e. `quoted-path SP hit-count` clauses. The server folds the counts
//! into its resource table (access filters) and, for recency-based
//! volumes, treats reported resources as just-accessed.

use crate::table::ResourceTable;
use crate::types::{SourceId, Timestamp};
use crate::volume::VolumeProvider;
use std::collections::HashMap;
use std::fmt;

/// Name of the request header carrying the report.
pub const PIGGY_REPORT_HEADER: &str = "Piggy-report";

/// Bound on clauses per report: a proxy with a hot cache must not blow up
/// request headers.
pub const MAX_REPORT_ENTRIES: usize = 64;

/// A proxy-side accumulator of cache-served accesses, drained into a
/// `Piggy-report` header on the next upstream request to that server.
#[derive(Debug, Default, Clone)]
pub struct HitReporter {
    counts: HashMap<String, u64>,
}

impl HitReporter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a cache hit served for `path`. Repeat hits on a pending
    /// path (the steady state between drains) only bump the counter — the
    /// path is owned once, on first sight.
    pub fn record_hit(&mut self, path: &str) {
        if let Some(count) = self.counts.get_mut(path) {
            *count += 1;
        } else {
            self.counts.insert(path.to_owned(), 1);
        }
    }

    /// Number of distinct paths pending.
    pub fn pending(&self) -> usize {
        self.counts.len()
    }

    /// Drain up to [`MAX_REPORT_ENTRIES`] of the highest-count entries into
    /// a header value; `None` when nothing is pending. Remaining entries
    /// stay queued for the next request.
    pub fn drain_header(&mut self) -> Option<String> {
        if self.counts.is_empty() {
            return None;
        }
        let mut entries: Vec<(String, u64)> = self.counts.drain().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rest = entries.split_off(entries.len().min(MAX_REPORT_ENTRIES));
        for (p, c) in rest {
            self.counts.insert(p, c);
        }
        let mut out = String::new();
        for (i, (path, count)) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(path);
            out.push_str("\" ");
            out.push_str(&count.to_string());
        }
        Some(out)
    }
}

/// One decoded report clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEntry {
    pub path: String,
    pub hits: u64,
}

/// Error decoding a `Piggy-report` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportParseError(pub String);

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad Piggy-report clause: {:?}", self.0)
    }
}

impl std::error::Error for ReportParseError {}

/// Parse a `Piggy-report` header value.
pub fn parse_report(value: &str) -> Result<Vec<ReportEntry>, ReportParseError> {
    let mut entries = Vec::new();
    let value = value.trim();
    if value.is_empty() {
        return Ok(entries);
    }
    for clause in value.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let bad = || ReportParseError(clause.to_owned());
        if !clause.starts_with('"') {
            return Err(bad());
        }
        let close = clause[1..].find('"').ok_or_else(bad)? + 1;
        let path = clause[1..close].to_owned();
        let hits: u64 = clause[close + 1..].trim().parse().map_err(|_| bad())?;
        if entries.len() >= MAX_REPORT_ENTRIES {
            return Err(ReportParseError("too many clauses".into()));
        }
        entries.push(ReportEntry { path, hits });
    }
    Ok(entries)
}

/// Server-side absorption: fold reported hits into access counts and
/// inform the volume provider (reported resources count as accessed by
/// the reporting source `now`, for recency-based schemes).
///
/// Unknown paths are ignored (a report can only describe resources the
/// server once served). Returns the number of absorbed entries.
pub fn absorb_report<V: VolumeProvider>(
    entries: &[ReportEntry],
    source: SourceId,
    now: Timestamp,
    table: &mut ResourceTable,
    volumes: &mut V,
) -> usize {
    let mut absorbed = 0;
    for e in entries {
        let Some(id) = table.lookup(&e.path) else {
            continue;
        };
        for _ in 0..e.hits.min(1_000) {
            table.count_access(id);
        }
        volumes.record_access(id, source, now, table);
        absorbed += 1;
    }
    absorbed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::DirectoryVolumes;

    #[test]
    fn reporter_drains_highest_counts_first() {
        let mut rep = HitReporter::new();
        for _ in 0..3 {
            rep.record_hit("/hot.html");
        }
        rep.record_hit("/cold.html");
        assert_eq!(rep.pending(), 2);
        let header = rep.drain_header().unwrap();
        assert_eq!(header, "\"/hot.html\" 3, \"/cold.html\" 1");
        assert_eq!(rep.pending(), 0);
        assert_eq!(rep.drain_header(), None);
    }

    #[test]
    fn reporter_respects_entry_cap() {
        let mut rep = HitReporter::new();
        for i in 0..(MAX_REPORT_ENTRIES + 10) {
            rep.record_hit(&format!("/r{i}.html"));
        }
        let header = rep.drain_header().unwrap();
        let parsed = parse_report(&header).unwrap();
        assert_eq!(parsed.len(), MAX_REPORT_ENTRIES);
        assert_eq!(rep.pending(), 10, "overflow stays queued");
    }

    #[test]
    fn report_round_trip() {
        let mut rep = HitReporter::new();
        rep.record_hit("/a/b.html");
        rep.record_hit("/a/b.html");
        rep.record_hit("/x.gif");
        let header = rep.drain_header().unwrap();
        let entries = parse_report(&header).unwrap();
        assert_eq!(
            entries,
            vec![
                ReportEntry {
                    path: "/a/b.html".into(),
                    hits: 2
                },
                ReportEntry {
                    path: "/x.gif".into(),
                    hits: 1
                },
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_report("/a 1").is_err(), "unquoted path");
        assert!(parse_report("\"/a\" x").is_err(), "non-numeric count");
        assert!(parse_report("\"/a").is_err(), "unterminated quote");
        assert_eq!(parse_report("").unwrap(), vec![]);
        assert_eq!(parse_report("  ").unwrap(), vec![]);
    }

    #[test]
    fn absorb_updates_counts_and_volumes() {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(1);
        let a = table.register_path("/d/a.html", 100, Timestamp::ZERO);
        let b = table.register_path("/d/b.html", 100, Timestamp::ZERO);
        vols.assign(a, "/d/a.html");
        vols.assign(b, "/d/b.html");

        let entries = parse_report("\"/d/a.html\" 5, \"/unknown\" 2").unwrap();
        let absorbed = absorb_report(
            &entries,
            SourceId(9),
            Timestamp::from_secs(10),
            &mut table,
            &mut vols,
        );
        assert_eq!(absorbed, 1, "unknown path ignored");
        assert_eq!(table.meta(a).unwrap().access_count, 5);

        // The reported resource is now in its volume's FIFO: a request for
        // b piggybacks a even though the server never saw a directly.
        let msg = vols
            .piggyback(
                b,
                &crate::filter::ProxyFilter::default(),
                Timestamp::from_secs(11),
                &table,
            )
            .expect("piggyback from reported access");
        assert_eq!(msg.elements[0].resource, a);
    }

    #[test]
    fn absorb_caps_pathological_counts() {
        let mut table = ResourceTable::new();
        let mut vols = DirectoryVolumes::new(0);
        let a = table.register_path("/a", 1, Timestamp::ZERO);
        vols.assign(a, "/a");
        let entries = vec![ReportEntry {
            path: "/a".into(),
            hits: u64::MAX,
        }];
        absorb_report(
            &entries,
            SourceId(1),
            Timestamp::ZERO,
            &mut table,
            &mut vols,
        );
        assert_eq!(table.meta(a).unwrap().access_count, 1_000);
    }
}
