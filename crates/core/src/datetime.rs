//! Civil date/time conversions for HTTP and log formats.
//!
//! Trace processing uses relative [`Timestamp`]s; wire formats need real
//! dates. This module converts Unix seconds to civil time (proleptic
//! Gregorian, UTC only) and formats/parses:
//!
//! * RFC 1123 HTTP-dates — `Sun, 06 Nov 1994 08:49:37 GMT`;
//! * Common Log Format dates — `06/Nov/1994:08:49:37 +0000`.
//!
//! The days↔civil algorithms are the standard Howard Hinnant constructions.

use crate::types::Timestamp;

/// Default Unix time corresponding to trace [`Timestamp::ZERO`]:
/// 1998-01-28 00:00:00 UTC — contemporaneous with the paper's logs.
pub const DEFAULT_TRACE_EPOCH_UNIX: i64 = 885_945_600;

/// Convert a trace timestamp to Unix seconds under `epoch_unix`.
pub fn unix_from_timestamp(t: Timestamp, epoch_unix: i64) -> i64 {
    epoch_unix + t.as_secs() as i64
}

/// Convert Unix seconds to a trace timestamp under `epoch_unix`
/// (saturating at zero for pre-epoch instants).
pub fn timestamp_from_unix(unix: i64, epoch_unix: i64) -> Timestamp {
    Timestamp::from_secs((unix - epoch_unix).max(0) as u64)
}

/// A broken-down UTC civil time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    pub year: i32,
    /// 1-based month.
    pub month: u32,
    /// 1-based day of month.
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: u32,
}

/// Days since 1970-01-01 for a civil date (Hinnant's `days_from_civil`).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for days since 1970-01-01 (Hinnant's `civil_from_days`).
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Break Unix seconds into civil UTC time.
pub fn civil_from_unix(unix: i64) -> Civil {
    let days = unix.div_euclid(86_400);
    let secs = unix.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    Civil {
        year,
        month,
        day,
        hour: (secs / 3600) as u32,
        minute: (secs / 60 % 60) as u32,
        second: (secs % 60) as u32,
    }
}

/// Unix seconds for a civil UTC time.
pub fn unix_from_civil(c: Civil) -> i64 {
    days_from_civil(c.year, c.month, c.day) * 86_400
        + i64::from(c.hour) * 3600
        + i64::from(c.minute) * 60
        + i64::from(c.second)
}

/// Day of week for Unix seconds, 0 = Sunday.
pub fn weekday_from_unix(unix: i64) -> u32 {
    // 1970-01-01 was a Thursday (4).
    ((unix.div_euclid(86_400) + 4).rem_euclid(7)) as u32
}

const DAY_NAMES: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn month_from_name(s: &str) -> Option<u32> {
    MONTH_NAMES
        .iter()
        .position(|m| m.eq_ignore_ascii_case(s))
        .map(|i| i as u32 + 1)
}

/// Unix seconds wrapped as a lazily-formatted RFC 1123 HTTP-date.
///
/// `Display` writes `Sun, 06 Nov 1994 08:49:37 GMT` directly into the
/// destination — `write!(buf, "{}", Rfc1123(unix))` formats an HTTP-date
/// into a reused buffer without the intermediate `String` that
/// [`format_rfc1123`] allocates, which keeps the proxy's cached-hit
/// response path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rfc1123(pub i64);

impl std::fmt::Display for Rfc1123 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = civil_from_unix(self.0);
        write!(
            f,
            "{}, {:02} {} {:04} {:02}:{:02}:{:02} GMT",
            DAY_NAMES[weekday_from_unix(self.0) as usize],
            c.day,
            MONTH_NAMES[(c.month - 1) as usize],
            c.year,
            c.hour,
            c.minute,
            c.second
        )
    }
}

/// Format Unix seconds as an RFC 1123 HTTP-date:
/// `Sun, 06 Nov 1994 08:49:37 GMT`.
pub fn format_rfc1123(unix: i64) -> String {
    Rfc1123(unix).to_string()
}

/// Parse an RFC 1123 HTTP-date into Unix seconds. Returns `None` on any
/// syntactic deviation (we do not accept the obsolete RFC 850 or asctime
/// forms).
pub fn parse_rfc1123(s: &str) -> Option<i64> {
    // "Sun, 06 Nov 1994 08:49:37 GMT"
    let s = s.trim();
    let rest = s.split_once(", ").map(|(_, r)| r)?;
    let mut parts = rest.split_ascii_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = month_from_name(parts.next()?)?;
    let year: i32 = parts.next()?.parse().ok()?;
    let hms = parts.next()?;
    let tz = parts.next()?;
    if tz != "GMT" || parts.next().is_some() {
        return None;
    }
    let (h, m, sec) = parse_hms(hms)?;
    if !valid_civil(year, month, day, h, m, sec) {
        return None;
    }
    Some(unix_from_civil(Civil {
        year,
        month,
        day,
        hour: h,
        minute: m,
        second: sec,
    }))
}

/// Format Unix seconds as a CLF timestamp body:
/// `06/Nov/1994:08:49:37 +0000` (brackets added by the log writer).
pub fn format_clf(unix: i64) -> String {
    let c = civil_from_unix(unix);
    format!(
        "{:02}/{}/{:04}:{:02}:{:02}:{:02} +0000",
        c.day,
        MONTH_NAMES[(c.month - 1) as usize],
        c.year,
        c.hour,
        c.minute,
        c.second
    )
}

/// Parse a CLF timestamp body (the part between `[` and `]`).
pub fn parse_clf(s: &str) -> Option<i64> {
    // "06/Nov/1994:08:49:37 +0000"
    let (datetime, tz) = s.trim().split_once(' ')?;
    let offset = parse_tz_offset(tz)?;
    let mut it = datetime.splitn(4, &['/', ':'][..]);
    let day: u32 = it.next()?.parse().ok()?;
    let month = month_from_name(it.next()?)?;
    let year: i32 = it.next()?.parse().ok()?;
    let (h, m, sec) = parse_hms(it.next()?)?;
    if !valid_civil(year, month, day, h, m, sec) {
        return None;
    }
    Some(
        unix_from_civil(Civil {
            year,
            month,
            day,
            hour: h,
            minute: m,
            second: sec,
        }) - offset,
    )
}

fn parse_hms(s: &str) -> Option<(u32, u32, u32)> {
    let mut it = s.split(':');
    let h: u32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let sec: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((h, m, sec))
}

fn parse_tz_offset(tz: &str) -> Option<i64> {
    if tz.len() != 5 {
        return None;
    }
    let sign = match &tz[..1] {
        "+" => 1,
        "-" => -1,
        _ => return None,
    };
    let h: i64 = tz[1..3].parse().ok()?;
    let m: i64 = tz[3..5].parse().ok()?;
    Some(sign * (h * 3600 + m * 60))
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn valid_civil(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> bool {
    (1..=12).contains(&month)
        && day >= 1
        && day <= days_in_month(year, month)
        && h < 24
        && m < 60
        && s < 61
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_round_trip_across_years() {
        for &unix in &[
            0i64,
            886_032_000, // 1998-01-28
            951_827_696, // leap year 2000
            1_700_000_000,
            -86_400, // 1969-12-31
        ] {
            let c = civil_from_unix(unix);
            assert_eq!(unix_from_civil(c), unix, "round trip for {unix}");
        }
    }

    #[test]
    fn known_dates() {
        // RFC 2616's example date.
        let c = civil_from_unix(784_111_777);
        assert_eq!((c.year, c.month, c.day), (1994, 11, 6));
        assert_eq!((c.hour, c.minute, c.second), (8, 49, 37));
        assert_eq!(weekday_from_unix(784_111_777), 0, "a Sunday");
        // The trace epoch is 1998-01-28, a Wednesday.
        let e = civil_from_unix(DEFAULT_TRACE_EPOCH_UNIX);
        assert_eq!((e.year, e.month, e.day), (1998, 1, 28));
        assert_eq!(weekday_from_unix(DEFAULT_TRACE_EPOCH_UNIX), 3);
    }

    #[test]
    fn rfc1123_format_matches_spec_example() {
        assert_eq!(format_rfc1123(784_111_777), "Sun, 06 Nov 1994 08:49:37 GMT");
    }

    #[test]
    fn rfc1123_round_trip() {
        for &unix in &[0i64, 784_111_777, DEFAULT_TRACE_EPOCH_UNIX, 1_234_567_890] {
            assert_eq!(parse_rfc1123(&format_rfc1123(unix)), Some(unix));
        }
    }

    #[test]
    fn rfc1123_rejects_malformed() {
        assert_eq!(parse_rfc1123("Sun 06 Nov 1994 08:49:37 GMT"), None);
        assert_eq!(parse_rfc1123("Sun, 06 Xxx 1994 08:49:37 GMT"), None);
        assert_eq!(parse_rfc1123("Sun, 06 Nov 1994 08:49:37 PST"), None);
        assert_eq!(parse_rfc1123("Sun, 31 Feb 1994 08:49:37 GMT"), None);
        assert_eq!(parse_rfc1123(""), None);
    }

    #[test]
    fn clf_round_trip_utc() {
        for &unix in &[0i64, 784_111_777, DEFAULT_TRACE_EPOCH_UNIX] {
            assert_eq!(parse_clf(&format_clf(unix)), Some(unix));
        }
        assert_eq!(format_clf(784_111_777), "06/Nov/1994:08:49:37 +0000");
    }

    #[test]
    fn clf_parses_nonzero_offsets() {
        // 08:49:37 at -0500 is 13:49:37 UTC.
        let east = parse_clf("06/Nov/1994:08:49:37 -0500").unwrap();
        let utc = parse_clf("06/Nov/1994:13:49:37 +0000").unwrap();
        assert_eq!(east, utc);
        assert_eq!(parse_clf("06/Nov/1994:08:49:37 0500"), None);
    }

    #[test]
    fn timestamp_epoch_conversions() {
        let t = Timestamp::from_secs(100);
        let unix = unix_from_timestamp(t, DEFAULT_TRACE_EPOCH_UNIX);
        assert_eq!(unix, DEFAULT_TRACE_EPOCH_UNIX + 100);
        assert_eq!(timestamp_from_unix(unix, DEFAULT_TRACE_EPOCH_UNIX), t);
        // Pre-epoch saturates to zero.
        assert_eq!(
            timestamp_from_unix(DEFAULT_TRACE_EPOCH_UNIX - 5, DEFAULT_TRACE_EPOCH_UNIX),
            Timestamp::ZERO
        );
    }

    #[test]
    fn leap_february() {
        assert!(valid_civil(2000, 2, 29, 0, 0, 0));
        assert!(!valid_civil(1900, 2, 29, 0, 0, 0));
        assert!(valid_civil(1996, 2, 29, 0, 0, 0));
    }
}
