//! Server-side piggybacking façade.
//!
//! [`PiggybackServer`] glues together the resource table and a volume
//! provider, implementing the server half of the protocol in Section 2.1:
//! record each access, and on each response construct a piggyback message
//! honouring the proxy's filter.

use crate::element::PiggybackMessage;
use crate::filter::ProxyFilter;
use crate::table::ResourceTable;
use crate::types::{ContentType, ResourceId, SourceId, Timestamp, VolumeId};
use crate::volume::VolumeProvider;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing a server's piggybacking activity.
///
/// Conservation invariant (exact once the server is quiescent): every
/// recorded request resolves to exactly one piggyback outcome, i.e.
///
/// ```text
/// requests == piggybacks_sent + suppressed + no_filter
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests recorded.
    pub requests: u64,
    /// Responses that carried a piggyback message.
    pub piggybacks_sent: u64,
    /// Total elements across all piggyback messages.
    pub elements_sent: u64,
    /// Piggyback attempts suppressed by the filter (disabled, RPV, or
    /// nothing surviving the content filters).
    pub suppressed: u64,
    /// Requests that carried no parseable `Piggy-filter` header, so no
    /// piggyback was attempted at all.
    pub no_filter: u64,
}

impl ServerStats {
    /// Mean elements per sent piggyback message (the paper's "average
    /// piggyback size").
    pub fn avg_piggyback_size(&self) -> f64 {
        if self.piggybacks_sent == 0 {
            0.0
        } else {
            self.elements_sent as f64 / self.piggybacks_sent as f64
        }
    }

    /// The sum of terminal piggyback outcomes; equals `requests` when the
    /// server is quiescent (see the conservation invariant above).
    pub fn outcomes(&self) -> u64 {
        self.piggybacks_sent + self.suppressed + self.no_filter
    }
}

/// Atomic accumulator behind [`ServerStats`]: relaxed adds only, so the
/// serving path records statistics without `&mut` access or a mutex.
/// Relaxed ordering suffices because each counter is independent; the
/// cross-counter conservation invariant is exact once the server is
/// quiescent, which is when tests read it.
#[derive(Debug, Default)]
pub struct AtomicServerStats {
    pub requests: AtomicU64,
    pub piggybacks_sent: AtomicU64,
    pub elements_sent: AtomicU64,
    pub suppressed: AtomicU64,
    pub no_filter: AtomicU64,
}

impl AtomicServerStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed read of every counter into a plain snapshot.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            piggybacks_sent: self.piggybacks_sent.load(Ordering::Relaxed),
            elements_sent: self.elements_sent.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            no_filter: self.no_filter.load(Ordering::Relaxed),
        }
    }

    /// Account one request that resolved to a piggyback decision: `Some`
    /// with the element count, or `None` for a suppressed attempt.
    pub fn count_piggyback_outcome(&self, elements: Option<u64>) {
        match elements {
            Some(n) => {
                self.piggybacks_sent.fetch_add(1, Ordering::Relaxed);
                self.elements_sent.fetch_add(n, Ordering::Relaxed);
            }
            None => {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A piggybacking origin server: resource metadata plus a volume scheme.
#[derive(Debug)]
pub struct PiggybackServer<V: VolumeProvider> {
    table: ResourceTable,
    volumes: V,
    stats: AtomicServerStats,
}

impl<V: VolumeProvider> PiggybackServer<V> {
    pub fn new(volumes: V) -> Self {
        PiggybackServer {
            table: ResourceTable::new(),
            volumes,
            stats: AtomicServerStats::new(),
        }
    }

    /// Register a resource with explicit metadata, assigning it to a volume.
    pub fn register(
        &mut self,
        path: &str,
        size: u64,
        last_modified: Timestamp,
        content_type: ContentType,
    ) -> ResourceId {
        let id = self.table.register(path, size, last_modified, content_type);
        let owned = self.table.path(id).expect("just registered").to_owned();
        self.volumes.assign(id, &owned);
        id
    }

    /// Register inferring the content type from the path extension.
    pub fn register_path(&mut self, path: &str, size: u64, last_modified: Timestamp) -> ResourceId {
        self.register(path, size, last_modified, ContentType::from_path(path))
    }

    /// Record a request for `resource` (updates access counts and volume
    /// recency state).
    pub fn record_access(&mut self, resource: ResourceId, source: SourceId, now: Timestamp) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.table.count_access(resource);
        self.volumes
            .record_access(resource, source, now, &self.table);
    }

    /// Mark `resource` modified at `when`.
    pub fn touch_modified(&mut self, resource: ResourceId, when: Timestamp) {
        self.table.touch_modified(resource, when);
    }

    /// Build the piggyback for a response to `resource` under `filter`.
    ///
    /// Statistics are kept in relaxed atomics, so this needs only `&self`:
    /// callers that share the server behind a lock can build piggybacks
    /// from a read guard.
    pub fn piggyback(
        &self,
        resource: ResourceId,
        filter: &ProxyFilter,
        now: Timestamp,
    ) -> Option<PiggybackMessage> {
        let msg = self.volumes.piggyback(resource, filter, now, &self.table);
        self.stats
            .count_piggyback_outcome(msg.as_ref().map(|m| m.len() as u64));
        msg
    }

    /// Account a request that carried no parseable `Piggy-filter` header
    /// (the third conservation outcome besides sent and suppressed).
    pub fn count_no_filter(&self) {
        self.stats.no_filter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the access *and* build the piggyback, the full per-request
    /// server flow of Section 2.1.
    pub fn handle_request(
        &mut self,
        resource: ResourceId,
        source: SourceId,
        filter: &ProxyFilter,
        now: Timestamp,
    ) -> Option<PiggybackMessage> {
        self.record_access(resource, source, now);
        self.piggyback(resource, filter, now)
    }

    /// Absorb a proxy's `Piggy-report` of cache-served accesses
    /// (Section 5 extension): folds hit counts into access statistics and
    /// volume recency. Returns the number of entries absorbed.
    pub fn absorb_report(
        &mut self,
        entries: &[crate::report::ReportEntry],
        source: SourceId,
        now: Timestamp,
    ) -> usize {
        crate::report::absorb_report(entries, source, now, &mut self.table, &mut self.volumes)
    }

    /// The volume containing `resource`.
    pub fn volume_of(&self, resource: ResourceId) -> Option<VolumeId> {
        self.volumes.volume_of(resource)
    }

    pub fn table(&self) -> &ResourceTable {
        self.table_ref()
    }

    fn table_ref(&self) -> &ResourceTable {
        &self.table
    }

    pub fn table_mut(&mut self) -> &mut ResourceTable {
        &mut self.table
    }

    pub fn volumes(&self) -> &V {
        &self.volumes
    }

    pub fn volumes_mut(&mut self) -> &mut V {
        &mut self.volumes
    }

    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::DirectoryVolumes;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn end_to_end_server_flow() {
        let mut server = PiggybackServer::new(DirectoryVolumes::new(1));
        let a = server.register_path("/docs/a.html", 1000, ts(1));
        let b = server.register_path("/docs/b.html", 2000, ts(1));
        let c = server.register_path("/img/c.gif", 3000, ts(1));

        let src = SourceId(1);
        assert!(server
            .handle_request(a, src, &ProxyFilter::default(), ts(10))
            .is_none());
        assert!(server
            .handle_request(b, src, &ProxyFilter::default(), ts(11))
            .is_some());
        // c is in a different 1-level volume.
        let msg = server.handle_request(c, src, &ProxyFilter::default(), ts(12));
        assert!(msg.is_none());

        let stats = server.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.piggybacks_sent, 1);
        assert_eq!(stats.elements_sent, 1);
        assert_eq!(stats.suppressed, 2);
        assert!((stats.avg_piggyback_size() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn touch_modified_reflected_in_piggyback() {
        let mut server = PiggybackServer::new(DirectoryVolumes::new(0));
        let a = server.register_path("/a", 10, ts(1));
        let b = server.register_path("/b", 10, ts(1));
        server.record_access(b, SourceId(1), ts(2));
        server.touch_modified(b, ts(50));
        let msg = server
            .handle_request(a, SourceId(1), &ProxyFilter::default(), ts(60))
            .unwrap();
        assert_eq!(msg.elements[0].resource, b);
        assert_eq!(msg.elements[0].last_modified, ts(50));
    }

    #[test]
    fn stats_with_no_piggybacks() {
        let server: PiggybackServer<DirectoryVolumes> =
            PiggybackServer::new(DirectoryVolumes::new(1));
        assert_eq!(server.stats().avg_piggyback_size(), 0.0);
    }

    #[test]
    fn no_filter_counter_closes_conservation() {
        let mut server = PiggybackServer::new(DirectoryVolumes::new(0));
        let a = server.register_path("/a", 10, ts(1));
        let b = server.register_path("/b", 10, ts(1));
        server.record_access(a, SourceId(1), ts(2));
        server.record_access(b, SourceId(1), ts(3));
        // One request resolves to a piggyback, one had no filter header.
        assert!(server
            .piggyback(b, &ProxyFilter::default(), ts(3))
            .is_some());
        server.count_no_filter();
        let stats = server.stats();
        assert_eq!(stats.no_filter, 1);
        assert_eq!(stats.outcomes(), stats.requests);
    }

    #[test]
    fn atomic_stats_conserve_under_threads() {
        use std::sync::Arc;
        let s = Arc::new(AtomicServerStats::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        s.requests.fetch_add(1, Ordering::Relaxed);
                        match (t + i) % 3 {
                            0 => s.count_piggyback_outcome(Some(4)),
                            1 => s.count_piggyback_outcome(None),
                            _ => {
                                s.no_filter.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 80_000);
        assert_eq!(snap.outcomes(), snap.requests);
        assert_eq!(snap.elements_sent, snap.piggybacks_sent * 4);
    }
}
