//! Foundational identifier and time types shared across the workspace.
//!
//! All trace processing uses a compact millisecond [`Timestamp`] relative to
//! an arbitrary epoch (trace start), interned [`ResourceId`]s for URL paths,
//! and small integer ids for volumes and request sources (proxies/clients).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Milliseconds since an arbitrary trace epoch.
///
/// The paper's logs have one-second granularity, but the synthetic
/// generators emit sub-second spacing for embedded-image bursts (Figure 1
/// reports a 0.9 s *median* interarrival at directory level 0), so we keep
/// millisecond resolution throughout.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The trace epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Build from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1000)
    }

    /// Build from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> DurationMs {
        DurationMs(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at the numeric range.
    pub fn after(self, d: DurationMs) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// `self - d`, saturating at the epoch.
    pub fn before(self, d: DurationMs) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

/// A span of time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DurationMs(pub u64);

impl DurationMs {
    pub const ZERO: DurationMs = DurationMs(0);

    pub const fn from_secs(secs: u64) -> Self {
        DurationMs(secs * 1000)
    }

    pub const fn from_millis(ms: u64) -> Self {
        DurationMs(ms)
    }

    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<DurationMs> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: DurationMs) -> Timestamp {
        self.after(rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = DurationMs;
    fn sub(self, rhs: Timestamp) -> DurationMs {
        self.since(rhs)
    }
}

impl fmt::Display for DurationMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

/// Interned identifier for a resource (URL path) at one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier for a volume at one server.
///
/// The wire format (Section 2.3 of the paper) allots two bytes, "allowing up
/// to 32767 volumes per server"; in memory we keep a full `u32` so that
/// probability-based volume sets (one volume per resource) are not capped,
/// and enforce the wire bound only at encoding time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VolumeId(pub u32);

impl VolumeId {
    /// Largest id encodable in the paper's two-byte wire field.
    pub const WIRE_MAX: u32 = 32767;

    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this id fits the two-byte wire encoding.
    pub const fn wire_encodable(self) -> bool {
        self.0 <= Self::WIRE_MAX
    }
}

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier for a request source as seen by a server: a proxy or client
/// (the paper's pseudo-proxy traces key on source IP address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

impl SourceId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Identifier for a server in a multi-server client trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl ServerId {
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// Coarse content classes used by proxy filters and volume partitioning.
///
/// The paper motivates filtering by content type (e.g. proxies for
/// low-bandwidth wireless clients disable image transfer); we model the
/// classes that matter for those policies rather than full MIME types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ContentType {
    Html,
    Image,
    Text,
    Binary,
    Other,
}

impl ContentType {
    pub const ALL: [ContentType; 5] = [
        ContentType::Html,
        ContentType::Image,
        ContentType::Text,
        ContentType::Binary,
        ContentType::Other,
    ];

    /// Stable small index, used for partitioned volume FIFOs.
    pub const fn index(self) -> usize {
        match self {
            ContentType::Html => 0,
            ContentType::Image => 1,
            ContentType::Text => 2,
            ContentType::Binary => 3,
            ContentType::Other => 4,
        }
    }

    /// Token used in the `Piggy-filter` header syntax.
    pub const fn token(self) -> &'static str {
        match self {
            ContentType::Html => "html",
            ContentType::Image => "image",
            ContentType::Text => "text",
            ContentType::Binary => "binary",
            ContentType::Other => "other",
        }
    }

    /// Inverse of [`ContentType::token`].
    pub fn from_token(s: &str) -> Option<ContentType> {
        match s {
            "html" => Some(ContentType::Html),
            "image" => Some(ContentType::Image),
            "text" => Some(ContentType::Text),
            "binary" => Some(ContentType::Binary),
            "other" => Some(ContentType::Other),
            _ => None,
        }
    }

    /// Guess a class from a path extension, the way a 1998 server would.
    pub fn from_path(path: &str) -> ContentType {
        let ext = path.rsplit('.').next().unwrap_or("");
        match ext {
            "html" | "htm" | "shtml" => ContentType::Html,
            "gif" | "jpg" | "jpeg" | "png" | "xbm" | "bmp" => ContentType::Image,
            "txt" | "ps" | "pdf" | "css" => ContentType::Text,
            "zip" | "gz" | "tar" | "exe" | "class" | "jar" => ContentType::Binary,
            _ => ContentType::Other,
        }
    }
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A set of [`ContentType`]s, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContentTypeSet(u8);

impl ContentTypeSet {
    /// The empty set.
    pub const EMPTY: ContentTypeSet = ContentTypeSet(0);
    /// The set of all classes.
    pub const ALL: ContentTypeSet = ContentTypeSet(0b11111);

    pub fn new<I: IntoIterator<Item = ContentType>>(types: I) -> Self {
        let mut s = Self::EMPTY;
        for t in types {
            s.insert(t);
        }
        s
    }

    pub fn insert(&mut self, t: ContentType) {
        self.0 |= 1 << t.index();
    }

    pub fn remove(&mut self, t: ContentType) {
        self.0 &= !(1 << t.index());
    }

    pub fn contains(self, t: ContentType) -> bool {
        self.0 & (1 << t.index()) != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn iter(self) -> impl Iterator<Item = ContentType> {
        ContentType::ALL
            .into_iter()
            .filter(move |t| self.contains(*t))
    }
}

impl Default for ContentTypeSet {
    /// Defaults to all classes (no restriction).
    fn default() -> Self {
        Self::ALL
    }
}

impl FromIterator<ContentType> for ContentTypeSet {
    fn from_iter<I: IntoIterator<Item = ContentType>>(iter: I) -> Self {
        Self::new(iter)
    }
}

/// Per-resource metadata maintained by the server: the fields a piggyback
/// element carries (size, Last-Modified) plus the access count used by
/// access-frequency filters (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceMeta {
    /// Body size in bytes.
    pub size: u64,
    /// Last modification time of the server's copy.
    pub last_modified: Timestamp,
    /// Coarse content class.
    pub content_type: ContentType,
    /// Number of requests the server has seen for this resource.
    pub access_count: u64,
}

impl ResourceMeta {
    pub fn new(size: u64, last_modified: Timestamp, content_type: ContentType) -> Self {
        ResourceMeta {
            size,
            last_modified,
            content_type,
            access_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t.as_millis(), 10_000);
        assert_eq!(t.as_secs(), 10);
        let later = t + DurationMs::from_secs(5);
        assert_eq!(later, Timestamp::from_secs(15));
        assert_eq!(later - t, DurationMs::from_secs(5));
        // Saturating subtraction: earlier - later is zero, not underflow.
        assert_eq!(t - later, DurationMs::ZERO);
        assert_eq!(t.before(DurationMs::from_secs(100)), Timestamp::ZERO);
    }

    #[test]
    fn timestamp_display() {
        assert_eq!(Timestamp::from_millis(1234).to_string(), "1.234s");
        assert_eq!(DurationMs::from_millis(50).to_string(), "0.050s");
    }

    #[test]
    fn duration_fractional_seconds() {
        assert!((DurationMs::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn content_type_token_round_trip() {
        for t in ContentType::ALL {
            assert_eq!(ContentType::from_token(t.token()), Some(t));
        }
        assert_eq!(ContentType::from_token("bogus"), None);
    }

    #[test]
    fn content_type_from_path() {
        assert_eq!(ContentType::from_path("/a/b.html"), ContentType::Html);
        assert_eq!(ContentType::from_path("/img/logo.gif"), ContentType::Image);
        assert_eq!(ContentType::from_path("/papers/p.ps"), ContentType::Text);
        assert_eq!(ContentType::from_path("/dist/pkg.tar"), ContentType::Binary);
        assert_eq!(ContentType::from_path("/cgi/script"), ContentType::Other);
    }

    #[test]
    fn content_type_set_ops() {
        let mut s = ContentTypeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(ContentType::Html);
        s.insert(ContentType::Image);
        assert!(s.contains(ContentType::Html));
        assert!(!s.contains(ContentType::Text));
        s.remove(ContentType::Html);
        assert!(!s.contains(ContentType::Html));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![ContentType::Image]);
        assert_eq!(ContentTypeSet::default(), ContentTypeSet::ALL);
    }

    #[test]
    fn volume_id_wire_bound() {
        assert!(VolumeId(0).wire_encodable());
        assert!(VolumeId(32767).wire_encodable());
        assert!(!VolumeId(32768).wire_encodable());
    }
}
