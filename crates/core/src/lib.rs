//! # piggyback-core
//!
//! The primary contribution of *"Improving End-to-End Performance of the
//! Web Using Server Volumes and Proxy Filters"* (Cohen, Krishnamurthy,
//! Rexford — SIGCOMM 1998): server **volumes**, proxy **filters**, and
//! **piggyback** generation, plus the trace-replay metrics engine used in
//! the paper's evaluation.
//!
//! ## Architecture
//!
//! * [`types`] / [`intern`] / [`table`] — identifiers, timestamps, URL-path
//!   interning, and the server's resource table.
//! * [`element`] — piggyback messages and the Section 2.3 wire-cost model.
//! * [`filter`] — the `Piggy-filter` request header: enable bit, `maxpiggy`,
//!   RPV list, access/probability/size/content-type thresholds.
//! * [`rpv`] / [`freq`] — the proxy's transient pacing state: recently
//!   piggybacked volume lists and frequency-control policies.
//! * [`volume`] — volume construction: [`volume::DirectoryVolumes`]
//!   (Section 3.2) and [`volume::ProbabilityVolumes`] with sampling,
//!   effectiveness thinning, and combined (same-prefix) restriction
//!   (Section 3.3).
//! * [`server`] / [`proxy`] — the two protocol endpoints of Section 2.1.
//! * [`wire`] — the `P-volume` trailer header encoding.
//! * [`metrics`] — the replay engine computing fraction predicted, true
//!   prediction fraction, update fraction, and piggyback sizes.
//!
//! ## Example
//!
//! ```
//! use piggyback_core::prelude::*;
//!
//! let mut server = PiggybackServer::new(DirectoryVolumes::new(1));
//! let page = server.register_path("/news/index.html", 4096, Timestamp::from_secs(0));
//! let logo = server.register_path("/news/logo.gif", 1024, Timestamp::from_secs(0));
//!
//! server.record_access(logo, SourceId(9), Timestamp::from_secs(100));
//! let filter = ProxyFilter::builder().max_piggy(10).build();
//! let msg = server
//!     .handle_request(page, SourceId(9), &filter, Timestamp::from_secs(101))
//!     .expect("logo is piggybacked on the page response");
//! assert_eq!(msg.elements[0].resource, logo);
//! ```

pub mod datetime;
pub mod element;
pub mod fasthash;
pub mod filter;
pub mod freq;
pub mod intern;
pub mod metrics;
pub mod piggy_cache;
pub mod proxy;
pub mod report;
pub mod rpv;
pub mod server;
pub mod snapshot;
pub mod striped;
pub mod table;
pub mod types;
pub mod volume;
pub mod wire;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::element::{PiggybackElement, PiggybackMessage, WireCost};
    pub use crate::filter::{ProxyFilter, ProxyFilterBuilder, PIGGY_FILTER_HEADER};
    pub use crate::freq::{
        AdaptiveInterval, AlwaysEnable, FrequencyControl, MinInterval, RandomBit,
    };
    pub use crate::intern::{directory_prefix, PathInterner};
    pub use crate::metrics::{
        precount_accesses, replay, MetricsReport, ReplayConfig, Request, RpvConfig,
    };
    pub use crate::piggy_cache::{CacheStats, PiggybackCache};
    pub use crate::proxy::{classify_element, ClientConfig, ElementAction, PiggybackClient};
    pub use crate::report::{
        absorb_report, parse_report, HitReporter, ReportEntry, PIGGY_REPORT_HEADER,
    };
    pub use crate::rpv::{RpvList, RpvTable};
    pub use crate::server::{AtomicServerStats, PiggybackServer, ServerStats};
    pub use crate::snapshot::{
        AccessState, FrozenVolumes, OriginSnapshot, SnapshotCell, StaticDirectoryVolumes,
    };
    pub use crate::striped::StripedHistories;
    pub use crate::table::ResourceTable;
    pub use crate::types::{
        ContentType, ContentTypeSet, DurationMs, ResourceId, ResourceMeta, ServerId, SourceId,
        Timestamp, VolumeId,
    };
    pub use crate::volume::{
        DirectoryVolumes, ProbabilityVolumes, ProbabilityVolumesBuilder, SamplingMode,
        ThinningCriterion, VolumeProvider, WithPopularityFallback, POPULARITY_VOLUME,
    };
    pub use crate::wire::{
        decode_p_volume, encode_p_volume, encode_p_volume_into, intern_wire_piggyback, WireElement,
        WirePiggyback, P_VOLUME_HEADER,
    };
}
