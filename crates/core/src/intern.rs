//! URL path interning.
//!
//! Servers and the trace replay engine refer to resources billions of times;
//! interning paths to dense [`ResourceId`]s keeps every downstream structure
//! (volume FIFOs, pairwise counters, metric windows) indexable by `u32`.

use crate::fasthash::FxHashMap;
use crate::types::ResourceId;
use std::sync::Arc;

/// A dense string interner mapping URL paths to [`ResourceId`]s.
///
/// Ids are assigned in first-seen order and are stable for the lifetime of
/// the interner. Lookup by path is `O(1)` expected; lookup by id is `O(1)`.
///
/// Each path is stored once on the heap: the id-indexed vector and the
/// by-path map share one `Arc<str>` allocation, so inserting never copies
/// the string a second time and cloning the interner is shallow per path.
#[derive(Debug, Default, Clone)]
pub struct PathInterner {
    by_path: FxHashMap<Arc<str>, ResourceId>,
    paths: Vec<Arc<str>>,
}

impl PathInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `path`, returning its id (existing or freshly assigned).
    ///
    /// Paths are normalized first: see [`normalize_path`].
    pub fn intern(&mut self, path: &str) -> ResourceId {
        let norm = normalize_path(path);
        if let Some(&id) = self.by_path.get(norm.as_ref()) {
            return id;
        }
        let id =
            ResourceId(u32::try_from(self.paths.len()).expect("more than u32::MAX interned paths"));
        let shared: Arc<str> = Arc::from(norm.as_ref());
        self.by_path.insert(Arc::clone(&shared), id);
        self.paths.push(shared);
        id
    }

    /// Look up an already-interned path without inserting.
    pub fn get(&self, path: &str) -> Option<ResourceId> {
        self.by_path.get(normalize_path(path).as_ref()).copied()
    }

    /// The path for `id`, if assigned.
    pub fn path(&self, id: ResourceId) -> Option<&str> {
        self.paths.get(id.index()).map(|s| s.as_ref())
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterate `(id, path)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &str)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (ResourceId(i as u32), p.as_ref()))
    }
}

/// Normalize a URL path the way the paper's log cleaning did: ensure a
/// leading `/`, drop a trailing `/` (so `http://www.foo.com/` and
/// `http://www.foo.com` are "combined [as] identical resources"), and strip
/// any `#fragment`.
///
/// Query strings are preserved: the paper *deletes* query URLs from its logs
/// entirely, which is the caller's policy decision, not the interner's.
pub fn normalize_path(path: &str) -> std::borrow::Cow<'_, str> {
    use std::borrow::Cow;
    let path = match path.find('#') {
        Some(i) => &path[..i],
        None => path,
    };
    let needs_leading = !path.starts_with('/');
    let trailing = path.len() > 1 && path.ends_with('/');
    if !needs_leading && !trailing {
        if path.is_empty() {
            return Cow::Borrowed("/");
        }
        return Cow::Borrowed(path);
    }
    let mut s = String::with_capacity(path.len() + 1);
    if needs_leading {
        s.push('/');
    }
    s.push_str(path);
    while s.len() > 1 && s.ends_with('/') {
        s.pop();
    }
    Cow::Owned(s)
}

/// The directory prefix of `path` at `level` (paper Section 3.2.1).
///
/// Level 0 is the site root (every resource shares it); level `k` keeps the
/// first `k` directory components. A resource shallower than `k` components
/// belongs to the volume of its own directory.
///
/// ```
/// use piggyback_core::intern::directory_prefix;
/// assert_eq!(directory_prefix("/a/b.html", 0), "/");
/// assert_eq!(directory_prefix("/a/b.html", 1), "/a");
/// assert_eq!(directory_prefix("/a/d/e.html", 1), "/a");
/// assert_eq!(directory_prefix("/a/d/e.html", 2), "/a/d");
/// assert_eq!(directory_prefix("/f/g.html", 1), "/f");
/// // Shallow resources saturate at their own directory.
/// assert_eq!(directory_prefix("/top.html", 3), "/");
/// ```
pub fn directory_prefix(path: &str, level: usize) -> &str {
    if level == 0 {
        return "/";
    }
    debug_assert!(path.starts_with('/'), "paths must be normalized");
    // The final component is the file name; it never counts toward the
    // prefix. Find the byte offset after `level` directory components, or
    // the last '/' if the path is shallower.
    let mut components = 0usize;
    let mut last_slash = 0usize;
    for (i, b) in path.bytes().enumerate() {
        if b == b'/' {
            if i > 0 {
                components += 1;
                if components == level {
                    return &path[..i];
                }
            }
            last_slash = i;
        }
    }
    // Fewer than `level` directories: the prefix is everything up to the
    // final slash (the resource's own directory).
    if last_slash == 0 {
        "/"
    } else {
        &path[..last_slash]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut i = PathInterner::new();
        let a = i.intern("/a.html");
        let b = i.intern("/b.html");
        let a2 = i.intern("/a.html");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
        assert_eq!(i.path(a), Some("/a.html"));
        assert_eq!(i.get("/b.html"), Some(b));
        assert_eq!(i.get("/c.html"), None);
    }

    #[test]
    fn intern_normalizes() {
        let mut i = PathInterner::new();
        let root1 = i.intern("/");
        let root2 = i.intern("");
        assert_eq!(root1, root2);
        let a = i.intern("/dir/");
        let b = i.intern("/dir");
        assert_eq!(a, b);
        let c = i.intern("page.html");
        assert_eq!(i.path(c), Some("/page.html"));
        let d = i.intern("/x.html#sec2");
        assert_eq!(i.path(d), Some("/x.html"));
    }

    #[test]
    fn map_and_vec_share_one_allocation() {
        let mut i = PathInterner::new();
        let a = i.intern("/shared/path.html");
        // Two owners (map key + vec slot) of a single heap string.
        let arc = i.paths.get(a.index()).unwrap();
        assert_eq!(Arc::strong_count(arc), 2);
        // Re-interning adds no owners.
        i.intern("/shared/path.html");
        assert_eq!(Arc::strong_count(i.paths.get(a.index()).unwrap()), 2);
        // Cloning the interner shares rather than copies the strings.
        let copy = i.clone();
        assert_eq!(Arc::strong_count(copy.paths.first().unwrap()), 4);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = PathInterner::new();
        i.intern("/x");
        i.intern("/y");
        let all: Vec<_> = i.iter().map(|(id, p)| (id.0, p.to_string())).collect();
        assert_eq!(all, vec![(0, "/x".into()), (1, "/y".into())]);
    }

    #[test]
    fn prefix_levels() {
        assert_eq!(directory_prefix("/a/b/c/d.html", 0), "/");
        assert_eq!(directory_prefix("/a/b/c/d.html", 1), "/a");
        assert_eq!(directory_prefix("/a/b/c/d.html", 2), "/a/b");
        assert_eq!(directory_prefix("/a/b/c/d.html", 3), "/a/b/c");
        // Deeper than the path: saturates at the file's own directory.
        assert_eq!(directory_prefix("/a/b/c/d.html", 9), "/a/b/c");
        assert_eq!(directory_prefix("/d.html", 2), "/");
        assert_eq!(directory_prefix("/", 2), "/");
    }

    #[test]
    fn paper_example_grouping() {
        // One-level volumes: /a/b.html and /a/d/e.html together, /f/g.html apart.
        let p1 = directory_prefix("/a/b.html", 1);
        let p2 = directory_prefix("/a/d/e.html", 1);
        let p3 = directory_prefix("/f/g.html", 1);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        // Zero-level volumes: all three together.
        assert_eq!(
            directory_prefix("/a/b.html", 0),
            directory_prefix("/f/g.html", 0)
        );
    }
}
