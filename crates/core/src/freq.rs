//! Stateless-ish piggyback frequency control (paper Section 2.2).
//!
//! When a server has too many volumes for RPV lists to be practical (e.g.
//! probability-based volumes, one per resource), the proxy paces piggybacks
//! with cheap per-server techniques instead: a random enable/disable bit, a
//! minimum interval since the last piggyback from that server, or an
//! adaptive variant that backs off when recent piggybacks were useless.

use crate::types::{DurationMs, Timestamp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// A policy deciding, per request, whether to set the filter's enable bit.
pub trait FrequencyControl {
    /// Should the next request to `server` enable piggybacking?
    fn should_enable(&mut self, server: u64, now: Timestamp) -> bool;

    /// Inform the policy that a piggyback arrived from `server` at `now`
    /// containing `useful` elements the proxy acted on, of `total` sent.
    fn on_piggyback(&mut self, server: u64, now: Timestamp, useful: usize, total: usize);
}

/// Always enable (the protocol's default behaviour, no pacing).
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysEnable;

impl FrequencyControl for AlwaysEnable {
    fn should_enable(&mut self, _server: u64, _now: Timestamp) -> bool {
        true
    }
    fn on_piggyback(&mut self, _: u64, _: Timestamp, _: usize, _: usize) {}
}

/// "Randomly set an enable/disable bit": enable with probability `p`.
#[derive(Debug)]
pub struct RandomBit {
    p: f64,
    rng: StdRng,
}

impl RandomBit {
    /// Enable each request's piggyback independently with probability `p`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        RandomBit {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl FrequencyControl for RandomBit {
    fn should_enable(&mut self, _server: u64, _now: Timestamp) -> bool {
        self.rng.random::<f64>() < self.p
    }
    fn on_piggyback(&mut self, _: u64, _: Timestamp, _: usize, _: usize) {}
}

/// "Disabling piggybacks from servers which have sent piggybacks within the
/// last minute": a minimum interval between piggybacks per server.
#[derive(Debug)]
pub struct MinInterval {
    interval: DurationMs,
    last: HashMap<u64, Timestamp>,
}

impl MinInterval {
    pub fn new(interval: DurationMs) -> Self {
        MinInterval {
            interval,
            last: HashMap::new(),
        }
    }
}

impl FrequencyControl for MinInterval {
    fn should_enable(&mut self, server: u64, now: Timestamp) -> bool {
        match self.last.get(&server) {
            Some(&t) => now.since(t) >= self.interval,
            None => true,
        }
    }

    fn on_piggyback(&mut self, server: u64, now: Timestamp, _useful: usize, _total: usize) {
        self.last.insert(server, now);
    }
}

/// Usefulness-adaptive pacing: a minimum interval that stretches when recent
/// piggybacks from a server were useless and shrinks when they were useful.
///
/// The effective interval is `base * 2^level`, where `level` (0..=max_level)
/// rises after a piggyback with zero useful elements and falls after one
/// where at least half the elements were useful.
#[derive(Debug)]
pub struct AdaptiveInterval {
    base: DurationMs,
    max_level: u32,
    state: HashMap<u64, (Timestamp, u32)>,
}

impl AdaptiveInterval {
    pub fn new(base: DurationMs, max_level: u32) -> Self {
        AdaptiveInterval {
            base,
            max_level,
            state: HashMap::new(),
        }
    }

    fn interval_for(&self, level: u32) -> DurationMs {
        DurationMs(self.base.0.saturating_mul(1u64 << level.min(63)))
    }
}

impl FrequencyControl for AdaptiveInterval {
    fn should_enable(&mut self, server: u64, now: Timestamp) -> bool {
        match self.state.get(&server) {
            Some(&(t, level)) => now.since(t) >= self.interval_for(level),
            None => true,
        }
    }

    fn on_piggyback(&mut self, server: u64, now: Timestamp, useful: usize, total: usize) {
        let entry = self.state.entry(server).or_insert((now, 0));
        entry.0 = now;
        if total > 0 && useful == 0 {
            entry.1 = (entry.1 + 1).min(self.max_level);
        } else if total > 0 && useful * 2 >= total {
            entry.1 = entry.1.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn always_enable() {
        let mut p = AlwaysEnable;
        assert!(p.should_enable(1, ts(0)));
        p.on_piggyback(1, ts(0), 0, 10);
        assert!(p.should_enable(1, ts(0)));
    }

    #[test]
    fn random_bit_respects_probability() {
        let mut p = RandomBit::new(0.3, 42);
        let n = 10_000;
        let enabled = (0..n).filter(|_| p.should_enable(1, ts(0))).count();
        let frac = enabled as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
        // Degenerate probabilities.
        let mut never = RandomBit::new(0.0, 1);
        assert!(!(0..100).any(|_| never.should_enable(1, ts(0))));
        let mut always = RandomBit::new(1.0, 1);
        assert!((0..100).all(|_| always.should_enable(1, ts(0))));
    }

    #[test]
    fn min_interval_gates_per_server() {
        let mut p = MinInterval::new(DurationMs::from_secs(60));
        assert!(p.should_enable(1, ts(0)));
        p.on_piggyback(1, ts(0), 1, 1);
        assert!(!p.should_enable(1, ts(59)));
        assert!(p.should_enable(1, ts(60)));
        // Other servers are independent.
        assert!(p.should_enable(2, ts(1)));
    }

    #[test]
    fn adaptive_backs_off_on_useless_piggybacks() {
        let mut p = AdaptiveInterval::new(DurationMs::from_secs(10), 3);
        p.on_piggyback(1, ts(0), 0, 5); // useless -> level 1 (20s)
        assert!(!p.should_enable(1, ts(15)));
        assert!(p.should_enable(1, ts(20)));
        p.on_piggyback(1, ts(20), 0, 5); // level 2 (40s)
        assert!(!p.should_enable(1, ts(50)));
        assert!(p.should_enable(1, ts(60)));
        // A useful piggyback brings the level back down.
        p.on_piggyback(1, ts(60), 5, 5); // level 1 (20s)
        assert!(p.should_enable(1, ts(80)));
    }

    #[test]
    fn adaptive_level_saturates() {
        let mut p = AdaptiveInterval::new(DurationMs::from_secs(1), 2);
        for i in 0..10 {
            p.on_piggyback(1, ts(i * 100), 0, 1);
        }
        // Level capped at 2 => interval 4s, not 2^10 s.
        let last = ts(900);
        assert!(p.should_enable(1, Timestamp::from_secs(904)));
        assert!(!p.should_enable(1, Timestamp::from_millis(last.as_millis() + 3_999)));
    }
}
