//! The server's resource table: interned paths plus per-resource metadata.

use crate::intern::PathInterner;
use crate::types::{ContentType, ResourceId, ResourceMeta, Timestamp};

/// Paths and metadata for every resource a server knows about.
///
/// This is the state a real origin server already has (its file system and
/// access counters); volume providers and piggyback generation read from it.
#[derive(Debug, Default, Clone)]
pub struct ResourceTable {
    interner: PathInterner,
    meta: Vec<ResourceMeta>,
}

impl ResourceTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) a resource, returning its id.
    pub fn register(
        &mut self,
        path: &str,
        size: u64,
        last_modified: Timestamp,
        content_type: ContentType,
    ) -> ResourceId {
        let id = self.interner.intern(path);
        if id.index() == self.meta.len() {
            self.meta
                .push(ResourceMeta::new(size, last_modified, content_type));
        } else {
            let m = &mut self.meta[id.index()];
            m.size = size;
            m.last_modified = last_modified;
            m.content_type = content_type;
        }
        id
    }

    /// Register a path with metadata inferred from the path (type from the
    /// extension, placeholder size), for trace-driven use where bodies are
    /// not materialized.
    pub fn register_path(&mut self, path: &str, size: u64, last_modified: Timestamp) -> ResourceId {
        self.register(path, size, last_modified, ContentType::from_path(path))
    }

    /// Mark a modification of `r` at `when` (updates Last-Modified).
    pub fn touch_modified(&mut self, r: ResourceId, when: Timestamp) {
        if let Some(m) = self.meta.get_mut(r.index()) {
            m.last_modified = when;
        }
    }

    /// Increment the access counter for `r`, returning the new count.
    pub fn count_access(&mut self, r: ResourceId) -> u64 {
        match self.meta.get_mut(r.index()) {
            Some(m) => {
                m.access_count += 1;
                m.access_count
            }
            None => 0,
        }
    }

    /// Metadata for `r`, if registered.
    pub fn meta(&self, r: ResourceId) -> Option<&ResourceMeta> {
        self.meta.get(r.index())
    }

    /// The path for `r`, if registered.
    pub fn path(&self, r: ResourceId) -> Option<&str> {
        self.interner.path(r)
    }

    /// Id of an already-registered path.
    pub fn lookup(&self, path: &str) -> Option<ResourceId> {
        self.interner.get(path)
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Iterate `(id, path, meta)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &str, &ResourceMeta)> {
        self.interner
            .iter()
            .map(move |(id, p)| (id, p, &self.meta[id.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut t = ResourceTable::new();
        let a = t.register("/a.html", 100, Timestamp::from_secs(1), ContentType::Html);
        assert_eq!(t.lookup("/a.html"), Some(a));
        assert_eq!(t.path(a), Some("/a.html"));
        assert_eq!(t.meta(a).unwrap().size, 100);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn re_register_updates_metadata() {
        let mut t = ResourceTable::new();
        let a = t.register("/a.html", 100, Timestamp::from_secs(1), ContentType::Html);
        t.count_access(a);
        let a2 = t.register("/a.html", 250, Timestamp::from_secs(9), ContentType::Html);
        assert_eq!(a, a2);
        let m = t.meta(a).unwrap();
        assert_eq!(m.size, 250);
        assert_eq!(m.last_modified, Timestamp::from_secs(9));
        // Access counts survive a metadata update.
        assert_eq!(m.access_count, 1);
    }

    #[test]
    fn access_counting() {
        let mut t = ResourceTable::new();
        let a = t.register_path("/img/logo.gif", 2048, Timestamp::ZERO);
        assert_eq!(t.meta(a).unwrap().content_type, ContentType::Image);
        assert_eq!(t.count_access(a), 1);
        assert_eq!(t.count_access(a), 2);
        assert_eq!(t.meta(a).unwrap().access_count, 2);
        // Counting an unknown id is a no-op.
        assert_eq!(t.count_access(ResourceId(999)), 0);
    }

    #[test]
    fn touch_modified_updates_lm() {
        let mut t = ResourceTable::new();
        let a = t.register_path("/x", 1, Timestamp::ZERO);
        t.touch_modified(a, Timestamp::from_secs(77));
        assert_eq!(t.meta(a).unwrap().last_modified, Timestamp::from_secs(77));
    }
}
