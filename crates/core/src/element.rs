//! Piggyback messages and their wire-cost model (paper Section 2.3).
//!
//! A piggyback message carries a two-byte volume identifier and a sequence
//! of elements, each holding a resource identifier (URL), its size, and its
//! Last-Modified time. The paper budgets ~50 bytes for a URL (server name
//! omitted) and 8-byte integers for time and size — 66 bytes per element.

use crate::types::{ResourceId, Timestamp, VolumeId};
use serde::{Deserialize, Serialize};

/// One entry of a piggyback message: the metadata a proxy needs to freshen,
/// invalidate, or prefetch a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PiggybackElement {
    /// The resource being described (interned URL path).
    pub resource: ResourceId,
    /// Size of the resource body in bytes.
    pub size: u64,
    /// Last-Modified time of the server's current copy.
    pub last_modified: Timestamp,
}

/// A complete piggyback message, as carried in the `P-volume` trailer of a
/// chunked HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PiggybackMessage {
    /// The volume the requested resource belongs to; the proxy appends this
    /// to its recently-piggybacked-volume (RPV) list.
    pub volume: VolumeId,
    /// Elements describing related resources (never includes the requested
    /// resource itself).
    pub elements: Vec<PiggybackElement>,
}

impl PiggybackMessage {
    pub fn new(volume: VolumeId) -> Self {
        PiggybackMessage {
            volume,
            elements: Vec::new(),
        }
    }

    /// Number of piggybacked elements (the paper's "piggyback size").
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Estimated on-the-wire size of this message in bytes under the paper's
    /// accounting: 2 bytes of volume id plus [`WireCost`]-modelled elements.
    pub fn wire_bytes(&self, cost: &WireCost) -> u64 {
        cost.message_bytes(self.len())
    }
}

/// The paper's byte-cost model for piggyback messages (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireCost {
    /// Average URL length after omitting the redundant server-name portion.
    /// The paper measured "about 50 bytes" across its logs.
    pub avg_url_bytes: u64,
    /// Bytes for the Last-Modified time field.
    pub last_modified_bytes: u64,
    /// Bytes for the resource-size field.
    pub size_bytes: u64,
    /// Bytes for the volume identifier ("2 byte volume identifier").
    pub volume_id_bytes: u64,
}

impl Default for WireCost {
    fn default() -> Self {
        WireCost {
            avg_url_bytes: 50,
            last_modified_bytes: 8,
            size_bytes: 8,
            volume_id_bytes: 2,
        }
    }
}

impl WireCost {
    /// Bytes per piggyback element. With defaults this is the paper's 66.
    pub fn element_bytes(&self) -> u64 {
        self.avg_url_bytes + self.last_modified_bytes + self.size_bytes
    }

    /// Bytes for a whole message of `n` elements. With defaults and the
    /// paper's Sun example (6 elements) this is 398 bytes.
    pub fn message_bytes(&self, n: usize) -> u64 {
        self.volume_id_bytes + self.element_bytes() * n as u64
    }

    /// Number of extra TCP/IP packets a piggyback of `n` elements needs,
    /// given `spare` bytes of room left in the packet carrying the response.
    /// The paper argues small piggybacks "might often fit in the same packet
    /// as the response or at most require one additional packet".
    pub fn extra_packets(&self, n: usize, spare: u64, mss: u64) -> u64 {
        let bytes = self.message_bytes(n);
        if bytes <= spare {
            0
        } else {
            (bytes - spare).div_ceil(mss.max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_byte_accounting() {
        let cost = WireCost::default();
        assert_eq!(cost.element_bytes(), 66);
        // Section 2.3: 6 elements => 398 bytes total.
        assert_eq!(cost.message_bytes(6), 398);
        assert_eq!(cost.message_bytes(0), 2);
    }

    #[test]
    fn extra_packet_math() {
        let cost = WireCost::default();
        // Fits in the spare room of the response packet.
        assert_eq!(cost.extra_packets(6, 400, 1460), 0);
        // Slightly over: one extra packet.
        assert_eq!(cost.extra_packets(6, 300, 1460), 1);
        // A giant piggyback needs several.
        assert_eq!(
            cost.extra_packets(200, 0, 1460),
            (2 + 66 * 200u64).div_ceil(1460)
        );
    }

    #[test]
    fn message_basics() {
        let mut m = PiggybackMessage::new(VolumeId(3));
        assert!(m.is_empty());
        m.elements.push(PiggybackElement {
            resource: ResourceId(1),
            size: 100,
            last_modified: Timestamp::from_secs(5),
        });
        assert_eq!(m.len(), 1);
        assert_eq!(m.wire_bytes(&WireCost::default()), 68);
    }
}
