//! Allocation-count regression harness for the zero-copy wire hot path.
//!
//! Installs a counting global allocator, drives a warmed proxy connection
//! through pure cached hits with a client that itself performs no heap
//! allocation, and asserts the process allocates **nothing** during the
//! measured window. This is the enforceable form of the steady-state
//! guarantee: once a connection's scratch buffers and recycled header
//! strings are warm, a cached-hit request costs zero heap allocations —
//! parse into reused buffers, look up sharded metadata, bump the shared
//! `Body` refcount, format the head into scratch, one vectored write.
//!
//! Everything else in the process must also be quiet for the window to
//! measure zero: origin workers blocked on accept/read, pool connections
//! idle, the stats/histograms all atomics. A regression anywhere in that
//! set shows up here as a nonzero count.

use piggyback_proxyd::origin::{start_origin, OriginConfig};
use piggyback_proxyd::proxy::{start_proxy, ProxyConfig, WireMode};
use piggyback_proxyd::IoMode;
use piggyback_trace::synth::site::{Site, SiteConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counts every allocation and reallocation (frees don't matter for the
/// steady-state claim; a path that frees without allocating can't leak).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Parse `Content-Length` from a header block without allocating.
fn content_length(head: &[u8]) -> usize {
    let p = find(head, b"Content-Length: ").expect("framed response");
    let mut n = 0usize;
    for &b in &head[p + 16..] {
        match b {
            b'0'..=b'9' => n = n * 10 + (b - b'0') as usize,
            _ => break,
        }
    }
    n
}

/// One keep-alive GET round trip using only the caller's buffer. The
/// request bytes are pre-serialized; parsing works on byte slices. No
/// heap allocation on success (assert messages only format on failure).
fn roundtrip(stream: &mut TcpStream, req: &[u8], buf: &mut [u8], expect_hit: bool) {
    stream.write_all(req).expect("write request");
    let mut filled = 0usize;
    let head_len = loop {
        if let Some(p) = find(&buf[..filled], b"\r\n\r\n") {
            break p + 4;
        }
        let n = stream.read(&mut buf[filled..]).expect("read response");
        assert!(n > 0, "proxy closed mid-response");
        filled += n;
    };
    assert!(buf.starts_with(b"HTTP/1.1 200 OK\r\n"), "not a 200");
    if expect_hit {
        assert!(
            find(&buf[..head_len], b"X-Cache: HIT\r\n").is_some(),
            "steady-state requests must be cache hits"
        );
    }
    let total = head_len + content_length(&buf[..head_len]);
    assert!(total <= buf.len(), "response larger than client buffer");
    while filled < total {
        let n = stream.read(&mut buf[filled..]).expect("read body");
        assert!(n > 0, "proxy closed mid-body");
        filled += n;
    }
}

/// The allocation counter is process-global, so the two I/O-mode variants
/// must never overlap: a warmup allocation in one would land in the
/// other's measured window.
static WINDOW: Mutex<()> = Mutex::new(());

#[test]
fn cached_hits_allocate_nothing_after_warmup() {
    steady_state_is_allocation_free(IoMode::Threaded);
}

/// The reactor twin: the epoll path must preserve the zero-allocation
/// guarantee — slab slots, connection scratch, output buffers, and timer
/// wheel entries all reach steady-state capacity during warmup.
#[cfg(target_os = "linux")]
#[test]
fn reactor_cached_hits_allocate_nothing_after_warmup() {
    steady_state_is_allocation_free(IoMode::Reactor { reactors: 2 });
}

/// ISSUE 9 satellite: the reactor's nonblocking miss path must also hit
/// an allocation *steady state*. With freshness zero every request is
/// stale, so each one drives a full upstream exchange on the reactor —
/// serialize the validation request, ride the per-shard keep-alive
/// upstream connection, parse the 304, re-serve from cache. That path
/// legitimately allocates (plan closures, response headers), but the
/// per-request count must be a small bounded constant, not grow with
/// connection lifetime, and never fall back to the offload pool.
#[cfg(target_os = "linux")]
#[test]
fn reactor_miss_path_allocations_stay_bounded() {
    let _window = WINDOW.lock().unwrap();
    let site_cfg = SiteConfig {
        n_pages: 8,
        images_per_page: (0, 0),
        ..Default::default()
    };
    let origin = start_origin(OriginConfig {
        site: site_cfg.clone(),
        ..Default::default()
    })
    .expect("origin starts");
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.wire = WireMode::ZeroCopy;
    cfg.io = IoMode::Reactor { reactors: 2 };
    // Always stale: every measured request is an upstream validation.
    cfg.freshness = piggyback_core::types::DurationMs::from_millis(0);
    cfg.filter = piggyback_core::filter::ProxyFilter::builder()
        .max_piggy(0)
        .build();
    cfg.rpv = None;
    cfg.report_hits = false;
    // Keep threshold-capped synth bodies on the buffered validation path
    // (see steady_state_is_allocation_free).
    cfg.stream_threshold = 512 * 1024;
    let proxy = start_proxy(cfg).expect("proxy starts");

    let (table, site) = Site::generate(&site_cfg);
    let reqs: Vec<Vec<u8>> = site
        .pages
        .iter()
        .map(|p| {
            format!(
                "GET {} HTTP/1.1\r\nHost: alloc-test\r\n\r\n",
                table.path(p.resource).unwrap()
            )
            .into_bytes()
        })
        .collect();
    let mut buf = vec![0u8; 512 * 1024];

    let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
    // Warmup: first round fills the cache (200s), later rounds settle the
    // upstream connection, scratch, and slab capacities.
    for _ in 0..4 {
        for req in &reqs {
            roundtrip(&mut stream, req, &mut buf, false);
        }
    }

    const ROUNDS: usize = 10;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..ROUNDS {
        for req in &reqs {
            roundtrip(&mut stream, req, &mut buf, false);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    let total_reqs = (ROUNDS * reqs.len()) as u64;
    let per_request = (after - before) / total_reqs;
    // Measured ~49 on the current implementation; the bound leaves
    // headroom for allocator jitter while catching any O(n) regression
    // (per-request buffer churn lands at hundreds per exchange).
    assert!(
        per_request <= 96,
        "reactor miss path allocates too much: {} allocations / {} requests = {} per request",
        after - before,
        total_reqs,
        per_request
    );

    let s = proxy.stats();
    assert_eq!(s.requests, 14 * reqs.len() as u64);
    assert!(
        s.not_modified >= 13 * reqs.len() as u64,
        "every post-fill request must be an upstream validation: {s:?}"
    );
    assert_eq!(s.upstream_errors, 0, "{s:?}");
    proxy.stop();
    origin.stop();
}

/// ISSUE 10 satellite: the streaming prefix-hit relay must allocate O(1)
/// per 16 KiB relay segment, never O(body). Each measured request serves
/// a 64 KiB cached prefix and then relays a 1 MiB suffix from the origin
/// in ~64 segments through one reused segment buffer; a regression that
/// builds fresh per-segment vectors (or re-buffers the whole object) is
/// a multiple of this bound. The origin serves a single pre-serialized
/// response and reads request heads into a stack buffer, so it is quiet
/// in the measured window too.
#[test]
fn streaming_prefix_relay_allocations_are_constant_per_segment() {
    let _window = WINDOW.lock().unwrap();
    const TOTAL: usize = 1024 * 1024;
    const SEGMENT: usize = 16 * 1024; // proxy::STREAM_SEGMENT

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind origin");
    let origin_addr = listener.local_addr().expect("origin addr");
    let mut canned = format!(
        "HTTP/1.1 200 OK\r\n\
         Last-Modified: Mon, 01 Jan 2024 00:00:00 GMT\r\n\
         Content-Length: {TOTAL}\r\n\r\n"
    )
    .into_bytes();
    canned.extend((0..TOTAL).map(|i| (i % 251) as u8));
    let canned = std::sync::Arc::new(canned);
    std::thread::spawn(move || {
        while let Ok((mut conn, _)) = listener.accept() {
            let canned = std::sync::Arc::clone(&canned);
            std::thread::spawn(move || {
                let mut head = [0u8; 2048];
                loop {
                    let mut filled = 0usize;
                    while find(&head[..filled], b"\r\n\r\n").is_none() {
                        match conn.read(&mut head[filled..]) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => filled += n,
                        }
                    }
                    if conn.write_all(&canned).is_err() {
                        return;
                    }
                }
            });
        }
    });

    let mut cfg = ProxyConfig::new(origin_addr);
    cfg.wire = WireMode::ZeroCopy;
    cfg.freshness = piggyback_core::types::DurationMs::from_secs(3600);
    cfg.rpv = None;
    cfg.report_hits = false;
    let proxy = start_proxy(cfg).expect("proxy starts");

    let req = b"GET /large/alloc.bin HTTP/1.1\r\nHost: alloc-test\r\n\r\n";
    let mut buf = vec![0u8; TOTAL + 8 * 1024];
    let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
    // Warmup: streamed miss creates the prefix entry, then prefix hits
    // settle the pooled upstream connection and scratch capacities.
    for _ in 0..3 {
        roundtrip(&mut stream, req, &mut buf, false);
    }

    const ROUNDS: usize = 6;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..ROUNDS {
        roundtrip(&mut stream, req, &mut buf, false);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    let segments = (ROUNDS * (TOTAL / SEGMENT)) as u64;
    let per_segment = (after - before) as f64 / segments as f64;
    assert!(
        per_segment <= 2.0,
        "streaming relay allocates per byte, not per segment: \
         {} allocations / {} segments = {:.2} per segment",
        after - before,
        segments,
        per_segment
    );

    let s = proxy.stats();
    assert_eq!(s.requests, (3 + ROUNDS) as u64, "{s:?}");
    assert_eq!(s.streamed_misses, 1, "{s:?}");
    assert_eq!(s.prefix_hits, (2 + ROUNDS) as u64, "{s:?}");
    assert_eq!(s.upstream_errors, 0, "{s:?}");
    proxy.stop();
}

fn steady_state_is_allocation_free(io: IoMode) {
    let _window = WINDOW.lock().unwrap();
    let site_cfg = SiteConfig {
        n_pages: 16,
        images_per_page: (0, 0),
        ..Default::default()
    };
    let origin = start_origin(OriginConfig {
        site: site_cfg.clone(),
        ..Default::default()
    })
    .expect("origin starts");
    let mut cfg = ProxyConfig::new(origin.addr());
    cfg.wire = WireMode::ZeroCopy;
    cfg.io = io;
    // Far longer than the test: every measured request is a fresh hit.
    cfg.freshness = piggyback_core::types::DurationMs::from_secs(3600);
    // Synth bodies cap at exactly the default stream threshold (256 KiB),
    // and threshold-sized objects stream; keep this lane's heavy-tail
    // pages whole-cached so every measured request is a zero-alloc hit.
    cfg.stream_threshold = 512 * 1024;
    let proxy = start_proxy(cfg).expect("proxy starts");

    // Pre-serialize one request per page, browser-shaped headers included,
    // so the measured loop only writes bytes.
    let (table, site) = Site::generate(&site_cfg);
    let reqs: Vec<Vec<u8>> = site
        .pages
        .iter()
        .map(|p| {
            format!(
                "GET {} HTTP/1.1\r\n\
                 Host: alloc-test\r\n\
                 User-Agent: alloc-steady-state/1.0\r\n\
                 Accept: text/html,*/*;q=0.8\r\n\
                 Cookie: session=0123456789abcdef\r\n\r\n",
                table.path(p.resource).unwrap()
            )
            .into_bytes()
        })
        .collect();
    let mut buf = vec![0u8; 512 * 1024];

    let mut stream = TcpStream::connect(proxy.addr()).expect("connect");
    // Warmup: every page goes MISS → HIT on this connection, the scratch
    // buffers and recycled header strings reach their steady-state
    // capacity, the hit reporter and RPV table see this source.
    for round in 0..4 {
        for req in &reqs {
            roundtrip(&mut stream, req, &mut buf, round > 0);
        }
    }

    // Measured window: pure cached hits. The proxy, the origin (idle),
    // and this client must collectively allocate nothing.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        for req in &reqs {
            roundtrip(&mut stream, req, &mut buf, true);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "cached-hit steady state must not allocate ({} allocations across {} requests)",
        after - before,
        10 * reqs.len()
    );

    let s = proxy.stats();
    assert_eq!(s.requests, 14 * reqs.len() as u64);
    assert!(s.fresh_hits >= 13 * reqs.len() as u64, "{s:?}");
    proxy.stop();
    origin.stop();
}
