//! Regression test for the accept loop's fd-exhaustion backoff (ISSUE 7
//! satellite): when `accept()` hits EMFILE the server must count the
//! failure, back off instead of spinning or dying, and serve the queued
//! connection as soon as a descriptor frees up.
//!
//! The test lowers the soft RLIMIT_NOFILE, fills the process fd table
//! with ballast until EMFILE, frees exactly one descriptor for the
//! client's `connect()` (the kernel completes the handshake from the
//! listen backlog without an accept), and then watches the accept loop
//! fail over and recover. It lives in its own test binary because the
//! rlimit and a full fd table are process-wide state no concurrently
//! running test could survive.

#![cfg(target_os = "linux")]

use piggyback_proxyd::{nofile_limits, serve_with, set_nofile_soft, ServeOptions};
use std::fs::File;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const RESPONSE: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";

/// Restores the original soft limit even if the test panics mid-ballast.
struct LimitGuard(u64);

impl Drop for LimitGuard {
    fn drop(&mut self) {
        let _ = set_nofile_soft(self.0);
    }
}

fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd").unwrap().count() as u64
}

#[test]
fn accept_loop_backs_off_on_emfile_and_recovers() {
    let (orig_soft, _hard) = nofile_limits().unwrap();
    let _guard = LimitGuard(orig_soft);

    // One request per connection: read up to the header terminator, answer,
    // close. The client observes recovery as a served response + EOF.
    let server = serve_with(0, "backoff-test", ServeOptions::default(), |mut stream| {
        let mut buf = [0u8; 4096];
        let mut filled = 0;
        while !buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
            match stream.read(&mut buf[filled..]) {
                Ok(0) | Err(_) => return,
                Ok(n) => filled += n,
            }
        }
        let _ = stream.write_all(RESPONSE);
    })
    .unwrap();
    let stats = server.io_stats().clone();
    let addr = server.addr;

    // Lower the ceiling to just above what's already open, then eat every
    // remaining descriptor with ballast. The margin only bounds how much
    // ballast we open; the loop below finds the true edge.
    set_nofile_soft(open_fds() + 32).unwrap();
    let mut ballast = Vec::new();
    loop {
        match File::open("/dev/null") {
            Ok(f) => ballast.push(f),
            Err(e) => {
                assert_eq!(e.raw_os_error(), Some(24), "expected EMFILE, got {e}");
                break;
            }
        }
    }

    // Free exactly one descriptor: enough for the client's socket, leaving
    // none for the server's accept.
    ballast.pop();
    let mut client = TcpStream::connect(addr).expect("handshake completes from the backlog");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // The pending connection now drives accept() into EMFILE. The loop
    // must register the failure and keep retrying instead of dying.
    let deadline = Instant::now() + Duration::from_secs(5);
    while stats.accept_errors_total() == 0 {
        assert!(
            Instant::now() < deadline,
            "accept loop never observed fd exhaustion"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(stats.accepts_total(), 0, "nothing acceptable yet");

    // Recovery: descriptors free up, the backed-off accept retries, and
    // the connection that waited in the backlog the whole time is served.
    ballast.clear();
    client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut got = Vec::new();
    client.read_to_end(&mut got).expect("served after recovery");
    assert_eq!(got, RESPONSE, "queued connection must be served intact");
    assert!(stats.accepts_total() >= 1);
    assert!(stats.accept_errors_total() >= 1);
    server.stop();
}
