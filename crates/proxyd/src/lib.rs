//! # piggyback-proxyd
//!
//! Runnable network components for the SIGCOMM '98 server-volumes
//! reproduction, built on `std::net` TCP with a bounded accept/worker
//! pool per daemon (see [`util::serve_with`]):
//!
//! * [`origin`] — a piggybacking origin server serving a synthetic site
//!   with If-Modified-Since validation and `P-volume` chunked trailers;
//! * [`proxy`] — a caching proxy sending `Piggy-filter` headers upstream
//!   and applying piggybacks to its cache;
//! * [`volume_center`] — the paper's transparent volume center: an on-path
//!   relay that learns volumes from observed traffic and piggybacks on
//!   behalf of an oblivious origin;
//! * [`client`] — a workload-driver HTTP client;
//! * [`record_tap`] / [`replay_origin`] — the record/replay harness: a
//!   capture relay writing versioned traffic inventories and a
//!   deterministic origin re-serving them byte-identically;
//! * [`netem`] — the seeded adverse-network conditioner (dialup/DSL/LAN
//!   profiles per the paper's §5) shimmed into the volume-center relay.
//!
//! [`obs`] carries the shared observability layer: allocation-free log2
//! latency histograms and the Prometheus text rendering behind each
//! daemon's `GET /__pb/metrics` admin endpoint.
//!
//! Each component starts on an ephemeral loopback port and returns a
//! handle exposing its address and live statistics, so end-to-end
//! deployments compose in-process (see the `quickstart` example).

pub mod client;
pub mod netem;
pub mod obs;
pub mod origin;
pub mod prefetch;
pub mod proxy;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod record_tap;
pub mod replay_origin;
pub mod stats;
pub mod util;
pub mod volume_center;

pub use client::{run_sequence, ClientReport, ConnectionPool, HttpClient, PoolStats, PooledConn};
pub use netem::{Conditioner, ExchangePlan, NetProfile, ShimConfig, ShimStats};
pub use obs::{DaemonObs, HistogramSnapshot, LatencyHistogram, ProxyObs};
pub use origin::{start_origin, OnlineEpochConfig, OriginConfig, OriginHandle, VolumeScheme};
pub use proxy::{start_proxy, ConcurrencyMode, ProxyConfig, ProxyHandle, ProxyStats, METRICS_PATH};
#[cfg(target_os = "linux")]
pub use reactor::{
    resolve_reactors, serve_reactor, ReactorMetrics, ReactorOptions, ReactorService,
    ReactorShardStats, Served,
};
pub use record_tap::{start_recorder, RecorderConfig, RecorderHandle};
pub use replay_origin::{
    start_replay_origin, ReplayConfig, ReplayHandle, ReplayStats, ReplayTiming, DIVERGENCE_HEADER,
};
pub use stats::{AtomicDaemonStats, AtomicProxyStats, DaemonStats};
pub use util::{
    nofile_limits, peer_source, raise_nofile_limit, serve_with, serve_with_stats, set_nofile_soft,
    source_from_addr, synth_body, Clock, IoMode, IoStats, ServeOptions, ServerHandle,
};
pub use volume_center::{start_volume_center, VolumeCenterConfig, VolumeCenterHandle};
