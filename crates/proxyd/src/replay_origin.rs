//! Deterministic replay origin: re-serve a recorded inventory.
//!
//! Loads an [`Inventory`] captured by [`crate::record_tap`] and serves it
//! as an origin. Every response is a **pure function of the request**
//! (path + `If-Modified-Since` + `Piggy-filter`/`TE` presence), never of
//! arrival order or thread interleaving, so replaying the same request
//! stream at any concurrency yields byte-identical response streams and an
//! exactly equal stats ledger — the determinism the replay tests and CI
//! lane enforce (PROTOCOL.md §11).
//!
//! Requests that do not match the recording (a path the inventory never
//! saw, or a method other than GET/HEAD) are **divergences**: answered
//! with `500` plus an `X-Replay-Divergence` header and counted, in the
//! style of wasm-rr's divergence errors, rather than improvised around.
//!
//! Optional timing fidelity replays each entry's recorded TTFB and
//! transfer duration (scaled), so latency distributions — not just bytes —
//! can be reproduced off loopback.

use crate::obs::render_scalar;
use crate::proxy::METRICS_PATH;
use crate::stats::counter_set;
use crate::util::{serve, ServerHandle};
use piggyback_core::datetime::parse_rfc1123;
use piggyback_core::filter::PIGGY_FILTER_HEADER;
use piggyback_core::wire::P_VOLUME_HEADER;
use piggyback_httpwire::{Body, Request, Response};
use piggyback_trace::inventory::Inventory;
use piggyback_trace::record::RecordedExchange;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

/// The divergence marker header on non-matching requests.
pub const DIVERGENCE_HEADER: &str = "X-Replay-Divergence";

/// How faithfully to reproduce recorded wire timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayTiming {
    /// Serve as fast as loopback allows (the default; determinism tests
    /// use this).
    Immediate,
    /// Sleep each entry's recorded TTFB before the head and its transfer
    /// duration before the body, both multiplied by `scale`.
    Recorded { scale: f64 },
}

/// Replay origin configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// 0 picks an ephemeral port.
    pub port: u16,
    pub inventory: Arc<Inventory>,
    pub timing: ReplayTiming,
}

counter_set! {
    /// The replay origin's ledger. Conservation invariant (exact once
    /// quiescent, same style as [`crate::stats::ProxyStats`]):
    ///
    /// ```text
    /// requests == served_200 + served_304 + divergences
    /// ```
    plain ReplayStats;
    /// Atomic accumulator behind [`ReplayStats`].
    atomic AtomicReplayStats;
    {
        /// GET/HEAD requests accepted (metrics scrapes excluded).
        requests,
        /// Full recorded responses served.
        served_200,
        /// Validations answered from the recorded Last-Modified.
        served_304,
        /// Requests that did not match the recording.
        divergences,
        /// Body bytes written (200s only).
        bytes_sent,
        /// Recorded piggyback payloads re-attached.
        piggybacks_attached,
    }
}

impl ReplayStats {
    /// Sum of terminal outcomes; equals `requests` when quiescent.
    pub fn outcomes(&self) -> u64 {
        self.served_200 + self.served_304 + self.divergences
    }
}

struct ReplayState {
    inventory: Arc<Inventory>,
    /// Path → index of its canonical entry (first 200, else first seen).
    index: HashMap<String, usize>,
    timing: ReplayTiming,
    stats: AtomicReplayStats,
}

/// A running replay origin.
pub struct ReplayHandle {
    handle: ServerHandle,
    state: Arc<ReplayState>,
}

impl ReplayHandle {
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr
    }

    pub fn stats(&self) -> ReplayStats {
        self.state.stats.snapshot()
    }

    pub fn inventory(&self) -> &Inventory {
        &self.state.inventory
    }

    pub fn stop(self) {
        self.handle.stop();
    }
}

/// Start a replay origin serving `cfg.inventory`.
pub fn start_replay_origin(cfg: ReplayConfig) -> io::Result<ReplayHandle> {
    let mut index: HashMap<String, usize> = HashMap::new();
    for (i, e) in cfg.inventory.entries.iter().enumerate() {
        match index.get(&e.path) {
            None => {
                index.insert(e.path.clone(), i);
            }
            Some(&j) => {
                // Prefer a full 200 as the canonical recording of a path.
                if cfg.inventory.entries[j].status != 200 && e.status == 200 {
                    index.insert(e.path.clone(), i);
                }
            }
        }
    }
    let state = Arc::new(ReplayState {
        inventory: cfg.inventory,
        index,
        timing: cfg.timing,
        stats: AtomicReplayStats::new(),
    });
    let state2 = Arc::clone(&state);
    let handle = serve(cfg.port, "replay-origin", move |stream| {
        let _ = handle_connection(stream, &state2);
    })?;
    Ok(ReplayHandle { handle, state })
}

fn handle_connection(downstream: TcpStream, state: &ReplayState) -> io::Result<()> {
    let mut r = BufReader::new(downstream.try_clone()?);
    let mut w = BufWriter::new(downstream);
    loop {
        let req = match Request::read(&mut r) {
            Ok(q) => q,
            Err(_) => return Ok(()),
        };
        let keep = req.keep_alive();
        if req.target == METRICS_PATH {
            metrics_response(state).write(&mut w)?;
            if !keep {
                return Ok(());
            }
            continue;
        }
        state.stats.requests.fetch_add(1, Relaxed);
        let head = req.method == "HEAD";
        let entry = if req.method == "GET" || head {
            state
                .index
                .get(&req.target)
                .map(|&i| &state.inventory.entries[i])
        } else {
            None
        };
        let Some(entry) = entry else {
            state.stats.divergences.fetch_add(1, Relaxed);
            let mut resp = Response::new(500);
            resp.headers.insert(DIVERGENCE_HEADER, "unrecorded-request");
            resp.body = Body::from(format!(
                "replay divergence: {} {} is not in inventory {:?}\n",
                req.method, req.target, state.inventory.name
            ));
            resp.write(&mut w)?;
            if !keep {
                return Ok(());
            }
            continue;
        };

        let resp = respond(entry, &req, head, state);
        write_response(&resp, entry, &mut w, state.timing)?;
        if !keep {
            return Ok(());
        }
    }
}

/// Build the replayed response: a pure function of `(entry, request)`.
fn respond(entry: &RecordedExchange, req: &Request, head: bool, state: &ReplayState) -> Response {
    let wants_piggyback = req.headers.contains(PIGGY_FILTER_HEADER);
    let wants_chunked = req.headers.list_contains("TE", "chunked");
    let recorded_lm = entry.response_header("Last-Modified");

    // If-Modified-Since against the recorded Last-Modified: the replayed
    // resource never changes, so any IMS at-or-after it validates.
    let not_modified = match (
        req.headers.get("If-Modified-Since").and_then(parse_rfc1123),
        recorded_lm.and_then(parse_rfc1123),
    ) {
        (Some(ims), Some(lm)) => entry.status == 200 && lm <= ims,
        _ => false,
    };

    if not_modified {
        let mut resp = Response::new(304);
        if let Some(lm) = recorded_lm {
            resp.headers.insert("Last-Modified", lm);
        }
        if wants_piggyback {
            if let Some(pv) = &entry.piggyback {
                resp.headers.insert(P_VOLUME_HEADER, pv);
                state.stats.piggybacks_attached.fetch_add(1, Relaxed);
            }
        }
        state.stats.served_304.fetch_add(1, Relaxed);
        return resp;
    }

    let mut resp = Response::new(entry.status);
    for (n, v) in &entry.response_headers {
        resp.headers.insert(n, v);
    }
    if !head {
        resp.body = Body::from(entry.body.as_slice());
    }
    if wants_piggyback {
        if let Some(pv) = &entry.piggyback {
            if entry.chunked && wants_chunked && !head && entry.status == 200 {
                resp.trailers.insert(P_VOLUME_HEADER, pv);
            } else {
                resp.headers.insert(P_VOLUME_HEADER, pv);
            }
            state.stats.piggybacks_attached.fetch_add(1, Relaxed);
        }
    }
    match entry.status {
        200 => {
            state.stats.served_200.fetch_add(1, Relaxed);
            state
                .stats
                .bytes_sent
                .fetch_add(resp.body.len() as u64, Relaxed);
        }
        // Recorded non-200s (404s, control endpoints) replay verbatim and
        // are ledgered with the full responses.
        _ => {
            state.stats.served_200.fetch_add(1, Relaxed);
        }
    }
    resp
}

/// Write `resp`, optionally reproducing the entry's recorded timing.
fn write_response<W: Write>(
    resp: &Response,
    entry: &RecordedExchange,
    w: &mut W,
    timing: ReplayTiming,
) -> io::Result<()> {
    let ReplayTiming::Recorded { scale } = timing else {
        return resp.write(w);
    };
    let ttfb = Duration::from_micros(entry.ttfb_us).mul_f64(scale);
    let xfer = Duration::from_micros(entry.transfer_us).mul_f64(scale);
    if !ttfb.is_zero() {
        std::thread::sleep(ttfb);
    }
    if resp.trailers.is_empty() && !Response::bodiless_status(resp.status) && !resp.body.is_empty()
    {
        // Plain-framed body: hold the head/body boundary for the recorded
        // transfer duration.
        write!(
            w,
            "{} {} {}\r\n",
            resp.version.as_str(),
            resp.status,
            resp.reason
        )?;
        for (name, value) in resp.headers.iter() {
            if name.eq_ignore_ascii_case("Content-Length")
                || name.eq_ignore_ascii_case("Transfer-Encoding")
                || name.eq_ignore_ascii_case("Trailer")
            {
                continue;
            }
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n\r\n", resp.body.len())?;
        w.flush()?;
        if !xfer.is_zero() {
            std::thread::sleep(xfer);
        }
        w.write_all(&resp.body)?;
        w.flush()
    } else {
        // Chunked/bodiless: whole-response granularity.
        if !xfer.is_zero() {
            std::thread::sleep(xfer);
        }
        resp.write(w)
    }
}

fn metrics_response(state: &ReplayState) -> Response {
    let s = state.stats.snapshot();
    let mut out = String::with_capacity(1024);
    render_scalar(
        &mut out,
        "pb_replay_requests_total",
        "",
        "counter",
        s.requests,
    );
    for (label, value) in [
        ("ok", s.served_200),
        ("not_modified", s.served_304),
        ("divergence", s.divergences),
    ] {
        render_scalar(
            &mut out,
            "pb_replay_responses_total",
            &format!("class=\"{label}\""),
            "counter",
            value,
        );
    }
    render_scalar(
        &mut out,
        "pb_replay_bytes_sent_total",
        "",
        "counter",
        s.bytes_sent,
    );
    render_scalar(
        &mut out,
        "pb_replay_piggybacks_attached_total",
        "",
        "counter",
        s.piggybacks_attached,
    );
    render_scalar(
        &mut out,
        "pb_replay_inventory_entries",
        "",
        "gauge",
        state.inventory.entries.len() as u64,
    );
    let mut resp = Response::new(200);
    resp.headers
        .insert("Content-Type", "text/plain; version=0.0.4");
    resp.body = Body::from(out.into_bytes());
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use piggyback_core::datetime::format_rfc1123;

    fn inventory() -> Arc<Inventory> {
        let mut inv = Inventory::new("unit");
        let mut a = RecordedExchange::new(0, "GET", "/docs/a.html", 200, b"alpha".to_vec());
        a.chunked = true;
        a.response_headers
            .push(("Last-Modified".into(), format_rfc1123(886_000_000)));
        a.piggyback = Some("12; \"/docs/b.html\" 886000000 100".into());
        inv.entries.push(a);
        inv.entries.push(RecordedExchange::new(
            1,
            "GET",
            "/plain",
            200,
            b"plain".to_vec(),
        ));
        Arc::new(inv)
    }

    fn get(
        addr: SocketAddr,
        path: &str,
        extra: &[(&str, &str)],
    ) -> Result<Response, piggyback_httpwire::HttpError> {
        let stream = TcpStream::connect(addr)?;
        let mut r = BufReader::new(stream.try_clone()?);
        let mut w = BufWriter::new(stream);
        let mut req = Request::new("GET", path);
        req.headers.insert("Host", "t");
        req.headers.insert("Connection", "close");
        for (n, v) in extra {
            req.headers.insert(n, v);
        }
        req.write(&mut w)?;
        Response::read(&mut r, false)
    }

    #[test]
    fn serves_recorded_bodies_and_piggybacks() {
        let replay = start_replay_origin(ReplayConfig {
            port: 0,
            inventory: inventory(),
            timing: ReplayTiming::Immediate,
        })
        .unwrap();
        // Plain GET: recorded body, no piggyback without a filter.
        let resp = get(replay.addr(), "/docs/a.html", &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"alpha");
        assert!(resp.headers.get(P_VOLUME_HEADER).is_none());
        assert!(resp.trailers.get(P_VOLUME_HEADER).is_none());
        // Filtered chunked GET: the recorded pv rides the trailer.
        let resp = get(
            replay.addr(),
            "/docs/a.html",
            &[("TE", "chunked"), (PIGGY_FILTER_HEADER, "maxpiggy=10")],
        )
        .unwrap();
        assert_eq!(resp.body, b"alpha");
        assert_eq!(
            resp.trailers.get(P_VOLUME_HEADER),
            Some("12; \"/docs/b.html\" 886000000 100")
        );
        // Validation: IMS at the recorded LM comes back 304 with the pv
        // as a plain header.
        let lm = format_rfc1123(886_000_000);
        let resp = get(
            replay.addr(),
            "/docs/a.html",
            &[
                ("If-Modified-Since", lm.as_str()),
                (PIGGY_FILTER_HEADER, "maxpiggy=10"),
            ],
        )
        .unwrap();
        assert_eq!(resp.status, 304);
        assert!(resp.body.is_empty());
        assert_eq!(
            resp.headers.get(P_VOLUME_HEADER),
            Some("12; \"/docs/b.html\" 886000000 100")
        );
        let s = replay.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.served_200, 2);
        assert_eq!(s.served_304, 1);
        assert_eq!(s.divergences, 0);
        assert_eq!(s.outcomes(), s.requests);
        assert_eq!(s.piggybacks_attached, 2);
        replay.stop();
    }

    #[test]
    fn divergence_on_unrecorded_requests() {
        let replay = start_replay_origin(ReplayConfig {
            port: 0,
            inventory: inventory(),
            timing: ReplayTiming::Immediate,
        })
        .unwrap();
        let resp = get(replay.addr(), "/never-recorded", &[]).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(
            resp.headers.get(DIVERGENCE_HEADER),
            Some("unrecorded-request")
        );
        let s = replay.stats();
        assert_eq!(s.divergences, 1);
        assert_eq!(s.outcomes(), s.requests);
        // Metrics scrapes are not ledgered as requests.
        let m = get(replay.addr(), METRICS_PATH, &[]).unwrap();
        assert_eq!(m.status, 200);
        let text = String::from_utf8(m.body.to_vec()).unwrap();
        assert!(text.contains("pb_replay_responses_total{class=\"divergence\"} 1"));
        assert_eq!(replay.stats().requests, s.requests);
        replay.stop();
    }

    #[test]
    fn recorded_timing_delays_but_preserves_bytes() {
        let mut inv = Inventory::new("timed");
        let mut e = RecordedExchange::new(0, "GET", "/t", 200, b"body".to_vec());
        e.ttfb_us = 30_000;
        e.transfer_us = 20_000;
        inv.entries.push(e);
        let replay = start_replay_origin(ReplayConfig {
            port: 0,
            inventory: Arc::new(inv),
            timing: ReplayTiming::Recorded { scale: 1.0 },
        })
        .unwrap();
        let start = std::time::Instant::now();
        let resp = get(replay.addr(), "/t", &[]).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(resp.body, b"body");
        assert!(
            elapsed >= Duration::from_millis(45),
            "recorded delays applied: {elapsed:?}"
        );
        replay.stop();
    }
}
