//! A caching proxy that speaks the piggyback protocol upstream.
//!
//! The proxy half of Section 2.1: client requests are served from a
//! byte-bounded cache with a freshness interval Δ; misses and expired
//! entries go upstream with a `Piggy-filter` header (including the RPV
//! list) and `TE: chunked`; `P-volume` piggybacks in the response trailer
//! freshen or invalidate cached entries.
//!
//! ## Concurrency model
//!
//! The default [`ConcurrencyMode::Sharded`] splits proxy state into
//! independently locked pieces so parallel requests only contend when they
//! touch the same resource shard:
//!
//! * the cache is an N-way [`ShardedCache`] keyed by resource hash, with
//!   the body store co-sharded by the same hash;
//! * the resource table sits behind a read/write lock (lookups are reads);
//! * statistics are lock-free atomics ([`AtomicProxyStats`]);
//! * RPV state is per client source (an [`RpvTable`] keyed by peer
//!   address), so concurrent sources keep independent lists;
//! * upstream fetches check keep-alive connections out of a bounded,
//!   health-checked [`ConnectionPool`] instead of reconnecting per fetch.
//!
//! [`ConcurrencyMode::Legacy`] preserves the original single-lock,
//! fresh-connection-per-fetch behavior as an A/B baseline.

use crate::client::{ConnectionPool, PoolStats, PooledConn};
use crate::obs::{render_histogram, render_scalar, ProxyObs};
use crate::origin::strip_origin_form;
use crate::prefetch::{self, Prefetcher, PIGGY_PUSH_HEADER, PUSH_COUNT_HEADER};
use crate::stats::AtomicProxyStats;
pub use crate::stats::ProxyStats;
use crate::util::{serve_with_stats, Clock, IoMode, IoStats, ServeOptions, ServerHandle};
use parking_lot::{Mutex, RwLock};
use piggyback_core::datetime::{
    format_rfc1123, parse_rfc1123, timestamp_from_unix, unix_from_timestamp, Rfc1123,
    DEFAULT_TRACE_EPOCH_UNIX,
};
use piggyback_core::filter::{ProxyFilter, PIGGY_FILTER_HEADER};
use piggyback_core::proxy::{classify_element, ElementAction};
use piggyback_core::report::{HitReporter, PIGGY_REPORT_HEADER};
use piggyback_core::rpv::RpvTable;
use piggyback_core::table::ResourceTable;
use piggyback_core::types::{DurationMs, ResourceId, Timestamp};
use piggyback_core::wire::{decode_p_volume, P_VOLUME_HEADER};
use piggyback_httpwire::{
    encode_stream_head, write_all_parts, Body, BodyReader, BodyWriter, ConnScratch, HeaderMap,
    HttpError, Request, Response, StreamFraming,
};
use piggyback_webcache::{CacheEntry, PolicyKind, ShardedBodyStore, ShardedCache};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Admin path the proxy answers locally (never forwarded upstream).
pub const METRICS_PATH: &str = "/__pb/metrics";

/// How many client sources the per-source RPV table tracks before
/// evicting the stalest.
const RPV_MAX_SOURCES: usize = 256;

/// How the proxy synchronizes its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// The original model: every request serializes through one global
    /// lock and every upstream fetch opens a fresh origin connection.
    /// Kept as the A/B baseline for the sharded path.
    Legacy,
    /// Sharded cache/bodies, read-write table, atomic stats, and a
    /// keep-alive origin connection pool.
    Sharded {
        /// Cache/body shard count (clamped to at least 1).
        shards: usize,
    },
}

/// How the proxy reads requests and writes responses on the client side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// The seed wire path: per-request parser allocations
    /// (`Request::read`), an owned byte copy of the cached body per hit,
    /// and responses dribbled through a `BufWriter`. Kept as the A/B
    /// baseline (`pb-proxy --buffered-wire`, `proxy-ab`'s `base` cells).
    Buffered,
    /// Scratch-threaded parsing (`Request::read_into`), shared-`Body`
    /// cache hits served without memcpy, and single-vectored-write
    /// response assembly. Allocation-free per cached-hit request once the
    /// connection's buffers are warm.
    #[default]
    ZeroCopy,
}

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// 0 picks an ephemeral port.
    pub port: u16,
    pub origin: SocketAddr,
    pub capacity_bytes: u64,
    /// The freshness interval Δ.
    pub freshness: DurationMs,
    /// Content-oriented filter template sent upstream.
    pub filter: ProxyFilter,
    /// RPV list bounds (length, timeout); `None` disables RPV.
    pub rpv: Option<(usize, DurationMs)>,
    pub policy: PolicyKind,
    /// Report cache-served accesses upstream via `Piggy-report`
    /// (Section 5 extension).
    pub report_hits: bool,
    /// Locking/pooling model (see [`ConcurrencyMode`]).
    pub mode: ConcurrencyMode,
    /// Client-side wire handling (see [`WireMode`]).
    pub wire: WireMode,
    /// Idle origin connections the pool retains (Sharded mode only).
    pub pool_max_idle: usize,
    /// Accept-loop worker/queue sizing. In reactor mode `serve.workers`
    /// sizes the offload pool (blocking upstream exchanges) instead.
    pub serve: ServeOptions,
    /// Serve the Prometheus admin endpoint `GET /__pb/metrics`
    /// (`pb-proxy --no-metrics` disables it; disabled scrapes get a local
    /// 404, never a proxied fetch).
    pub metrics: bool,
    /// Client-side I/O engine. [`IoMode::Reactor`] (Linux only; silently
    /// falls back to `Threaded` elsewhere) multiplexes connections on an
    /// epoll readiness loop instead of pinning a worker thread each.
    /// Reactor mode always uses the zero-copy serializers, so its wire
    /// bytes are identical to `WireMode::ZeroCopy`.
    pub io: IoMode,
    /// Reactor-mode idle/read deadline for client connections.
    pub reactor_idle_timeout: std::time::Duration,
    /// Reactor-mode per-attempt deadline for a nonblocking upstream
    /// exchange (`--upstream-timeout-secs`); a stalled origin leg is
    /// killed when it fires (retried once, then 502). Also the idle
    /// reaping horizon for parked upstream connections.
    pub upstream_timeout: std::time::Duration,
    /// Maximum concurrent speculative fetches acting on piggybacked
    /// `PrefetchCandidate` elements; 0 disables the prefetcher (the seed
    /// behavior: candidates are only counted). Sharded mode only — the
    /// prefetcher fetches through the origin pool.
    pub prefetch_budget: usize,
    /// Send `Piggy-push: accept` upstream and cache full volume-member
    /// responses a `--push` origin streams after the main response (the
    /// server-push baseline the paper's Section 5 compares against).
    pub accept_push: bool,
    /// Response bodies at or above this many bytes take the streaming
    /// cut-through path on a miss: relayed to the client in bounded
    /// segments as they arrive from the origin, never materialized or
    /// cached whole. 0 disables streaming (every miss buffers, the seed
    /// behavior).
    pub stream_threshold: usize,
    /// Leading bytes of each streamed object teed into the body store as
    /// a [`Body::prefix`] entry, so a repeat request serves the head at
    /// cache-hit latency while only the suffix streams from the origin.
    /// 0 disables prefix caching.
    pub prefix_bytes: usize,
    /// Largest client request body accepted; beyond it the proxy answers
    /// `413 Payload Too Large` instead of buffering without bound.
    pub client_body_cap: usize,
}

impl ProxyConfig {
    pub fn new(origin: SocketAddr) -> Self {
        ProxyConfig {
            port: 0,
            origin,
            capacity_bytes: 32 * 1024 * 1024,
            freshness: DurationMs::from_secs(60),
            filter: ProxyFilter::builder().max_piggy(10).build(),
            rpv: Some((16, DurationMs::from_secs(30))),
            policy: PolicyKind::Lru,
            report_hits: true,
            mode: ConcurrencyMode::Sharded { shards: 8 },
            wire: WireMode::ZeroCopy,
            pool_max_idle: 32,
            serve: ServeOptions::default(),
            metrics: true,
            io: IoMode::default(),
            reactor_idle_timeout: std::time::Duration::from_secs(120),
            upstream_timeout: std::time::Duration::from_secs(30),
            prefetch_budget: 0,
            accept_push: false,
            stream_threshold: 256 * 1024,
            prefix_bytes: 64 * 1024,
            client_body_cap: piggyback_httpwire::parse::MAX_BODY,
        }
    }
}

/// Shared proxy state; every piece locks independently (or not at all).
/// `pub(crate)` because the prefetch workers ([`crate::prefetch`]) operate
/// on the same cache/table/pool/stats the request path does.
pub(crate) struct ProxyShared {
    pub(crate) cfg: ProxyConfig,
    pub(crate) clock: Clock,
    /// Path ↔ id mapping. Grows monotonically (ids are never removed), so
    /// lookups take the read lock and only first-registrations write.
    pub(crate) table: RwLock<ResourceTable>,
    pub(crate) cache: ShardedCache,
    /// Cached bodies as shared [`Body`]s, co-sharded with `cache` via the
    /// same hash so shard i of the cache and shard i of the bodies cover
    /// the same resources. A hit clones the `Body` (a refcount bump) —
    /// the stored bytes are never copied again after the retain-time copy.
    pub(crate) bodies: ShardedBodyStore,
    /// Per-source RPV lists keyed by client peer address.
    rpv: Option<Mutex<RpvTable<SocketAddr>>>,
    reporter: Mutex<HitReporter>,
    pub(crate) stats: AtomicProxyStats,
    /// Latency histograms + piggyback-overhead accounting (lock-free).
    obs: ProxyObs,
    /// Keep-alive origin pool (Sharded mode; Legacy connects per fetch).
    pub(crate) pool: Option<ConnectionPool>,
    /// Legacy mode's whole-state serializer, held across each cache phase
    /// the way the original `Mutex<ProxyState>` was.
    global: Option<Mutex<()>>,
    /// The speculative fetch engine (`--prefetch-budget > 0`, Sharded
    /// mode only). `OnceLock` because it is started after the `Arc` is
    /// built — the workers hold a `Weak` back-reference.
    prefetcher: OnceLock<Arc<Prefetcher>>,
    /// Accept-side counters (both I/O modes), exported at the scrape.
    io_stats: Arc<IoStats>,
    /// Per-reactor-shard gauges when running in reactor mode.
    #[cfg(target_os = "linux")]
    reactor_metrics: Option<Arc<crate::reactor::ReactorMetrics>>,
    /// Injects detached upstream exchanges (speculative prefetch GETs)
    /// into the reactor shards, so speculation rides the same nonblocking
    /// upstream legs as demand misses. Set once the reactor is up;
    /// `None`/unset in threaded mode (the prefetcher then blocks on the
    /// pool as before).
    #[cfg(target_os = "linux")]
    pub(crate) upstream_submit: OnceLock<crate::reactor::ReactorSubmitter>,
}

impl ProxyShared {
    /// The filter to send upstream, with this source's RPV ids attached.
    fn filter_for(&self, source: SocketAddr, now: Timestamp) -> ProxyFilter {
        let mut filter = self.cfg.filter.clone();
        if let Some(rpv) = &self.rpv {
            filter.rpv = rpv.lock().filter_ids(&source, now);
        }
        filter
    }
}

/// A running proxy.
pub struct ProxyHandle {
    handle: ServerHandle,
    shared: Arc<ProxyShared>,
}

impl ProxyHandle {
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr
    }

    pub fn stats(&self) -> ProxyStats {
        self.shared.stats.snapshot()
    }

    /// Origin-pool counters (`None` in Legacy mode, which has no pool).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.shared.pool.as_ref().map(|p| p.stats())
    }

    /// Latency/piggyback-overhead histograms (lock-free snapshots).
    pub fn obs(&self) -> &ProxyObs {
        &self.shared.obs
    }

    /// Accept-side counters: accepts, open connections, accept backoffs.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.shared.io_stats
    }

    pub fn stop(self) {
        // Drain the speculative fetchers first so no prefetch worker is
        // mid-exchange while the listener tears down.
        if let Some(p) = self.shared.prefetcher.get() {
            p.shutdown();
        }
        self.handle.stop();
    }
}

/// Start the proxy.
pub fn start_proxy(cfg: ProxyConfig) -> io::Result<ProxyHandle> {
    let shards = match cfg.mode {
        ConcurrencyMode::Legacy => 1,
        ConcurrencyMode::Sharded { shards } => shards.max(1),
    };
    let pool = match cfg.mode {
        ConcurrencyMode::Legacy => None,
        ConcurrencyMode::Sharded { .. } => Some(ConnectionPool::new(cfg.origin, cfg.pool_max_idle)),
    };
    let global = match cfg.mode {
        ConcurrencyMode::Legacy => Some(Mutex::new(())),
        ConcurrencyMode::Sharded { .. } => None,
    };
    let io_stats = Arc::new(IoStats::default());
    #[cfg(target_os = "linux")]
    let reactor_metrics = match cfg.io {
        IoMode::Reactor { reactors } => Some(Arc::new(crate::reactor::ReactorMetrics::new(
            crate::reactor::resolve_reactors(reactors),
        ))),
        IoMode::Threaded => None,
    };
    let shared = Arc::new(ProxyShared {
        clock: Clock::new(),
        table: RwLock::new(ResourceTable::new()),
        cache: ShardedCache::new(cfg.capacity_bytes, shards, cfg.policy),
        // Prefix heads live under their own byte economy: an eighth of
        // the metadata cache's capacity, split per shard, retained by
        // recency (hits and piggybacked volume mentions both refresh).
        bodies: ShardedBodyStore::with_prefix_budget(shards, cfg.capacity_bytes / 8),
        rpv: cfg
            .rpv
            .map(|(len, t)| Mutex::new(RpvTable::new(RPV_MAX_SOURCES, len, t))),
        reporter: Mutex::new(HitReporter::new()),
        stats: AtomicProxyStats::new(),
        obs: ProxyObs::default(),
        pool,
        global,
        prefetcher: OnceLock::new(),
        io_stats: Arc::clone(&io_stats),
        #[cfg(target_os = "linux")]
        reactor_metrics: reactor_metrics.clone(),
        #[cfg(target_os = "linux")]
        upstream_submit: OnceLock::new(),
        cfg,
    });
    if shared.cfg.prefetch_budget > 0 && shared.pool.is_some() {
        let p = Prefetcher::start(shared.cfg.prefetch_budget, Arc::downgrade(&shared));
        let _ = shared.prefetcher.set(Arc::new(p));
    }
    #[cfg(target_os = "linux")]
    if let Some(metrics) = reactor_metrics {
        let opts = crate::reactor::ReactorOptions {
            offload_workers: shared.cfg.serve.workers.max(1),
            idle_timeout: shared.cfg.reactor_idle_timeout,
            upstream_timeout: shared.cfg.upstream_timeout,
            // The same retention knob as the threaded pool, so
            // `pool_max_idle: 0` forbids upstream keep-alives in both
            // I/O modes (per reactor shard here, globally there).
            upstream_max_idle: shared.cfg.pool_max_idle,
        };
        let svc = Arc::new(ProxySvc {
            shared: Arc::clone(&shared),
        });
        let handle =
            crate::reactor::serve_reactor(shared.cfg.port, "proxy", opts, io_stats, metrics, svc)?;
        // Speculative prefetch GETs ride the reactor's nonblocking
        // upstream legs instead of blocking a worker on the pool.
        if shared.pool.is_some() {
            if let Some(sub) = handle.reactor_submitter() {
                let _ = shared.upstream_submit.set(sub);
            }
        }
        return Ok(ProxyHandle { handle, shared });
    }
    let shared2 = Arc::clone(&shared);
    let handle = serve_with_stats(
        shared.cfg.port,
        "proxy",
        shared.cfg.serve,
        io_stats,
        move |stream| {
            let _ = handle_connection(stream, &shared2);
        },
    )?;
    Ok(ProxyHandle { handle, shared })
}

/// The proxy as a [`ReactorService`](crate::reactor::ReactorService):
/// cache hits, metrics, and synthesized errors serialize inline on the
/// reactor thread; upstream fetches become nonblocking
/// [`UpstreamPlan`](crate::reactor::UpstreamPlan)s driven on the same
/// epoll loop — no offload-pool hop. The offload pool survives only for
/// genuinely blocking work: Legacy mode's global-lock exchanges,
/// `--accept-push` (which drains pushed responses synchronously off the
/// origin stream), and demand requests that must park to join an
/// in-flight speculative fetch.
#[cfg(target_os = "linux")]
struct ProxySvc {
    shared: Arc<ProxyShared>,
}

/// A reactor shard's lock-free affine L1: the last fresh hits this shard
/// served, revalidated by the cache's global
/// [`mutation_epoch`](piggyback_webcache::ShardedCache::mutation_epoch)
/// so a repeat hit costs zero shard-lock acquisitions while the cache is
/// quiescent. An entry is serveable only while (a) the mutation epoch
/// still equals the epoch certified around the locked lookup that filled
/// it, and (b) the entry is still fresh by the shared clock. Any cache
/// mutation anywhere invalidates the whole L1 — conservative, but what
/// makes the shortcut correct without per-entry coherence.
///
/// Accepted divergence from the locked path: an L1 hit does not touch
/// LRU recency (the filling lookup already did, and eviction order is
/// not part of the wire contract). Wire bytes are identical.
#[cfg(target_os = "linux")]
pub(crate) struct ProxyCtx {
    l1: std::collections::HashMap<String, L1Hit>,
}

#[cfg(target_os = "linux")]
struct L1Hit {
    body: Body,
    lm: Timestamp,
    expires: Timestamp,
    epoch: u64,
}

/// Paths the affine L1 retains before clearing itself wholesale — a tiny
/// bound; the point is repeat hits on a shard's hot set, not a second
/// cache tier.
#[cfg(target_os = "linux")]
const L1_CAP: usize = 1024;

#[cfg(target_os = "linux")]
impl crate::reactor::ReactorService for ProxySvc {
    type Ctx = ProxyCtx;

    fn make_ctx(&self, _shard: usize) -> ProxyCtx {
        ProxyCtx {
            l1: std::collections::HashMap::new(),
        }
    }

    fn handle(
        &self,
        req: &Request,
        peer: SocketAddr,
        ctx: &mut ProxyCtx,
        scratch: &mut ConnScratch,
        out: &mut Vec<u8>,
    ) -> io::Result<crate::reactor::Served> {
        use crate::reactor::Served;
        let shared = &self.shared;
        if req.method == "GET" {
            let path = strip_origin_form(&req.target);
            if path != METRICS_PATH {
                enum L1Verdict {
                    Serve(Body, Timestamp),
                    Drop,
                    Miss,
                }
                let start = Instant::now();
                let verdict = match ctx.l1.get(path) {
                    Some(hit) if hit.epoch == shared.cache.mutation_epoch() => {
                        if shared.clock.now() < hit.expires {
                            L1Verdict::Serve(hit.body.clone(), hit.lm)
                        } else {
                            // Expired: the locked path counts the
                            // validation; drop the stale copy.
                            L1Verdict::Drop
                        }
                    }
                    Some(_) => L1Verdict::Drop,
                    None => L1Verdict::Miss,
                };
                match verdict {
                    L1Verdict::Serve(body, lm) => {
                        let stats = &shared.stats;
                        stats.requests.fetch_add(1, Relaxed);
                        stats.cache_hits.fetch_add(1, Relaxed);
                        stats.fresh_hits.fetch_add(1, Relaxed);
                        stats.affine_hits.fetch_add(1, Relaxed);
                        if shared.cfg.report_hits {
                            shared.reporter.lock().record_hit(path);
                        }
                        shared.obs.fresh_hit.record(start.elapsed());
                        write_hit(out, scratch, &body, lm)?;
                        return Ok(Served::Inline);
                    }
                    L1Verdict::Drop => {
                        ctx.l1.remove(path);
                    }
                    L1Verdict::Miss => {}
                }
            }
        }
        let epoch = shared.cache.mutation_epoch();
        match plan_request(req, shared, peer) {
            Step::Reply(Reply::Hit { body, lm, expires }) => {
                // Fill the L1 only when nothing mutated around the locked
                // lookup — then `epoch` certifies the snapshot is current.
                if shared.cache.mutation_epoch() == epoch {
                    if ctx.l1.len() >= L1_CAP {
                        ctx.l1.clear();
                    }
                    ctx.l1.insert(
                        strip_origin_form(&req.target).to_owned(),
                        L1Hit {
                            body: body.clone(),
                            lm,
                            expires,
                            epoch,
                        },
                    );
                }
                write_hit(out, scratch, &body, lm)?;
                Ok(Served::Inline)
            }
            Step::Reply(Reply::Full(resp)) => {
                resp.write_with(out, scratch)?;
                Ok(Served::Inline)
            }
            Step::Upstream(job) => self.plan_upstream(job, scratch, out),
        }
    }
}

#[cfg(target_os = "linux")]
impl ProxySvc {
    /// The blocking fallback: ship the whole exchange (phases 2+3) to the
    /// offload pool, exactly as every reactor-mode miss did before the
    /// nonblocking upstream existed.
    fn offload(&self, job: UpstreamJob) -> crate::reactor::Served {
        let shared = Arc::clone(&self.shared);
        crate::reactor::Served::Offload(Box::new(move |scratch, out| {
            let resp = complete_upstream(&shared, job, scratch);
            resp.write_with(out, scratch)
        }))
    }

    fn plan_upstream(
        &self,
        job: UpstreamJob,
        scratch: &mut ConnScratch,
        out: &mut Vec<u8>,
    ) -> io::Result<crate::reactor::Served> {
        use crate::reactor::Served;
        let shared = &self.shared;
        // Legacy mode serializes behind the global lock and accept-push
        // drains pushed responses synchronously mid-exchange; both stay
        // on the offload pool.
        if shared.pool.is_none() || shared.cfg.accept_push {
            return Ok(self.offload(job));
        }
        // A plain miss racing a speculative fetch of the same path:
        // cancel a still-queued job outright, serve a landed one, but
        // park (offload) to join one already on the wire — the reactor
        // thread itself must never block.
        if job.validate_lm.is_none() {
            if let Some(p) = shared.prefetcher.get() {
                match p.try_claim(shared, &job.path) {
                    prefetch::TryClaim::Fetch => {}
                    prefetch::TryClaim::InFlight => return Ok(self.offload(job)),
                    prefetch::TryClaim::Resolved => {
                        if let Some(served) = serve_settled_speculation(shared, &job, scratch, out)?
                        {
                            return Ok(served);
                        }
                    }
                }
            }
        }
        // Streaming cut-through (mirrors the threaded engine): a retained
        // prefix serves its head right now — the client's first byte never
        // waits on the origin — and the suffix relays in behind it.
        if reactor_streaming_eligible(shared, &job) {
            let hit = shared
                .table
                .read()
                .lookup(&job.path)
                .and_then(|r| shared.bodies.get_prefix(r).map(|b| (r, b)));
            if let Some((r, head)) = hit {
                let total = head.total_len();
                let head_len = head.len();
                // Same bytes as the threaded `serve_prefix_hit` head; the
                // reactor flushes `out` even while AwaitingUpstream, so
                // TTFB is one pump away.
                write!(
                    out,
                    "HTTP/1.1 200 OK\r\nX-Cache: PREFIX\r\nContent-Length: {total}\r\n\r\n"
                )?;
                out.extend_from_slice(head.as_slice());
                return Ok(Served::Upstream(suffix_relay_plan(
                    Arc::clone(shared),
                    job,
                    r,
                    total,
                    head_len,
                    scratch,
                )));
            }
        }
        Ok(Served::Upstream(first_exchange_plan(
            Arc::clone(shared),
            job,
            scratch,
        )))
    }
}

/// Reactor-mode streaming eligibility: the same gates as the threaded
/// [`streaming_eligible`] minus the pool check — `plan_upstream` already
/// routed legacy mode (no pool) and `--accept-push` to the offload pool,
/// and the reactor owns its origin connections.
#[cfg(target_os = "linux")]
fn reactor_streaming_eligible(shared: &ProxyShared, job: &UpstreamJob) -> bool {
    shared.cfg.stream_threshold > 0
        && job.validate_lm.is_none()
        && !shared.cfg.accept_push
        && shared.prefetcher.get().is_none()
}

/// The reactor plan relaying a prefix hit's suffix: a plain CL-framed GET
/// (no `TE: chunked`, no `Piggy-filter` — same request as the threaded
/// suffix refetch) whose declared length must equal the recorded total,
/// or the object changed underneath the prefix and the relay fails with a
/// mismatch. `skip` drops the head bytes the client already has. Retry is
/// safe until the relay engages: only the cache-served head is out.
#[cfg(target_os = "linux")]
fn suffix_relay_plan(
    shared: Arc<ProxyShared>,
    job: UpstreamJob,
    r: ResourceId,
    total: usize,
    head_len: usize,
    scratch: &mut ConnScratch,
) -> crate::reactor::UpstreamPlan {
    use crate::reactor::{StreamSpec, UpstreamNext, UpstreamOutcome, UpstreamPlan};
    let mut req = Request::new("GET", &job.path);
    req.headers.insert("Host", "origin");
    let mut request = Vec::with_capacity(128);
    req.write_with(&mut request, scratch)
        .expect("serializing to a Vec cannot fail");
    let origin = shared.cfg.origin;
    let retry_stats = Arc::clone(&shared);
    UpstreamPlan {
        origin,
        request,
        retry: Box::new(move || {
            retry_stats.stats.upstream_retries.fetch_add(1, Relaxed);
        }),
        stream: Some(StreamSpec {
            threshold: 0,
            prefix_bytes: 0,
            skip: head_len,
            expect_total: Some(total),
            // The client head went out at plan time; nothing more to send
            // when the relay engages.
            head: Box::new(|_resp, _scratch, _out| Ok(())),
        }),
        finish: Box::new(move |_scratch, _out, outcome| match outcome {
            UpstreamOutcome::Streamed { total, .. } => {
                shared.stats.cache_hits.fetch_add(1, Relaxed);
                shared.stats.prefix_hits.fetch_add(1, Relaxed);
                // Range-free refetch: the origin resent the whole object
                // (bandwidth unchanged; TTFB is what the prefix buys).
                shared
                    .stats
                    .bytes_from_origin
                    .fetch_add(total as u64, Relaxed);
                shared.obs.prefix_hit.record(job.start.elapsed());
                Ok(UpstreamNext::Done)
            }
            UpstreamOutcome::StreamFailed { mismatch } => {
                if mismatch {
                    // New length or status: the head already sent is
                    // stale. Drop the poisoned prefix; the next request
                    // misses and re-primes.
                    shared.bodies.remove(r);
                }
                count_relay_error(&shared, &job);
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "suffix relay failed",
                ))
            }
            // `expect_total` forces every parsed head through the relay
            // decision, so a buffered Response cannot arrive; Failed
            // (dial error, pre-engage I/O death) is terminal too — the
            // prefix head is already on the wire, no 502 may follow it.
            UpstreamOutcome::Failed | UpstreamOutcome::Response(_) => {
                count_relay_error(&shared, &job);
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "suffix exchange failed",
                ))
            }
        }),
    }
}

/// Serve the entry a just-landed speculation installed (the reactor
/// analog of [`complete_upstream`]'s `claim_or_join == true` path);
/// `None` when the speculation resolved without a serveable entry and the
/// demand fetch should proceed.
#[cfg(target_os = "linux")]
fn serve_settled_speculation(
    shared: &Arc<ProxyShared>,
    job: &UpstreamJob,
    scratch: &mut ConnScratch,
    out: &mut Vec<u8>,
) -> io::Result<Option<crate::reactor::Served>> {
    let now = shared.clock.now();
    let path = job.path.as_str();
    let cached = shared
        .table
        .read()
        .lookup(path)
        .and_then(|r| shared.cache.lookup(r, now).map(|snap| (r, snap)));
    let Some((r, snap)) = cached else {
        return Ok(None);
    };
    // The lookup flipped `used`; settle the speculation even if the body
    // vanishes before we can serve it.
    prefetch::note_speculative_hit(&shared.stats, &snap);
    let Some(body) = shared.bodies.get(r).filter(|b| !b.is_prefix()) else {
        return Ok(None);
    };
    shared.stats.cache_hits.fetch_add(1, Relaxed);
    shared.stats.fresh_hits.fetch_add(1, Relaxed);
    if shared.cfg.report_hits {
        shared.reporter.lock().record_hit(path);
    }
    shared.obs.fresh_hit.record(job.start.elapsed());
    write_hit(out, scratch, &body, snap.last_modified)?;
    Ok(Some(crate::reactor::Served::Inline))
}

/// Serialize the upstream GET exactly as [`exchange_upstream`] puts it on
/// the wire — same serializer, same header order — so the origin sees
/// identical bytes from both I/O modes.
#[cfg(target_os = "linux")]
fn serialize_upstream_request(
    path: &str,
    validate_lm: Option<Timestamp>,
    filter: &ProxyFilter,
    report: Option<&str>,
    scratch: &mut ConnScratch,
) -> Vec<u8> {
    let mut req = Request::new("GET", path);
    req.headers.insert("Host", "origin");
    req.headers.insert("TE", "chunked");
    req.headers
        .insert(PIGGY_FILTER_HEADER, &filter.to_header_value());
    // `accept_push` never reaches the nonblocking path (it needs the
    // synchronous pushed-response drain), so no `Piggy-push` here.
    if let Some(r) = report {
        req.headers.insert(PIGGY_REPORT_HEADER, r);
    }
    if let Some(lm) = validate_lm {
        let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
        req.headers
            .insert("If-Modified-Since", &format_rfc1123(unix));
    }
    let mut buf = Vec::with_capacity(256);
    req.write_with(&mut buf, scratch)
        .expect("serializing to a Vec cannot fail");
    buf
}

/// The [`StreamSpec`] a reactor-mode demand miss carries when streaming
/// is enabled: engage on CL-framed 200s at or above the threshold, tee
/// the configured prefix, and serialize the same client head as the
/// threaded cut-through. Chunked origin responses stay buffered in
/// reactor mode — the piggyback rides chunked trailers, and those bodies
/// fit the buffered exchange; the threaded engine covers chunked
/// streaming.
#[cfg(target_os = "linux")]
fn reactor_stream_spec(
    shared: &Arc<ProxyShared>,
    job: &UpstreamJob,
) -> Option<crate::reactor::StreamSpec> {
    use crate::reactor::StreamSpec;
    if !reactor_streaming_eligible(shared, job) {
        return None;
    }
    let sh = Arc::clone(shared);
    Some(StreamSpec {
        threshold: shared.cfg.stream_threshold,
        prefix_bytes: shared.cfg.prefix_bytes,
        skip: 0,
        expect_total: None,
        head: Box::new(move |resp, _scratch, out| {
            // Same head as the threaded `stream_miss`: `Last-Modified` +
            // `X-Cache: MISS`, Content-Length framing (the relay only
            // engages on CL-framed 200s).
            let now = sh.clock.now();
            let lm = resp
                .headers
                .get("Last-Modified")
                .and_then(parse_rfc1123)
                .map(|u| timestamp_from_unix(u, DEFAULT_TRACE_EPOCH_UNIX))
                .unwrap_or(now);
            let mut client_head = Response::new(200);
            let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
            client_head
                .headers
                .insert("Last-Modified", &format_rfc1123(unix));
            client_head.headers.insert("X-Cache", "MISS");
            let total = piggyback_httpwire::parse::content_length(&resp.headers)
                .ok()
                .flatten()
                .expect("relay engages only with a declared length");
            encode_stream_head(&client_head, StreamFraming::Length(total), out);
            Ok(())
        }),
    })
}

/// Build the nonblocking plan for a miss/validation. The reactor dials
/// (or reuses) a shard-owned origin connection and runs the continuation
/// on the reactor thread once the exchange resolves; the continuation
/// replays [`complete_upstream`]'s phase 3 — same counters, same
/// piggyback order, same histograms — so the two I/O modes stay
/// observationally identical.
#[cfg(target_os = "linux")]
fn first_exchange_plan(
    shared: Arc<ProxyShared>,
    job: UpstreamJob,
    scratch: &mut ConnScratch,
) -> crate::reactor::UpstreamPlan {
    use crate::reactor::{UpstreamNext, UpstreamOutcome, UpstreamPlan};
    let request = serialize_upstream_request(
        &job.path,
        job.validate_lm,
        &job.filter,
        job.report.as_deref(),
        scratch,
    );
    let origin = shared.cfg.origin;
    let retry_stats = Arc::clone(&shared);
    let stream = reactor_stream_spec(&shared, &job);
    UpstreamPlan {
        origin,
        request,
        retry: Box::new(move || {
            retry_stats.stats.upstream_retries.fetch_add(1, Relaxed);
        }),
        stream,
        finish: Box::new(move |scratch, out, outcome| {
            let resp = match outcome {
                UpstreamOutcome::Failed => {
                    shared.stats.upstream_errors.fetch_add(1, Relaxed);
                    shared.obs.error.record(job.start.elapsed());
                    Response::new(502).write_with(out, scratch)?;
                    return Ok(UpstreamNext::Done);
                }
                UpstreamOutcome::Streamed {
                    head,
                    total,
                    prefix,
                } => {
                    // The relay already delivered head + body; this is the
                    // threaded `stream_miss` completion tail: counters,
                    // registration, prefix retention, piggyback order.
                    let now = shared.clock.now();
                    let lm = head
                        .headers
                        .get("Last-Modified")
                        .and_then(parse_rfc1123)
                        .map(|u| timestamp_from_unix(u, DEFAULT_TRACE_EPOCH_UNIX))
                        .unwrap_or(now);
                    shared.stats.full_fetches.fetch_add(1, Relaxed);
                    shared.stats.streamed_misses.fetch_add(1, Relaxed);
                    shared
                        .stats
                        .bytes_from_origin
                        .fetch_add(total as u64, Relaxed);
                    let r = shared
                        .table
                        .write()
                        .register_path(&job.path, total as u64, lm);
                    if !prefix.is_empty() && prefix.len() < total {
                        shared.bodies.insert(r, Body::prefix(prefix, total));
                    }
                    // CL-framed responses carry no trailers, so no
                    // piggyback rode this exchange; process the empty
                    // message for ordering parity with the threaded path.
                    process_piggyback(&shared, &head, job.source, now);
                    shared.obs.full_fetch.record(job.start.elapsed());
                    return Ok(UpstreamNext::Done);
                }
                UpstreamOutcome::StreamFailed { .. } => {
                    // Bytes already reached the client: no 502 may follow.
                    // Count the terminal outcome and truncate.
                    count_relay_error(&shared, &job);
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "streaming relay failed",
                    ));
                }
                UpstreamOutcome::Response(resp) => resp,
            };
            // Phase 3, reactor edition.
            let now = shared.clock.now();
            let delta = shared.cfg.freshness;
            match resp.status {
                304 => {
                    let r = shared.table.read().lookup(&job.path);
                    let body = r.and_then(|r| {
                        shared.cache.freshen(r, now + delta);
                        shared.bodies.get(r)
                    });
                    match body {
                        Some(body) => {
                            shared.stats.not_modified.fetch_add(1, Relaxed);
                            let lm = job.validate_lm.unwrap_or(Timestamp::ZERO);
                            let result = cached_response(&body, lm, "VALIDATED");
                            process_piggyback(&shared, &resp, job.source, now);
                            shared.obs.not_modified.record(job.start.elapsed());
                            result.write_with(out, scratch)?;
                            Ok(UpstreamNext::Done)
                        }
                        None => {
                            // The 304 validated an entry whose body is
                            // gone (evicted mid-flight): chain an
                            // unconditional refetch — same filter, no
                            // report, no If-Modified-Since — exactly like
                            // the threaded fallback.
                            Ok(UpstreamNext::Again(refetch_plan(
                                shared, job, resp, now, scratch,
                            )))
                        }
                    }
                }
                200 => {
                    let result = store_full_response(&shared, &job.path, &resp, now);
                    process_piggyback(&shared, &resp, job.source, now);
                    shared.obs.full_fetch.record(job.start.elapsed());
                    result.write_with(out, scratch)?;
                    Ok(UpstreamNext::Done)
                }
                _ => {
                    shared.stats.upstream_passthrough.fetch_add(1, Relaxed);
                    let mut result = Response::new(resp.status);
                    result.body = resp.body.clone();
                    process_piggyback(&shared, &resp, job.source, now);
                    shared.obs.passthrough.record(job.start.elapsed());
                    result.write_with(out, scratch)?;
                    Ok(UpstreamNext::Done)
                }
            }
        }),
    }
}

/// The chained second exchange for a 304 whose body was evicted.
/// `piggy_now` is the first continuation's phase-3 timestamp: the
/// threaded path processes both responses' piggybacks with it, so the
/// reactor does too. The original 304's piggyback is processed even when
/// the refetch fails.
#[cfg(target_os = "linux")]
fn refetch_plan(
    shared: Arc<ProxyShared>,
    job: UpstreamJob,
    original: Response,
    piggy_now: Timestamp,
    scratch: &mut ConnScratch,
) -> crate::reactor::UpstreamPlan {
    use crate::reactor::{UpstreamNext, UpstreamOutcome, UpstreamPlan};
    let request = serialize_upstream_request(&job.path, None, &job.filter, None, scratch);
    let origin = shared.cfg.origin;
    let retry_stats = Arc::clone(&shared);
    UpstreamPlan {
        origin,
        request,
        retry: Box::new(move || {
            retry_stats.stats.upstream_retries.fetch_add(1, Relaxed);
        }),
        finish: Box::new(move |scratch, out, outcome| {
            let mut refetch_resp = None;
            let (result, hist) = match outcome {
                UpstreamOutcome::Response(r2) if r2.status == 200 => {
                    let now = shared.clock.now();
                    let result = store_full_response(&shared, &job.path, &r2, now);
                    refetch_resp = Some(r2);
                    (result, &shared.obs.full_fetch)
                }
                UpstreamOutcome::Response(r2) => {
                    shared.stats.upstream_passthrough.fetch_add(1, Relaxed);
                    let mut result = Response::new(r2.status);
                    result.body = r2.body.clone();
                    refetch_resp = Some(r2);
                    (result, &shared.obs.passthrough)
                }
                UpstreamOutcome::Failed => {
                    shared.stats.upstream_errors.fetch_add(1, Relaxed);
                    (Response::new(502), &shared.obs.error)
                }
                UpstreamOutcome::Streamed { .. } | UpstreamOutcome::StreamFailed { .. } => {
                    unreachable!("refetch plan carries no StreamSpec")
                }
            };
            process_piggyback(&shared, &original, job.source, piggy_now);
            if let Some(r2) = &refetch_resp {
                process_piggyback(&shared, r2, job.source, piggy_now);
            }
            hist.record(job.start.elapsed());
            result.write_with(out, scratch)?;
            Ok(UpstreamNext::Done)
        }),
        // The refetch materializes a cacheable body; never streamed.
        stream: None,
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<ProxyShared>) -> io::Result<()> {
    let source = stream
        .peer_addr()
        .unwrap_or_else(|_| SocketAddr::from(([0, 0, 0, 0], 0)));
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut scratch = ConnScratch::new();
    match shared.cfg.wire {
        WireMode::ZeroCopy => {
            // Steady state allocates nothing per request: the request is
            // parsed into reused buffers, a hit clones the shared body
            // (refcount bump), and the response head is formatted into
            // the scratch and emitted together with the referenced body
            // bytes in one vectored write.
            let mut writer = stream;
            let mut req = Request::empty();
            loop {
                match req.read_into_capped(&mut reader, &mut scratch, shared.cfg.client_body_cap) {
                    Ok(()) => {}
                    Err(e) if e.body_too_large() => {
                        // An oversized request body is the client's
                        // mistake, not a dead connection: say so (413)
                        // before closing, instead of silently hanging up
                        // mid-upload.
                        let _ = Response::new(413).write_with(&mut writer, &mut scratch);
                        return Ok(());
                    }
                    Err(_) => return Ok(()),
                }
                let keep = req.keep_alive();
                match plan_request(&req, shared, source) {
                    Step::Reply(Reply::Hit { body, lm, .. }) => {
                        write_hit(&mut writer, &mut scratch, &body, lm)?
                    }
                    Step::Reply(Reply::Full(resp)) => resp.write_with(&mut writer, &mut scratch)?,
                    Step::Upstream(job) if streaming_eligible(shared, &job) => {
                        stream_exchange(shared, job, &mut writer, &mut scratch)?
                    }
                    Step::Upstream(job) => {
                        let resp = complete_upstream(shared, job, &mut scratch);
                        resp.write_with(&mut writer, &mut scratch)?
                    }
                }
                if !keep {
                    return Ok(());
                }
            }
        }
        WireMode::Buffered => {
            let mut writer = BufWriter::new(stream);
            loop {
                // Seed-cost parse (fresh allocations per request), but
                // honoring the configured client body cap.
                let req = {
                    let mut req = Request::empty();
                    let mut rs = ConnScratch::new();
                    match req.read_into_capped(&mut reader, &mut rs, shared.cfg.client_body_cap) {
                        Ok(()) => req,
                        Err(e) if e.body_too_large() => {
                            let _ = Response::new(413).write(&mut writer);
                            return Ok(());
                        }
                        Err(_) => return Ok(()),
                    }
                };
                let keep = req.keep_alive();
                let resp = match handle_request(&req, shared, source, &mut scratch) {
                    // Replicate the seed hit cost: an owned copy of the
                    // cached bytes into the response.
                    Reply::Hit { body, lm, .. } => {
                        cached_response(&Body::from(body.as_slice()), lm, "HIT")
                    }
                    Reply::Full(resp) => resp,
                };
                resp.write(&mut writer)?;
                if !keep {
                    return Ok(());
                }
            }
        }
    }
}

/// Decoded-payload bytes each streaming relay segment targets before the
/// bytes move downstream (the origin-side `BufReader` can top a segment
/// up by at most its own buffer). Bounds proxy memory per in-flight
/// relay: the whole body is never resident.
const STREAM_SEGMENT: usize = 16 * 1024;

/// Whether `job` may take the streaming cut-through path: plain demand
/// misses only. Validations stay buffered (a 304 needs the full-response
/// exchange), Legacy mode has no pool to keep suffix connections on,
/// `--accept-push` drains pushed responses synchronously off the origin
/// stream mid-exchange, and an active prefetcher's claim/join protocol
/// expects every miss to materialize a cacheable body — all of those
/// keep the buffered path.
fn streaming_eligible(shared: &ProxyShared, job: &UpstreamJob) -> bool {
    shared.cfg.stream_threshold > 0
        && job.validate_lm.is_none()
        && shared.pool.is_some()
        && !shared.cfg.accept_push
        && shared.prefetcher.get().is_none()
}

/// A miss on the streaming path: probe for a retained prefix first (serve
/// the head immediately, relay only the suffix), else run the streaming
/// miss exchange. An `Err` from here means origin-derived bytes already
/// reached the client and the transfer cannot be completed — the caller
/// drops the connection, the only honest signal left (a `Content-Length`
/// client sees the truncation; a chunked client sees the missing terminal
/// chunk).
fn stream_exchange<W: Write>(
    shared: &Arc<ProxyShared>,
    job: UpstreamJob,
    w: &mut W,
    scratch: &mut ConnScratch,
) -> io::Result<()> {
    let prefix = shared
        .table
        .read()
        .lookup(&job.path)
        .and_then(|r| shared.bodies.get_prefix(r).map(|b| (r, b)));
    match prefix {
        Some((r, head)) => serve_prefix_hit(shared, job, r, head, w, scratch),
        None => stream_miss(shared, job, w, scratch),
    }
}

/// Append the leading bytes of `seg` into `prefix` until it holds `want`.
fn tee_prefix(prefix: &mut Vec<u8>, want: usize, seg: &[u8]) {
    if prefix.len() < want {
        let take = (want - prefix.len()).min(seg.len());
        prefix.extend_from_slice(&seg[..take]);
    }
}

/// Serve a prefix hit: the retained head goes out immediately — no origin
/// round trip gates the client's first byte, which is the whole TTFB win —
/// then the suffix is refetched over the keep-alive pool and relayed. The
/// refetch is a plain GET (no `TE: chunked`, no `Piggy-filter`), so the
/// origin answers with `Content-Length` framing and no piggyback, and the
/// declared length validates the prefix against the recorded total: any
/// mismatch means the object changed underneath the prefix, which is then
/// dropped as stale.
fn serve_prefix_hit<W: Write>(
    shared: &Arc<ProxyShared>,
    job: UpstreamJob,
    r: ResourceId,
    head: Body,
    w: &mut W,
    scratch: &mut ConnScratch,
) -> io::Result<()> {
    let pool = shared.pool.as_ref().expect("streaming requires the pool");
    let total = head.total_len();
    let head_len = head.len();
    scratch.out.clear();
    write!(
        scratch.out,
        "HTTP/1.1 200 OK\r\nX-Cache: PREFIX\r\nContent-Length: {total}\r\n\r\n"
    )?;
    write_all_parts(w, &[scratch.out.as_slice(), head.as_slice()])
        .map_err(|e| client_relay_err(shared, &job, e))?;
    w.flush().map_err(|e| client_relay_err(shared, &job, e))?;
    // Suffix exchange. Retrying is safe until origin payload bytes are
    // relayed: only request bytes and the cache-served head are out.
    let mut exchange = None;
    for attempt in 0..2 {
        if attempt == 1 {
            shared.stats.upstream_retries.fetch_add(1, Relaxed);
        }
        let dial = if attempt == 0 {
            pool.checkout()
        } else {
            pool.connect_fresh()
        };
        let Ok(mut c) = dial else { continue };
        let mut req = Request::new("GET", &job.path);
        req.headers.insert("Host", "origin");
        let sent = req
            .write_with(&mut c.writer, scratch)
            .map_err(HttpError::from)
            .and_then(|()| Response::read_head(&mut c.reader));
        match sent {
            Ok(resp) => {
                exchange = Some((c, resp));
                break;
            }
            Err(_) => continue,
        }
    }
    let Some((mut conn, resp)) = exchange else {
        return relay_abort(shared, &job, "suffix exchange failed");
    };
    let declared = (resp.status == 200
        && !resp.headers.list_contains("Transfer-Encoding", "chunked"))
    .then(|| piggyback_httpwire::parse::content_length(&resp.headers))
    .and_then(|cl| cl.ok().flatten());
    if declared != Some(total) {
        // New length or status: the head already sent is stale. Drop the
        // poisoned prefix with the client connection; the next request
        // misses and re-primes.
        shared.bodies.remove(r);
        return relay_abort(shared, &job, "prefix no longer matches the origin object");
    }
    // Decode `total` payload bytes, drop the first `head_len` (already
    // served from cache), forward the rest as it arrives.
    let mut reader = BodyReader::length(total);
    let mut seg = Vec::new();
    let mut seen = 0usize;
    while !reader.is_done() {
        match reader.read_segment(&mut conn.reader, &mut seg, STREAM_SEGMENT) {
            Ok(0) => break,
            Ok(n) => {
                let skip = head_len.saturating_sub(seen).min(n);
                w.write_all(&seg[skip..])
                    .map_err(|e| client_relay_err(shared, &job, e))?;
                w.flush().map_err(|e| client_relay_err(shared, &job, e))?;
                seen += n;
            }
            // The origin died mid-suffix: the prefix itself is still
            // valid (nothing contradicted it) — keep it; only the
            // transfer failed.
            Err(_) => return relay_abort(shared, &job, "origin died mid-suffix"),
        }
    }
    pool.checkin(conn);
    shared.stats.cache_hits.fetch_add(1, Relaxed);
    shared.stats.prefix_hits.fetch_add(1, Relaxed);
    // Range-free refetch: the origin resent the whole object (bandwidth
    // is unchanged; latency-to-first-byte is what the prefix buys).
    shared
        .stats
        .bytes_from_origin
        .fetch_add(total as u64, Relaxed);
    shared.obs.prefix_hit.record(job.start.elapsed());
    Ok(())
}

/// Terminal failure after relay bytes reached the client: count the one
/// terminal outcome and hand the caller an `Err` so the (now truncated)
/// client connection closes. The origin connection is dropped by the
/// caller simply by not checking it in.
fn relay_abort(shared: &ProxyShared, job: &UpstreamJob, why: &'static str) -> io::Result<()> {
    count_relay_error(shared, job);
    Err(io::Error::new(io::ErrorKind::UnexpectedEof, why))
}

/// The single terminal outcome for a mid-relay failure on *either* side.
/// `requests` was counted at plan time, so every streaming client write
/// routes its error through here exactly once — conservation
/// (`requests == Σ outcomes`) holds even when the client dies mid-body.
fn count_relay_error(shared: &ProxyShared, job: &UpstreamJob) {
    shared.stats.upstream_errors.fetch_add(1, Relaxed);
    shared.obs.error.record(job.start.elapsed());
}

/// `map_err` adapter for client-side writes inside a relay: count the
/// terminal outcome, pass the error through (the caller's `?` drops the
/// connection).
fn client_relay_err(shared: &ProxyShared, job: &UpstreamJob, e: io::Error) -> io::Error {
    count_relay_error(shared, job);
    e
}

/// A streaming-eligible miss: run the usual piggyback GET, decide from
/// the response head alone whether to cut through. Small objects and
/// non-200s fall back to the buffered store-and-serve path with exactly
/// the counters and piggyback processing [`complete_upstream`] applies;
/// large ones relay segment by segment while the first `--prefix-bytes`
/// tee into the body store as a [`Body::prefix`] entry. Streamed objects
/// are deliberately never cached whole.
fn stream_miss<W: Write>(
    shared: &Arc<ProxyShared>,
    job: UpstreamJob,
    w: &mut W,
    scratch: &mut ConnScratch,
) -> io::Result<()> {
    let pool = shared.pool.as_ref().expect("streaming requires the pool");
    let threshold = shared.cfg.stream_threshold;
    let mut exchange = None;
    for attempt in 0..2 {
        if attempt == 1 {
            shared.stats.upstream_retries.fetch_add(1, Relaxed);
        }
        let dial = if attempt == 0 {
            pool.checkout()
        } else {
            pool.connect_fresh()
        };
        let Ok(mut c) = dial else { continue };
        let mut req = Request::new("GET", &job.path);
        req.headers.insert("Host", "origin");
        req.headers.insert("TE", "chunked");
        req.headers
            .insert(PIGGY_FILTER_HEADER, &job.filter.to_header_value());
        if let Some(rep) = &job.report {
            req.headers.insert(PIGGY_REPORT_HEADER, rep);
        }
        let sent = req
            .write_with(&mut c.writer, scratch)
            .map_err(HttpError::from)
            .and_then(|()| Response::read_head(&mut c.reader));
        match sent {
            Ok(resp) => {
                exchange = Some((c, resp));
                break;
            }
            Err(_) => continue,
        }
    }
    let Some((mut conn, mut resp)) = exchange else {
        // No client byte has moved: a clean 502, like the buffered path.
        shared.stats.upstream_errors.fetch_add(1, Relaxed);
        shared.obs.error.record(job.start.elapsed());
        return Response::new(502).write_with(w, scratch);
    };
    let now = shared.clock.now();
    let chunked = resp.headers.list_contains("Transfer-Encoding", "chunked");
    let declared = if chunked {
        None
    } else {
        match piggyback_httpwire::parse::content_length(&resp.headers) {
            Ok(cl) => cl,
            Err(_) => {
                shared.stats.upstream_errors.fetch_add(1, Relaxed);
                shared.obs.error.record(job.start.elapsed());
                return Response::new(502).write_with(w, scratch);
            }
        }
    };
    let large_cl = resp.status == 200 && declared.is_some_and(|n| n >= threshold);
    let chunked_200 = resp.status == 200 && chunked;
    if !large_cl && !chunked_200 {
        // Small fixed-length 200s, bodiless statuses, passthrough errors:
        // buffer the rest and rejoin the stock phase-3 path.
        if resp
            .read_rest(&mut conn.reader, piggyback_httpwire::parse::MAX_BODY)
            .is_err()
        {
            shared.stats.upstream_errors.fetch_add(1, Relaxed);
            shared.obs.error.record(job.start.elapsed());
            return Response::new(502).write_with(w, scratch);
        }
        pool.checkin(conn);
        return finish_buffered_miss(shared, &job, resp, now, w, scratch);
    }
    // A 200 whose body may be large. Fixed-length bodies know their size
    // up front; chunked ones accumulate until the threshold proves the
    // object large (or the body ends first, staying buffered).
    let mut reader = match declared {
        Some(n) => BodyReader::length(n),
        None => BodyReader::chunked(),
    };
    let mut buffered: Vec<u8> = Vec::new();
    if !large_cl {
        let mut seg = Vec::new();
        while !reader.is_done() && buffered.len() < threshold {
            match reader.read_segment(&mut conn.reader, &mut seg, STREAM_SEGMENT) {
                Ok(0) => break,
                Ok(_) => buffered.extend_from_slice(&seg),
                Err(_) => {
                    shared.stats.upstream_errors.fetch_add(1, Relaxed);
                    shared.obs.error.record(job.start.elapsed());
                    return Response::new(502).write_with(w, scratch);
                }
            }
        }
        if reader.is_done() {
            // Small chunked object: exactly the buffered path.
            resp.body = Body::from(buffered);
            for (n, v) in reader.trailers().iter() {
                resp.trailers.insert(n, v);
            }
            pool.checkin(conn);
            return finish_buffered_miss(shared, &job, resp, now, w, scratch);
        }
    }
    // Cut through. The client head carries the same headers as a buffered
    // MISS (`Last-Modified` + `X-Cache: MISS`), framed by what we know:
    // `Content-Length` when the origin declared one, chunked otherwise.
    // From here on a failure truncates the client — see [`relay_abort`].
    let lm = resp
        .headers
        .get("Last-Modified")
        .and_then(parse_rfc1123)
        .map(|u| timestamp_from_unix(u, DEFAULT_TRACE_EPOCH_UNIX))
        .unwrap_or(now);
    let mut client_head = Response::new(200);
    let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
    client_head
        .headers
        .insert("Last-Modified", &format_rfc1123(unix));
    client_head.headers.insert("X-Cache", "MISS");
    let framing = match declared {
        Some(n) => StreamFraming::Length(n),
        None => StreamFraming::Chunked,
    };
    scratch.out.clear();
    encode_stream_head(&client_head, framing, &mut scratch.out);
    w.write_all(&scratch.out)
        .map_err(|e| client_relay_err(shared, &job, e))?;
    let mut writer = match declared {
        Some(n) => BodyWriter::length(n),
        None => BodyWriter::chunked(),
    };
    let prefix_want = shared.cfg.prefix_bytes;
    let mut prefix = Vec::with_capacity(prefix_want.min(1 << 20));
    if !buffered.is_empty() {
        tee_prefix(&mut prefix, prefix_want, &buffered);
        writer
            .push(&buffered, w)
            .map_err(|e| client_relay_err(shared, &job, e))?;
    }
    w.flush().map_err(|e| client_relay_err(shared, &job, e))?;
    drop(buffered);
    let mut seg = Vec::new();
    while !reader.is_done() {
        match reader.read_segment(&mut conn.reader, &mut seg, STREAM_SEGMENT) {
            Ok(0) => break,
            Ok(_) => {
                tee_prefix(&mut prefix, prefix_want, &seg);
                writer
                    .push(&seg, w)
                    .map_err(|e| client_relay_err(shared, &job, e))?;
                w.flush().map_err(|e| client_relay_err(shared, &job, e))?;
            }
            Err(_) => return relay_abort(shared, &job, "origin died mid-relay"),
        }
    }
    // The origin's piggyback rode the chunked trailers (if any); the
    // client gets a clean end of body — the proxy consumes the trailer,
    // exactly like the buffered path.
    writer
        .finish(&HeaderMap::new(), w)
        .map_err(|e| client_relay_err(shared, &job, e))?;
    w.flush().map_err(|e| client_relay_err(shared, &job, e))?;
    pool.checkin(conn);
    let total = reader.decoded();
    shared.stats.full_fetches.fetch_add(1, Relaxed);
    shared.stats.streamed_misses.fetch_add(1, Relaxed);
    shared
        .stats
        .bytes_from_origin
        .fetch_add(total as u64, Relaxed);
    let r = shared
        .table
        .write()
        .register_path(&job.path, total as u64, lm);
    if prefix_want > 0 && prefix.len() < total {
        // The tee becomes a prefix entry — never a whole-object body.
        shared.bodies.insert(r, Body::prefix(prefix, total));
    }
    let mut shell = Response::new(200);
    for (n, v) in reader.trailers().iter() {
        shell.trailers.insert(n, v);
    }
    process_piggyback(shared, &shell, job.source, now);
    shared.obs.full_fetch.record(job.start.elapsed());
    Ok(())
}

/// Rejoin the stock miss path for a response the streaming engine ended
/// up buffering (small object or passthrough status): same counters,
/// same piggyback ordering, same histograms as [`complete_upstream`].
/// A 304 cannot reach here — the streaming path never sends
/// `If-Modified-Since`.
fn finish_buffered_miss<W: Write>(
    shared: &Arc<ProxyShared>,
    job: &UpstreamJob,
    resp: Response,
    now: Timestamp,
    w: &mut W,
    scratch: &mut ConnScratch,
) -> io::Result<()> {
    let (result, hist) = if resp.status == 200 {
        (
            store_full_response(shared, &job.path, &resp, now),
            &shared.obs.full_fetch,
        )
    } else {
        shared.stats.upstream_passthrough.fetch_add(1, Relaxed);
        let mut out = Response::new(resp.status);
        out.body = resp.body.clone();
        (out, &shared.obs.passthrough)
    };
    process_piggyback(shared, &resp, job.source, now);
    hist.record(job.start.elapsed());
    result.write_with(w, scratch)
}

/// The plan phase 1 hands to the rest of the request.
enum Plan {
    /// Body, `Last-Modified`, and the entry's expiry (the reactor's
    /// affine L1 needs the expiry to re-check freshness at serve time).
    ServeFresh(Body, Timestamp, Timestamp),
    Fetch {
        validate_lm: Option<Timestamp>,
        filter: ProxyFilter,
        report: Option<String>,
    },
}

/// What a request resolves to: a fresh cache hit served straight from the
/// shared body (no `Response` is built, no headers are allocated), or a
/// full response for every other outcome.
enum Reply {
    Hit {
        body: Body,
        lm: Timestamp,
        /// When the served entry stops being fresh (feeds the affine L1).
        expires: Timestamp,
    },
    Full(Response),
}

/// What the lock-scoped planning phase resolved a request to: an
/// immediately-serveable reply, or a description of the upstream work
/// still owed. Splitting here lets the reactor serve `Reply` inline and
/// ship `UpstreamJob` (self-contained: owned path, filter, drained
/// report) to an offload worker without borrowing the request.
enum Step {
    Reply(Reply),
    Upstream(UpstreamJob),
}

/// Everything [`complete_upstream`] needs, detached from the `Request`.
struct UpstreamJob {
    path: String,
    source: SocketAddr,
    validate_lm: Option<Timestamp>,
    filter: ProxyFilter,
    report: Option<String>,
    start: Instant,
}

/// The threaded entry point: plan under shard locks, then (if owed) run
/// the blocking upstream exchange on the calling thread.
fn handle_request(
    req: &Request,
    shared: &Arc<ProxyShared>,
    source: SocketAddr,
    scratch: &mut ConnScratch,
) -> Reply {
    match plan_request(req, shared, source) {
        Step::Reply(r) => r,
        Step::Upstream(job) => Reply::Full(complete_upstream(shared, job, scratch)),
    }
}

/// Phase 1: cache consult under shard-scoped locks. Never blocks on the
/// network, so it is safe on a reactor thread. The fresh-hit path is
/// allocation-free; only a miss pays for the owned `UpstreamJob`.
fn plan_request(req: &Request, shared: &Arc<ProxyShared>, source: SocketAddr) -> Step {
    if req.method != "GET" {
        return Step::Reply(Reply::Full(Response::new(400)));
    }
    let path = strip_origin_form(&req.target);
    // Admin scrape, answered before the request counter so scrapes never
    // disturb the conservation invariant they report on.
    if path == METRICS_PATH {
        return Step::Reply(Reply::Full(if shared.cfg.metrics {
            metrics_response(shared)
        } else {
            Response::new(404)
        }));
    }
    let start = Instant::now();

    // Phase 1: consult the cache (shard-scoped locks; in Legacy mode the
    // global serializer emulates the original whole-state mutex).
    let plan = {
        let _g = shared.global.as_ref().map(|m| m.lock());
        let now = shared.clock.now();
        shared.stats.requests.fetch_add(1, Relaxed);
        let cached = shared
            .table
            .read()
            .lookup(path)
            .and_then(|r| shared.cache.lookup(r, now).map(|snap| (r, snap)));
        // First client contact with a prefetched entry settles the
        // speculation as used — whatever the request then resolves to —
        // because the lookup above already flipped its `used` mark.
        if let Some((_, snap)) = &cached {
            prefetch::note_speculative_hit(&shared.stats, snap);
        }
        match cached {
            Some((r, snap)) if snap.is_fresh(now) => {
                // A fresh entry whose body was invalidated underneath us
                // (concurrent piggyback) degrades to a plain fetch. A
                // prefix entry is never a full body — serving it here
                // would truncate the object — so it degrades the same
                // way (the streaming path probes prefixes separately).
                match shared.bodies.get(r).filter(|b| !b.is_prefix()) {
                    Some(body) => {
                        shared.stats.cache_hits.fetch_add(1, Relaxed);
                        shared.stats.fresh_hits.fetch_add(1, Relaxed);
                        if shared.cfg.report_hits {
                            shared.reporter.lock().record_hit(path);
                        }
                        Plan::ServeFresh(body, snap.last_modified, snap.expires)
                    }
                    None => Plan::Fetch {
                        validate_lm: None,
                        filter: shared.filter_for(source, now),
                        report: shared.reporter.lock().drain_header(),
                    },
                }
            }
            Some((_, snap)) => {
                shared.stats.cache_hits.fetch_add(1, Relaxed);
                shared.stats.validations.fetch_add(1, Relaxed);
                Plan::Fetch {
                    validate_lm: Some(snap.last_modified),
                    filter: shared.filter_for(source, now),
                    report: shared.reporter.lock().drain_header(),
                }
            }
            None => Plan::Fetch {
                validate_lm: None,
                filter: shared.filter_for(source, now),
                report: shared.reporter.lock().drain_header(),
            },
        }
    };

    match plan {
        Plan::ServeFresh(body, lm, expires) => {
            shared.obs.fresh_hit.record(start.elapsed());
            Step::Reply(Reply::Hit { body, lm, expires })
        }
        Plan::Fetch {
            validate_lm,
            filter,
            report,
        } => Step::Upstream(UpstreamJob {
            path: path.to_owned(),
            source,
            validate_lm,
            filter,
            report,
            start,
        }),
    }
}

/// Phases 2+3: the blocking upstream exchange and the cache/piggyback
/// update. Runs on the connection's own thread in threaded mode, on an
/// offload worker in reactor mode. `job.start` spans planning, any queue
/// wait, and the exchange, so latency histograms mean the same thing in
/// both I/O modes.
fn complete_upstream(
    shared: &ProxyShared,
    job: UpstreamJob,
    scratch: &mut ConnScratch,
) -> Response {
    let UpstreamJob {
        path,
        source,
        validate_lm,
        filter,
        report,
        start,
    } = job;
    let path = path.as_str();

    // A plain miss may be racing a speculative fetch of the same path:
    // cancel it while still queued (the demand fetch wins outright), or
    // join it once on the wire — park until the speculation lands and
    // serve its entry, so the origin sees exactly one fetch either way.
    if validate_lm.is_none() {
        if let Some(p) = shared.prefetcher.get() {
            if p.claim_or_join(shared, path) {
                let now = shared.clock.now();
                let cached = shared
                    .table
                    .read()
                    .lookup(path)
                    .and_then(|r| shared.cache.lookup(r, now).map(|snap| (r, snap)));
                if let Some((r, snap)) = cached {
                    // The lookup flipped `used`; settle the speculation
                    // even if the body vanishes before we can serve it.
                    prefetch::note_speculative_hit(&shared.stats, &snap);
                    if let Some(body) = shared.bodies.get(r).filter(|b| !b.is_prefix()) {
                        shared.stats.cache_hits.fetch_add(1, Relaxed);
                        shared.stats.fresh_hits.fetch_add(1, Relaxed);
                        if shared.cfg.report_hits {
                            shared.reporter.lock().record_hit(path);
                        }
                        shared.obs.fresh_hit.record(start.elapsed());
                        return cached_response(&body, snap.last_modified, "HIT");
                    }
                }
                // The speculation resolved without a servable entry
                // (fetch failed, or already displaced): fetch normally.
            }
        }
    }

    // Phase 2: upstream exchange (no state locks held).
    let resp = exchange_upstream(
        shared,
        path,
        validate_lm,
        &filter,
        report.as_deref(),
        scratch,
    );
    let (resp, mut pushed) = match resp {
        Ok(r) => r,
        Err(_) => {
            shared.stats.upstream_errors.fetch_add(1, Relaxed);
            shared.obs.error.record(start.elapsed());
            return Response::new(502);
        }
    };

    // Phase 3: update cache state and answer the client.
    let mut guard = shared.global.as_ref().map(|m| m.lock());
    let now = shared.clock.now();
    let delta = shared.cfg.freshness;
    // A refetch response whose piggyback still needs processing, and the
    // histogram matching the request's *final* outcome (a 304 that had to
    // be refetched records as a full fetch, not a validation).
    let mut refetch_resp = None;
    let (result, hist) = match resp.status {
        304 => {
            // The table never forgets ids, so the validated path resolves;
            // the body may have been evicted or invalidated mid-flight.
            let r = shared.table.read().lookup(path);
            let body = r.and_then(|r| {
                shared.cache.freshen(r, now + delta);
                shared.bodies.get(r)
            });
            match body {
                Some(body) => {
                    shared.stats.not_modified.fetch_add(1, Relaxed);
                    let lm = validate_lm.unwrap_or(Timestamp::ZERO);
                    (
                        cached_response(&body, lm, "VALIDATED"),
                        &shared.obs.not_modified,
                    )
                }
                None => {
                    // The 304 validated an entry whose body is gone
                    // (evicted between planning and now): serving the
                    // validation would hand the client an empty 200 with
                    // an epoch Last-Modified. Refetch in full instead —
                    // unconditional, no If-Modified-Since — releasing the
                    // Legacy serializer across the network round trip.
                    drop(guard.take());
                    let refetch = exchange_upstream(shared, path, None, &filter, None, scratch);
                    guard = shared.global.as_ref().map(|m| m.lock());
                    match refetch {
                        Ok((r2, more)) if r2.status == 200 => {
                            pushed.extend(more);
                            let now = shared.clock.now();
                            let out = store_full_response(shared, path, &r2, now);
                            refetch_resp = Some(r2);
                            (out, &shared.obs.full_fetch)
                        }
                        Ok((r2, more)) => {
                            pushed.extend(more);
                            shared.stats.upstream_passthrough.fetch_add(1, Relaxed);
                            let mut out = Response::new(r2.status);
                            out.body = r2.body.clone();
                            refetch_resp = Some(r2);
                            (out, &shared.obs.passthrough)
                        }
                        Err(_) => {
                            shared.stats.upstream_errors.fetch_add(1, Relaxed);
                            (Response::new(502), &shared.obs.error)
                        }
                    }
                }
            }
        }
        200 => (
            store_full_response(shared, path, &resp, now),
            &shared.obs.full_fetch,
        ),
        _ => {
            // Pass through errors untouched (and uncached).
            shared.stats.upstream_passthrough.fetch_add(1, Relaxed);
            let mut out = Response::new(resp.status);
            out.body = resp.body.clone();
            (out, &shared.obs.passthrough)
        }
    };

    // Server-pushed volume members enter the cache before piggyback
    // classification, so the piggyback below sees them as cached entries
    // (Freshen) instead of re-queueing them as prefetch candidates.
    for p in &pushed {
        prefetch::accept_push(shared, p, now);
    }

    // Piggyback processing (trailer on 200, header on 304) — for the
    // original exchange and, when the evicted-body fallback refetched,
    // for the refetch response too.
    process_piggyback(shared, &resp, source, now);
    if let Some(r2) = &refetch_resp {
        process_piggyback(shared, r2, source, now);
    }
    drop(guard);
    hist.record(start.elapsed());
    result
}

/// Store a 200 upstream response: register the path, retain the body
/// once, insert the entry, and settle/clean up everything the insert
/// displaced. Shared by the miss path and the 304-with-evicted-body
/// refetch fallback.
fn store_full_response(
    shared: &ProxyShared,
    path: &str,
    resp: &Response,
    now: Timestamp,
) -> Response {
    shared.stats.full_fetches.fetch_add(1, Relaxed);
    shared
        .stats
        .bytes_from_origin
        .fetch_add(resp.body.len() as u64, Relaxed);
    let lm = resp
        .headers
        .get("Last-Modified")
        .and_then(parse_rfc1123)
        .map(|u| timestamp_from_unix(u, DEFAULT_TRACE_EPOCH_UNIX))
        .unwrap_or(now);
    let size = resp.body.len() as u64;
    let r = shared.table.write().register_path(path, size, lm);
    // Retain the fetched bytes once; every hit from here on is a
    // refcount bump on this same allocation.
    let body = resp.body.clone();
    // Body first, then the entry: a concurrent lookup never sees
    // an entry without its body (the reverse order could). The
    // evictees share r's shard (the stores are co-sharded), so
    // insert and cleanup stay under one body-shard lock each.
    shared.bodies.insert(r, body.clone());
    let out = shared.cache.insert_accounted(
        r,
        CacheEntry {
            size,
            last_modified: lm,
            expires: now + shared.cfg.freshness,
            prefetched: false,
            used: true,
        },
        now,
    );
    if let Some(old) = &out.replaced {
        // A still-unused speculative entry displaced by the demand fetch
        // it raced: settle it as wasted.
        prefetch::settle_displaced(&shared.stats, old);
    }
    if !out.evicted.is_empty() {
        for (_, old) in &out.evicted {
            prefetch::settle_displaced(&shared.stats, old);
        }
        shared.bodies.with_resource_shard(r, |bodies| {
            for (v, _) in &out.evicted {
                bodies.remove(*v);
            }
        });
    }
    if !out.inserted {
        // Oversized for its shard: drop the orphan body so the store
        // cannot hold bytes the cache will never serve.
        shared.bodies.remove(r);
    }
    cached_response(&body, lm, "MISS")
}

/// Apply one response's `P-volume` piggyback (trailer on 200, header on
/// 304) to the cache, and feed the prefetcher: `PrefetchCandidate`
/// elements are queued for speculative fetch, and invalidated entries are
/// re-queued so coherency misses turn into refreshed cache entries.
fn process_piggyback(shared: &ProxyShared, resp: &Response, source: SocketAddr, now: Timestamp) {
    let delta = shared.cfg.freshness;
    let pv = resp
        .trailers
        .get(P_VOLUME_HEADER)
        .or_else(|| resp.headers.get(P_VOLUME_HEADER));
    let Some(pv) = pv else {
        return;
    };
    shared.obs.piggyback_bytes.record_value(pv.len() as u64);
    let Ok(wire) = decode_p_volume(pv) else {
        return;
    };
    shared.stats.piggyback_messages.fetch_add(1, Relaxed);
    shared
        .stats
        .piggybacked_elements
        .fetch_add(wire.elements.len() as u64, Relaxed);
    if let Some(rpv) = &shared.rpv {
        rpv.lock().record(&source, wire.volume, now);
    }
    // Register the whole batch under one write acquisition: per-element
    // write locks let the writer-preference queue interleave a planner
    // between every element, convoying both sides.
    let ids: Vec<_> = {
        let mut table = shared.table.write();
        wire.elements
            .iter()
            .map(|e| table.register_path(&e.path, e.size, e.last_modified))
            .collect()
    };
    for (e, r) in wire.elements.iter().zip(ids) {
        let cached_lm = shared.cache.peek(r).map(|c| c.last_modified);
        match classify_element(cached_lm, e.last_modified) {
            ElementAction::Freshen => {
                shared.cache.freshen(r, now + delta);
                shared.cache.note_piggyback_mention(r, now);
                // Volume mentions also bias prefix retention: a prefix of
                // a resource the origin still groups into active volumes
                // earns its bytes (the VoD prefix-retention signal).
                shared.bodies.note_mention(r);
                shared.stats.piggyback_freshens.fetch_add(1, Relaxed);
            }
            ElementAction::Invalidate => {
                // Entry first, then body: a concurrent lookup that
                // wins the entry also finds the body still there.
                if let Some(old) = shared.cache.take(r) {
                    prefetch::settle_displaced(&shared.stats, &old);
                }
                shared.bodies.remove(r);
                shared.stats.piggyback_invalidations.fetch_add(1, Relaxed);
                // Coherency-driven refresh: the origin just told us the
                // current version exists — refetch it ahead of demand.
                if let Some(p) = shared.prefetcher.get() {
                    p.enqueue(shared, r, &e.path);
                }
            }
            ElementAction::PrefetchCandidate => {
                shared.stats.prefetch_candidates.fetch_add(1, Relaxed);
                if let Some(p) = shared.prefetcher.get() {
                    p.enqueue(shared, r, &e.path);
                }
            }
        }
    }
}

/// Render the proxy's Prometheus exposition. Reads only atomics and the
/// cache's occupancy gauges — no cache or table lock is taken, so a
/// scrape can never stall (or be stalled by) request traffic.
fn metrics_response(shared: &ProxyShared) -> Response {
    let stats = shared.stats.snapshot();
    let mut out = String::with_capacity(8 * 1024);
    render_scalar(
        &mut out,
        "pb_proxy_requests_total",
        "",
        "counter",
        stats.requests,
    );
    for (label, value) in [
        ("fresh_hit", stats.fresh_hits),
        ("prefix_hit", stats.prefix_hits),
        ("not_modified", stats.not_modified),
        ("full_fetch", stats.full_fetches),
        ("error", stats.upstream_errors),
        ("passthrough", stats.upstream_passthrough),
    ] {
        render_scalar(
            &mut out,
            "pb_proxy_outcome_requests_total",
            &format!("outcome=\"{label}\""),
            "counter",
            value,
        );
    }
    for (name, value) in [
        ("pb_proxy_cache_hits_total", stats.cache_hits),
        ("pb_proxy_affine_hits_total", stats.affine_hits),
        ("pb_proxy_streamed_misses_total", stats.streamed_misses),
        ("pb_proxy_validations_total", stats.validations),
        ("pb_proxy_bytes_from_origin_total", stats.bytes_from_origin),
        (
            "pb_proxy_piggyback_messages_total",
            stats.piggyback_messages,
        ),
        (
            "pb_proxy_piggybacked_elements_total",
            stats.piggybacked_elements,
        ),
        (
            "pb_proxy_piggyback_freshens_total",
            stats.piggyback_freshens,
        ),
        (
            "pb_proxy_piggyback_invalidations_total",
            stats.piggyback_invalidations,
        ),
        (
            "pb_proxy_prefetch_candidates_total",
            stats.prefetch_candidates,
        ),
        ("pb_proxy_prefetch_issued_total", stats.prefetch_issued),
        ("pb_proxy_prefetch_used_total", stats.prefetch_used),
        ("pb_proxy_prefetch_wasted_total", stats.prefetch_wasted),
        (
            "pb_proxy_prefetch_wasted_bytes_total",
            stats.prefetch_wasted_bytes,
        ),
        (
            "pb_proxy_prefetch_fetched_bytes_total",
            stats.prefetch_fetched_bytes,
        ),
        (
            "pb_proxy_prefetch_used_bytes_total",
            stats.prefetch_used_bytes,
        ),
        (
            "pb_proxy_prefetch_cancelled_total",
            stats.prefetch_cancelled,
        ),
        ("pb_proxy_prefetch_retries_total", stats.prefetch_retries),
        ("pb_proxy_pushes_accepted_total", stats.pushes_accepted),
        ("pb_proxy_upstream_retries_total", stats.upstream_retries),
    ] {
        render_scalar(&mut out, name, "", "counter", value);
    }
    // Issued-but-unresolved speculations: in-flight fetches plus resident
    // never-hit prefetched entries (a gauge, not a counter).
    render_scalar(
        &mut out,
        "pb_proxy_prefetch_inflight",
        "",
        "gauge",
        stats.prefetch_inflight,
    );
    for (outcome, hist) in shared.obs.outcomes() {
        render_histogram(
            &mut out,
            "pb_proxy_request_duration_seconds",
            &format!("outcome=\"{outcome}\""),
            &hist.snapshot(),
            1e6,
        );
    }
    render_histogram(
        &mut out,
        "pb_proxy_piggyback_overhead_bytes",
        "",
        &shared.obs.piggyback_bytes.snapshot(),
        1.0,
    );
    if let Some(pool) = &shared.pool {
        let p = pool.stats();
        for (name, value) in [
            ("pb_proxy_pool_connects_total", p.connects),
            ("pb_proxy_pool_reuses_total", p.reuses),
            ("pb_proxy_pool_evicted_unhealthy_total", p.evicted_unhealthy),
            ("pb_proxy_pool_discarded_dirty_total", p.discarded_dirty),
            ("pb_proxy_pool_discarded_full_total", p.discarded_full),
        ] {
            render_scalar(&mut out, name, "", "counter", value);
        }
        render_scalar(
            &mut out,
            "pb_proxy_pool_idle",
            "",
            "gauge",
            pool.idle_len() as u64,
        );
    }
    // Capacity from config, not `cache.capacity()`: the latter sums
    // per-shard fields under each shard lock.
    render_scalar(
        &mut out,
        "pb_proxy_cache_capacity_bytes",
        "",
        "gauge",
        shared.cfg.capacity_bytes,
    );
    for (i, shard) in shared.cache.occupancy().iter().enumerate() {
        let labels = format!("shard=\"{i}\"");
        render_scalar(
            &mut out,
            "pb_proxy_cache_shard_bytes",
            &labels,
            "gauge",
            shard.bytes,
        );
        render_scalar(
            &mut out,
            "pb_proxy_cache_shard_entries",
            &labels,
            "gauge",
            shard.entries,
        );
        render_scalar(
            &mut out,
            "pb_proxy_cache_shard_evictions_total",
            &labels,
            "counter",
            shard.evictions,
        );
    }
    // Body-store occupancy (full bodies + prefix entries), per shard,
    // from the lock-free mirror gauges.
    for (i, shard) in shared.bodies.occupancy().iter().enumerate() {
        let labels = format!("shard=\"{i}\"");
        for (name, value) in [
            ("pb_proxy_body_bytes", shard.bytes),
            ("pb_proxy_body_entries", shard.entries),
            ("pb_proxy_prefix_bytes", shard.prefix_bytes),
            ("pb_proxy_prefix_entries", shard.prefix_entries),
        ] {
            render_scalar(&mut out, name, &labels, "gauge", value);
        }
    }
    render_scalar(
        &mut out,
        "pb_proxy_accepts_total",
        "",
        "counter",
        shared.io_stats.accepts_total(),
    );
    render_scalar(
        &mut out,
        "pb_proxy_open_connections",
        "",
        "gauge",
        shared.io_stats.open_connections(),
    );
    render_scalar(
        &mut out,
        "pb_proxy_accept_backoffs_total",
        "",
        "counter",
        shared.io_stats.accept_errors_total(),
    );
    #[cfg(target_os = "linux")]
    if let Some(rm) = &shared.reactor_metrics {
        for (i, s) in rm.shards.iter().enumerate() {
            let labels = format!("shard=\"{i}\"");
            render_scalar(
                &mut out,
                "pb_proxy_reactor_conns",
                &labels,
                "gauge",
                s.conns(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_accepts_total",
                &labels,
                "counter",
                s.accepts(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_wakeups_total",
                &labels,
                "counter",
                s.wakeups(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_timeouts_total",
                &labels,
                "counter",
                s.timeouts(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_offloads_total",
                &labels,
                "counter",
                s.offloads(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_upstream_dials_total",
                &labels,
                "counter",
                s.upstream_dials(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_upstream_reuses_total",
                &labels,
                "counter",
                s.upstream_reuses(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_upstream_inflight",
                &labels,
                "gauge",
                s.upstream_inflight(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_upstream_timeouts_total",
                &labels,
                "counter",
                s.upstream_timeouts(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_relays_total",
                &labels,
                "counter",
                s.relays(),
            );
            render_scalar(
                &mut out,
                "pb_proxy_reactor_relay_paused_total",
                &labels,
                "counter",
                s.relay_paused(),
            );
        }
    }
    let mut resp = Response::new(200);
    resp.headers
        .insert("Content-Type", "text/plain; version=0.0.4");
    resp.body = out.into();
    resp
}

/// One upstream request/response exchange. Sharded mode checks a
/// connection out of the pool and returns it only after the response —
/// trailers and any server-pushed responses included — was read to
/// completion. A mid-exchange failure (stale keep-alive race, or an
/// origin that died under the first request) retries once on a fresh
/// connection; Legacy mode opens a fresh connection per fetch but keeps
/// the same retry-once contract.
///
/// With `accept_push` the request carries `Piggy-push: accept`, and the
/// returned `Vec` holds the full pushed responses the origin streamed
/// after the main one (announced by its `X-Push-Count` header).
fn exchange_upstream(
    shared: &ProxyShared,
    path: &str,
    validate_lm: Option<Timestamp>,
    filter: &ProxyFilter,
    report: Option<&str>,
    scratch: &mut ConnScratch,
) -> Result<(Response, Vec<Response>), piggyback_httpwire::HttpError> {
    for attempt in 0..2 {
        if attempt == 1 {
            shared.stats.upstream_retries.fetch_add(1, Relaxed);
        }
        let mut conn = match &shared.pool {
            Some(pool) if attempt == 0 => pool.checkout()?,
            Some(pool) => pool.connect_fresh()?,
            None => PooledConn::connect(shared.cfg.origin)?,
        };
        let mut req = Request::new("GET", path);
        req.headers.insert("Host", "origin");
        req.headers.insert("TE", "chunked");
        req.headers
            .insert(PIGGY_FILTER_HEADER, &filter.to_header_value());
        if shared.cfg.accept_push {
            req.headers.insert(PIGGY_PUSH_HEADER, "accept");
        }
        if let Some(r) = report {
            req.headers.insert(PIGGY_REPORT_HEADER, r);
        }
        if let Some(lm) = validate_lm {
            let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
            req.headers
                .insert("If-Modified-Since", &format_rfc1123(unix));
        }
        let io_result = req
            .write_with(&mut conn.writer, scratch)
            .map_err(piggyback_httpwire::HttpError::from)
            .and_then(|()| Response::read(&mut conn.reader, false));
        match io_result {
            Ok(resp) => {
                // Drain any pushed responses before the connection is
                // reusable: they follow the main response on the same
                // stream.
                let announced = if shared.cfg.accept_push {
                    resp.headers
                        .get(PUSH_COUNT_HEADER)
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or(0)
                } else {
                    0
                };
                let mut pushed = Vec::with_capacity(announced);
                for _ in 0..announced {
                    match Response::read(&mut conn.reader, false) {
                        Ok(p) => pushed.push(p),
                        Err(_) => {
                            // Mid-push failure: keep what landed and drop
                            // the connection (read position unknown) —
                            // the main exchange already succeeded.
                            return Ok((resp, pushed));
                        }
                    }
                }
                if let Some(pool) = &shared.pool {
                    pool.checkin(conn);
                }
                return Ok((resp, pushed));
            }
            Err(_) if attempt == 0 => {
                // Stale pooled connection or a flaky first exchange:
                // drop it, retry once on a fresh connection.
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("retry loop always returns by the second attempt")
}

fn cached_response(body: &Body, lm: Timestamp, x_cache: &str) -> Response {
    let mut resp = Response::new(200);
    let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
    resp.headers.insert("Last-Modified", &format_rfc1123(unix));
    resp.headers.insert("X-Cache", x_cache);
    resp.body = body.clone();
    resp
}

/// Serve a fresh cache hit without building a [`Response`]: the head is
/// formatted straight into the connection scratch (the RFC 1123 date via
/// [`Rfc1123`]'s `Display`, so no intermediate `String`) and emitted
/// together with the shared body bytes — referenced, never copied — in
/// one vectored write. Wire bytes are identical to
/// `cached_response(body, lm, "HIT").write(..)`, which the
/// `hit_bytes_match_cached_response` test pins down.
fn write_hit<W: Write>(
    w: &mut W,
    scratch: &mut ConnScratch,
    body: &Body,
    lm: Timestamp,
) -> io::Result<()> {
    let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
    scratch.out.clear();
    write!(
        scratch.out,
        "HTTP/1.1 200 OK\r\nLast-Modified: {}\r\nX-Cache: HIT\r\nContent-Length: {}\r\n\r\n",
        Rfc1123(unix),
        body.len()
    )?;
    write_all_parts(w, &[scratch.out.as_slice(), body.as_slice()])?;
    w.flush()
}

/// Build a `HeaderMap` holding the standard piggyback request headers —
/// handy for tests and the client driver.
pub fn piggyback_request_headers(filter: &ProxyFilter) -> HeaderMap {
    let mut h = HeaderMap::new();
    h.insert("TE", "chunked");
    h.insert(PIGGY_FILTER_HEADER, &filter.to_header_value());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{start_origin, OriginConfig, OriginHandle};
    use std::net::TcpListener;

    /// Drive the whole site once directly (no proxy), so the origin's
    /// access state covers every resource. Piggybacks only name volume
    /// mates with recorded accesses, so a cold proxy talking to a cold
    /// origin never sees a prefetch candidate — the paper's scenario is
    /// a fresh proxy joining an origin other clients already warmed.
    fn warm_origin(origin: &OriginHandle) {
        let stream = TcpStream::connect(origin.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        for p in &origin.paths {
            let mut req = Request::new("GET", p);
            req.headers.insert("Host", "origin.test");
            req.write(&mut writer).unwrap();
            let resp = Response::read(&mut reader, false).unwrap();
            assert_eq!(resp.status, 200);
        }
    }

    fn get(addr: SocketAddr, path: &str) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut req = Request::new("GET", path);
        req.headers.insert("Host", "proxy.test");
        req.headers.insert("Connection", "close");
        req.write(&mut writer).unwrap();
        Response::read(&mut reader, false).unwrap()
    }

    #[test]
    fn proxy_caches_and_validates() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let path = origin.paths[0].clone();

        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.status, 200);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));

        let r2 = get(proxy.addr(), &path);
        assert_eq!(r2.status, 200);
        assert_eq!(r2.headers.get("X-Cache"), Some("HIT"));
        assert_eq!(r1.body, r2.body);

        let stats = proxy.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.fresh_hits, 1);
        assert_eq!(stats.full_fetches, 1);
        assert_eq!(stats.outcomes(), stats.requests, "conservation");

        proxy.stop();
        origin.stop();
    }

    #[test]
    fn hit_bytes_match_cached_response() {
        // The zero-copy hit path must stay byte-identical to serializing
        // the seed's full `Response` — for bodies of every interesting
        // size class (empty, small, multi-chunk-buffer sized).
        let mut scratch = ConnScratch::new();
        for (body, lm) in [
            (Body::empty(), Timestamp::ZERO),
            (Body::from(b"hello".to_vec()), Timestamp::from_secs(12345)),
            (
                Body::from(vec![b'x'; 40_000]),
                Timestamp::from_secs(86_400 * 900 + 3),
            ),
        ] {
            let mut fast = Vec::new();
            write_hit(&mut fast, &mut scratch, &body, lm).unwrap();
            let mut seed = Vec::new();
            cached_response(&body, lm, "HIT").write(&mut seed).unwrap();
            assert_eq!(fast, seed, "body len {}", body.len());
        }
    }

    #[test]
    fn buffered_wire_mode_serves_identically() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.wire = WireMode::Buffered;
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();
        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        let r2 = get(proxy.addr(), &path);
        assert_eq!(r2.headers.get("X-Cache"), Some("HIT"));
        assert_eq!(r1.body, r2.body);
        let stats = proxy.stats();
        assert_eq!(stats.outcomes(), stats.requests, "conservation");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn legacy_mode_still_works() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.mode = ConcurrencyMode::Legacy;
        let proxy = start_proxy(cfg).unwrap();
        assert!(proxy.pool_stats().is_none(), "legacy mode has no pool");
        let path = origin.paths[0].clone();
        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        let r2 = get(proxy.addr(), &path);
        assert_eq!(r2.headers.get("X-Cache"), Some("HIT"));
        assert_eq!(r1.body, r2.body);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn sharded_proxy_pools_origin_connections() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.freshness = DurationMs::from_millis(1); // force validations
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();
        for _ in 0..5 {
            get(proxy.addr(), &path);
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        let pool = proxy.pool_stats().expect("sharded mode has a pool");
        assert!(
            pool.reuses >= 3,
            "validations must reuse the pooled origin connection: {pool:?}"
        );
        assert!(pool.connects <= 2, "{pool:?}");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn proxy_receives_piggybacks() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        // Walk a handful of pages; volume-mates generate piggybacks.
        for p in origin.paths.iter().take(12) {
            let r = get(proxy.addr(), p);
            assert_eq!(r.status, 200);
        }
        let stats = proxy.stats();
        assert!(
            stats.piggyback_messages > 0,
            "expected piggybacks, stats: {stats:?}"
        );
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn proxy_passes_404_through_uncached() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let r = get(proxy.addr(), "/definitely/not/here.html");
        assert_eq!(r.status, 404);
        let r = get(proxy.addr(), "/definitely/not/here.html");
        assert_eq!(r.status, 404);
        let stats = proxy.stats();
        assert_eq!(stats.fresh_hits, 0);
        assert_eq!(stats.upstream_passthrough, 2);
        assert_eq!(stats.outcomes(), stats.requests, "conservation");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn expired_entries_validate_with_304_and_revive() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.freshness = DurationMs::from_millis(1); // everything expires at once
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();

        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r2 = get(proxy.addr(), &path);
        assert_eq!(
            r2.headers.get("X-Cache"),
            Some("VALIDATED"),
            "expired entry must be revalidated, not refetched"
        );
        assert_eq!(r1.body, r2.body, "304 revives the cached body");
        let stats = proxy.stats();
        assert_eq!(stats.validations, 1);
        assert_eq!(stats.not_modified, 1);
        assert_eq!(stats.full_fetches, 1);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn modified_resource_refetched_on_validation() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.freshness = DurationMs::from_millis(1);
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();

        get(proxy.addr(), &path);
        // Bump the origin's Last-Modified.
        let r = get(proxy.addr(), &format!("/_pb/modify{path}"));
        assert_eq!(r.status, 204);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r2 = get(proxy.addr(), &path);
        assert_eq!(
            r2.headers.get("X-Cache"),
            Some("MISS"),
            "modified resource comes back as a fresh 200"
        );
        let stats = proxy.stats();
        assert_eq!(stats.not_modified, 0);
        assert!(stats.full_fetches >= 2);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn piggyback_request_headers_helper() {
        let f = ProxyFilter::builder().max_piggy(5).build();
        let h = piggyback_request_headers(&f);
        assert_eq!(h.get("TE"), Some("chunked"));
        assert_eq!(h.get(PIGGY_FILTER_HEADER), Some("maxpiggy=5"));
    }

    #[test]
    fn hit_reports_reach_the_origin() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let hot = origin.paths[0].clone();
        let other = origin.paths[1].clone();

        // Warm the cache, then hit it repeatedly: hits accumulate in the
        // proxy's reporter.
        get(proxy.addr(), &hot);
        let origin_count_before = {
            // Access count at the origin after the single real fetch.
            origin.stats().requests
        };
        for _ in 0..5 {
            let r = get(proxy.addr(), &hot);
            assert_eq!(r.headers.get("X-Cache"), Some("HIT"));
        }
        // The next upstream request (a miss for `other`) drains the report.
        get(proxy.addr(), &other);

        // The origin saw only two real requests...
        assert_eq!(origin.stats().requests, origin_count_before + 1);
        // ...but its access count for `hot` includes the 5 reported cache
        // hits: 1 real fetch + 5 reported = 6.
        assert_eq!(origin.access_count(&hot), 6);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn metrics_endpoint_scrapes_without_counting_itself() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let path = origin.paths[0].clone();
        get(proxy.addr(), &path); // MISS
        get(proxy.addr(), &path); // HIT
        let m = get(proxy.addr(), METRICS_PATH);
        assert_eq!(m.status, 200);
        assert_eq!(
            m.headers.get("Content-Type"),
            Some("text/plain; version=0.0.4")
        );
        let text = String::from_utf8(m.body.to_vec()).unwrap();
        // The scrape itself must not disturb the request counter.
        assert!(text.contains("pb_proxy_requests_total 2\n"), "{text}");
        assert!(
            text.contains("pb_proxy_outcome_requests_total{outcome=\"fresh_hit\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pb_proxy_outcome_requests_total{outcome=\"full_fetch\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pb_proxy_request_duration_seconds_count{outcome=\"fresh_hit\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pb_proxy_cache_shard_bytes{shard=\"0\"}"),
            "{text}"
        );
        assert!(text.contains("pb_proxy_cache_capacity_bytes"), "{text}");
        assert!(text.contains("pb_proxy_body_bytes{shard=\"0\"}"), "{text}");
        assert!(
            text.contains("pb_proxy_prefix_entries{shard=\"0\"}"),
            "{text}"
        );
        // Conservation is checkable from the scrape alone.
        let outcome_total: u64 = text
            .lines()
            .filter(|l| l.starts_with("pb_proxy_outcome_requests_total{"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(outcome_total, 2, "{text}");
        let duration_total: u64 = text
            .lines()
            .filter(|l| l.starts_with("pb_proxy_request_duration_seconds_count"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(duration_total, 2, "histogram totals == requests: {text}");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn metrics_can_be_disabled() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.metrics = false;
        let proxy = start_proxy(cfg).unwrap();
        let m = get(proxy.addr(), METRICS_PATH);
        assert_eq!(m.status, 404, "disabled scrape is a local 404");
        let stats = proxy.stats();
        assert_eq!(stats.requests, 0, "never proxied, never counted");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn validated_hit_with_evicted_body_refetches_instead_of_empty_200() {
        // Regression: when a 304 lands but the cached body was evicted
        // between planning (which saw the entry) and completion, the old
        // code served an empty 200 with an epoch-zero Last-Modified.
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.freshness = DurationMs::from_millis(1);
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();

        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        assert!(!r1.body.is_empty());

        // Force the race deterministically: the table entry stays (so the
        // next request validates) but the body is gone by the time the
        // 304 arrives.
        let r = proxy.shared.table.read().lookup(&path).unwrap();
        proxy.shared.bodies.remove(r);
        std::thread::sleep(std::time::Duration::from_millis(5));

        let r2 = get(proxy.addr(), &path);
        assert_eq!(r2.status, 200);
        assert_eq!(
            r2.headers.get("X-Cache"),
            Some("MISS"),
            "a body-less validation must refetch, not fabricate a hit"
        );
        assert_eq!(r2.body, r1.body, "refetched body, not an empty 200");

        let stats = proxy.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.validations, 1);
        assert_eq!(
            stats.not_modified, 0,
            "a 304 we could not serve is not a validated hit"
        );
        assert_eq!(stats.full_fetches, 2);
        assert_eq!(stats.outcomes(), stats.requests, "conservation");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn prefetcher_fetches_piggyback_candidates_and_serves_them() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        warm_origin(&origin);
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.prefetch_budget = 2;
        let proxy = start_proxy(cfg).unwrap();

        // First walk: responses carry piggybacked volume mates; uncached
        // candidates become speculative fetches in the background.
        for p in &origin.paths {
            assert_eq!(get(proxy.addr(), p).status, 200);
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while proxy.stats().prefetch_issued == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(
            proxy.stats().prefetch_issued > 0,
            "walking the whole site must surface prefetch candidates: {:?}",
            proxy.stats()
        );

        // Second walk: every path is demanded, so each speculative entry
        // resolves — used on a hit, joined if still in flight, cancelled
        // if still queued (never issued).
        for p in &origin.paths {
            assert_eq!(get(proxy.addr(), p).status, 200);
        }
        let s = proxy.stats();
        assert!(
            s.prefetch_used >= 1,
            "a prefetched entry served a hit: {s:?}"
        );
        assert_eq!(
            s.prefetch_issued,
            s.prefetch_used + s.prefetch_wasted + s.prefetch_inflight,
            "ledger conservation at quiescence: {s:?}"
        );
        assert_eq!(s.outcomes(), s.requests, "request conservation: {s:?}");
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn pushed_volume_members_land_in_the_cache() {
        let origin = start_origin(OriginConfig {
            push_max: 4,
            ..OriginConfig::default()
        })
        .unwrap();
        warm_origin(&origin);
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.accept_push = true;
        let proxy = start_proxy(cfg).unwrap();

        for p in &origin.paths {
            assert_eq!(get(proxy.addr(), p).status, 200);
        }
        let s = proxy.stats();
        assert!(s.pushes_accepted > 0, "origin pushed, proxy cached: {s:?}");
        assert!(
            s.prefetch_used >= 1,
            "a pushed member was demanded later in the walk: {s:?}"
        );
        assert_eq!(
            s.prefetch_issued,
            s.prefetch_used + s.prefetch_wasted + s.prefetch_inflight,
            "push ledger conservation: {s:?}"
        );
        assert!(
            s.fresh_hits > 0,
            "pushed members must serve as cache hits: {s:?}"
        );
        assert_eq!(s.outcomes(), s.requests, "request conservation: {s:?}");
        assert!(origin.daemon_stats().pushes_sent >= s.pushes_accepted);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn unreachable_origin_yields_502() {
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let proxy = start_proxy(ProxyConfig::new(dead)).unwrap();
        let r = get(proxy.addr(), "/x");
        assert_eq!(r.status, 502);
        let stats = proxy.stats();
        assert_eq!(stats.upstream_errors, 1);
        assert_eq!(stats.outcomes(), stats.requests, "conservation");
        proxy.stop();
    }

    /// A hand-rolled keep-alive origin serving one deterministic body
    /// under `Content-Length` framing for every path — the shape of a
    /// real large-object origin, with none of the replay origin's
    /// piggyback or volume machinery. The listener thread leaks with the
    /// test process, like every other fixture here that outlives its
    /// assertions.
    fn start_big_origin(body: Arc<Vec<u8>>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let body = Arc::clone(&body);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = BufWriter::new(stream);
                    while Request::read(&mut reader).is_ok() {
                        let head = format!(
                            "HTTP/1.1 200 OK\r\nLast-Modified: Thu, 01 Jan 1970 00:00:00 GMT\r\nContent-Length: {}\r\n\r\n",
                            body.len()
                        );
                        if writer.write_all(head.as_bytes()).is_err()
                            || writer.write_all(&body).is_err()
                            || writer.flush().is_err()
                        {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    fn deterministic_body(len: usize) -> Arc<Vec<u8>> {
        Arc::new((0..len).map(|i| (i % 251) as u8).collect())
    }

    #[test]
    fn large_object_streams_then_hits_prefix() {
        let body = deterministic_body(600 * 1024);
        let addr = start_big_origin(Arc::clone(&body));
        let mut cfg = ProxyConfig::new(addr);
        cfg.stream_threshold = 256 * 1024;
        cfg.prefix_bytes = 64 * 1024;
        let proxy = start_proxy(cfg).unwrap();

        let r1 = get(proxy.addr(), "/big.bin");
        assert_eq!(r1.status, 200);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        assert_eq!(
            r1.body.as_slice(),
            body.as_slice(),
            "streamed body must be byte-identical"
        );

        let r2 = get(proxy.addr(), "/big.bin");
        assert_eq!(r2.status, 200);
        assert_eq!(r2.headers.get("X-Cache"), Some("PREFIX"));
        assert_eq!(
            r2.body.as_slice(),
            body.as_slice(),
            "prefix-hit body must be byte-identical"
        );

        let stats = proxy.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.full_fetches, 1);
        assert_eq!(stats.streamed_misses, 1);
        assert_eq!(stats.prefix_hits, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.outcomes(), stats.requests, "conservation");

        let occ = proxy.shared.bodies.occupancy();
        let prefixes: u64 = occ.iter().map(|s| s.prefix_entries).sum();
        let entries: u64 = occ.iter().map(|s| s.entries).sum();
        assert_eq!(prefixes, 1, "exactly one prefix entry retained");
        assert_eq!(entries, 1, "streamed object must not be cached whole");
        let bytes: u64 = occ.iter().map(|s| s.bytes).sum();
        assert_eq!(bytes, 64 * 1024, "only the prefix head is resident");
        proxy.stop();
    }

    #[test]
    fn small_object_stays_on_the_buffered_path() {
        let body = deterministic_body(10 * 1024);
        let addr = start_big_origin(Arc::clone(&body));
        let proxy = start_proxy(ProxyConfig::new(addr)).unwrap();
        let r1 = get(proxy.addr(), "/small.bin");
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        let r2 = get(proxy.addr(), "/small.bin");
        assert_eq!(
            r2.headers.get("X-Cache"),
            Some("HIT"),
            "sub-threshold objects cache whole and serve as plain hits"
        );
        assert_eq!(r2.body.as_slice(), body.as_slice());
        let stats = proxy.stats();
        assert_eq!(stats.streamed_misses, 0);
        assert_eq!(stats.fresh_hits, 1);
        assert_eq!(stats.outcomes(), stats.requests, "conservation");
        proxy.stop();
    }

    #[test]
    fn oversized_client_body_gets_413() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        for wire in [WireMode::ZeroCopy, WireMode::Buffered] {
            let mut cfg = ProxyConfig::new(origin.addr());
            cfg.client_body_cap = 1024;
            cfg.wire = wire;
            let proxy = start_proxy(cfg).unwrap();
            let stream = TcpStream::connect(proxy.addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            writer
                .write_all(b"GET /a.html HTTP/1.1\r\nHost: p\r\nContent-Length: 4096\r\n\r\n")
                .unwrap();
            // The proxy may reject before draining; ignore write errors.
            let _ = writer.write_all(&[b'x'; 4096]);
            let _ = writer.flush();
            let resp = Response::read(&mut reader, false).unwrap();
            assert_eq!(resp.status, 413, "wire mode {wire:?}");
            assert_eq!(proxy.stats().requests, 0, "rejected before accounting");
            proxy.stop();
        }
        origin.stop();
    }
}
