//! A caching proxy that speaks the piggyback protocol upstream.
//!
//! The proxy half of Section 2.1: client requests are served from a
//! byte-bounded cache with a freshness interval Δ; misses and expired
//! entries go upstream with a `Piggy-filter` header (including the RPV
//! list) and `TE: chunked`; `P-volume` piggybacks in the response trailer
//! freshen or invalidate cached entries.

use crate::origin::strip_origin_form;
use crate::util::{serve, Clock, ServerHandle};
use parking_lot::Mutex;
use piggyback_core::datetime::{
    format_rfc1123, parse_rfc1123, timestamp_from_unix, unix_from_timestamp,
    DEFAULT_TRACE_EPOCH_UNIX,
};
use piggyback_core::filter::{ProxyFilter, PIGGY_FILTER_HEADER};
use piggyback_core::proxy::{classify_element, ElementAction};
use piggyback_core::report::{HitReporter, PIGGY_REPORT_HEADER};
use piggyback_core::rpv::RpvList;
use piggyback_core::table::ResourceTable;
use piggyback_core::types::{DurationMs, ResourceId, Timestamp};
use piggyback_core::wire::{decode_p_volume, P_VOLUME_HEADER};
use piggyback_httpwire::{HeaderMap, Request, Response};
use piggyback_webcache::{Cache, CacheEntry, PolicyKind};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// 0 picks an ephemeral port.
    pub port: u16,
    pub origin: SocketAddr,
    pub capacity_bytes: u64,
    /// The freshness interval Δ.
    pub freshness: DurationMs,
    /// Content-oriented filter template sent upstream.
    pub filter: ProxyFilter,
    /// RPV list bounds (length, timeout); `None` disables RPV.
    pub rpv: Option<(usize, DurationMs)>,
    pub policy: PolicyKind,
    /// Report cache-served accesses upstream via `Piggy-report`
    /// (Section 5 extension).
    pub report_hits: bool,
}

impl ProxyConfig {
    pub fn new(origin: SocketAddr) -> Self {
        ProxyConfig {
            port: 0,
            origin,
            capacity_bytes: 32 * 1024 * 1024,
            freshness: DurationMs::from_secs(60),
            filter: ProxyFilter::builder().max_piggy(10).build(),
            rpv: Some((16, DurationMs::from_secs(30))),
            policy: PolicyKind::Lru,
            report_hits: true,
        }
    }
}

/// Counters exposed by a running proxy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStats {
    pub requests: u64,
    pub cache_hits: u64,
    pub fresh_hits: u64,
    pub validations: u64,
    pub not_modified: u64,
    pub full_fetches: u64,
    pub bytes_from_origin: u64,
    pub piggyback_messages: u64,
    pub piggybacked_elements: u64,
    pub piggyback_freshens: u64,
    pub piggyback_invalidations: u64,
    pub prefetch_candidates: u64,
    pub upstream_errors: u64,
}

struct ProxyState {
    table: ResourceTable,
    cache: Cache,
    bodies: HashMap<ResourceId, Arc<Vec<u8>>>,
    rpv: Option<RpvList>,
    reporter: HitReporter,
    stats: ProxyStats,
    clock: Clock,
    cfg: ProxyConfig,
}

/// A running proxy.
pub struct ProxyHandle {
    handle: ServerHandle,
    state: Arc<Mutex<ProxyState>>,
}

impl ProxyHandle {
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr
    }

    pub fn stats(&self) -> ProxyStats {
        self.state.lock().stats
    }

    pub fn stop(self) {
        self.handle.stop();
    }
}

/// Start the proxy.
pub fn start_proxy(cfg: ProxyConfig) -> io::Result<ProxyHandle> {
    let state = Arc::new(Mutex::new(ProxyState {
        table: ResourceTable::new(),
        cache: Cache::new(cfg.capacity_bytes, cfg.policy.build()),
        bodies: HashMap::new(),
        rpv: cfg.rpv.map(|(len, t)| RpvList::new(len, t)),
        reporter: HitReporter::new(),
        stats: ProxyStats::default(),
        clock: Clock::new(),
        cfg,
    }));
    let port = state.lock().cfg.port;
    let state2 = Arc::clone(&state);
    let handle = serve(port, "proxy", move |stream| {
        let _ = handle_connection(stream, &state2);
    })?;
    Ok(ProxyHandle { handle, state })
}

struct Upstream {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn connect_upstream(origin: SocketAddr) -> io::Result<Upstream> {
    let stream = TcpStream::connect(origin)?;
    Ok(Upstream {
        reader: BufReader::new(stream.try_clone()?),
        writer: BufWriter::new(stream),
    })
}

fn handle_connection(stream: TcpStream, state: &Arc<Mutex<ProxyState>>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut upstream: Option<Upstream> = None;
    loop {
        let req = match Request::read(&mut reader) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let keep = req.keep_alive();
        let resp = handle_request(&req, state, &mut upstream);
        resp.write(&mut writer)?;
        if !keep {
            return Ok(());
        }
    }
}

fn handle_request(
    req: &Request,
    state: &Arc<Mutex<ProxyState>>,
    upstream: &mut Option<Upstream>,
) -> Response {
    if req.method != "GET" {
        return Response::new(400);
    }
    let path = strip_origin_form(&req.target).to_owned();

    // Phase 1: consult the cache.
    enum Plan {
        ServeFresh(Arc<Vec<u8>>, Timestamp),
        Fetch {
            validate_lm: Option<Timestamp>,
            filter: ProxyFilter,
            report: Option<String>,
        },
    }
    let plan = {
        let mut st = state.lock();
        let now = st.clock.now();
        st.stats.requests += 1;
        let cached = st
            .table
            .lookup(&path)
            .and_then(|r| st.cache.lookup(r, now).map(|snap| (r, snap)));
        match cached {
            Some((r, snap)) if snap.is_fresh(now) => {
                st.stats.cache_hits += 1;
                st.stats.fresh_hits += 1;
                if st.cfg.report_hits {
                    st.reporter.record_hit(&path);
                }
                let body = st
                    .bodies
                    .get(&r)
                    .cloned()
                    .unwrap_or_else(|| Arc::new(Vec::new()));
                Plan::ServeFresh(body, snap.last_modified)
            }
            Some((_, snap)) => {
                st.stats.cache_hits += 1;
                st.stats.validations += 1;
                let mut filter = st.cfg.filter.clone();
                if let Some(rpv) = &mut st.rpv {
                    filter.rpv = rpv.filter_ids(now);
                }
                Plan::Fetch {
                    validate_lm: Some(snap.last_modified),
                    filter,
                    report: st.reporter.drain_header(),
                }
            }
            None => {
                let mut filter = st.cfg.filter.clone();
                if let Some(rpv) = &mut st.rpv {
                    filter.rpv = rpv.filter_ids(now);
                }
                Plan::Fetch {
                    validate_lm: None,
                    filter,
                    report: st.reporter.drain_header(),
                }
            }
        }
    };

    let (validate_lm, filter, report) = match plan {
        Plan::ServeFresh(body, lm) => {
            return cached_response(&body, lm, "HIT");
        }
        Plan::Fetch {
            validate_lm,
            filter,
            report,
        } => (validate_lm, filter, report),
    };

    // Phase 2: upstream exchange (no lock held).
    let origin = state.lock().cfg.origin;
    let resp = exchange_upstream(upstream, origin, &path, validate_lm, &filter, report.as_deref());
    let resp = match resp {
        Ok(r) => r,
        Err(_) => {
            state.lock().stats.upstream_errors += 1;
            return Response::new(502);
        }
    };

    // Phase 3: update cache and answer the client.
    let mut st = state.lock();
    let now = st.clock.now();
    let delta = st.cfg.freshness;
    let result = match resp.status {
        304 => {
            st.stats.not_modified += 1;
            let r = st.table.lookup(&path).expect("validated entries are known");
            st.cache.freshen(r, now + delta);
            let body = st
                .bodies
                .get(&r)
                .cloned()
                .unwrap_or_else(|| Arc::new(Vec::new()));
            let lm = validate_lm.unwrap_or(Timestamp::ZERO);
            cached_response(&body, lm, "VALIDATED")
        }
        200 => {
            st.stats.full_fetches += 1;
            st.stats.bytes_from_origin += resp.body.len() as u64;
            let lm = resp
                .headers
                .get("Last-Modified")
                .and_then(parse_rfc1123)
                .map(|u| timestamp_from_unix(u, DEFAULT_TRACE_EPOCH_UNIX))
                .unwrap_or(now);
            let size = resp.body.len() as u64;
            let r = st.table.register_path(&path, size, lm);
            let evicted = st.cache.insert(
                r,
                CacheEntry {
                    size,
                    last_modified: lm,
                    expires: now + delta,
                    prefetched: false,
                    used: true,
                },
                now,
            );
            let body = Arc::new(resp.body.clone());
            st.bodies.insert(r, Arc::clone(&body));
            for v in evicted {
                st.bodies.remove(&v);
            }
            cached_response(&body, lm, "MISS")
        }
        _ => {
            // Pass through errors untouched (and uncached).
            let mut out = Response::new(resp.status);
            out.body = resp.body.clone();
            out
        }
    };

    // Piggyback processing (trailer on 200, header on 304).
    let pv = resp
        .trailers
        .get(P_VOLUME_HEADER)
        .or_else(|| resp.headers.get(P_VOLUME_HEADER));
    if let Some(pv) = pv {
        if let Ok(wire) = decode_p_volume(pv) {
            st.stats.piggyback_messages += 1;
            st.stats.piggybacked_elements += wire.elements.len() as u64;
            if let Some(rpv) = &mut st.rpv {
                rpv.record(wire.volume, now);
            }
            for e in &wire.elements {
                let r = st.table.register_path(&e.path, e.size, e.last_modified);
                let cached_lm = st.cache.peek(r).map(|c| c.last_modified);
                match classify_element(cached_lm, e.last_modified) {
                    ElementAction::Freshen => {
                        st.cache.freshen(r, now + delta);
                        st.cache.note_piggyback_mention(r, now);
                        st.stats.piggyback_freshens += 1;
                    }
                    ElementAction::Invalidate => {
                        st.cache.remove(r);
                        st.bodies.remove(&r);
                        st.stats.piggyback_invalidations += 1;
                    }
                    ElementAction::PrefetchCandidate => {
                        st.stats.prefetch_candidates += 1;
                    }
                }
            }
        }
    }
    result
}

fn exchange_upstream(
    upstream: &mut Option<Upstream>,
    origin: SocketAddr,
    path: &str,
    validate_lm: Option<Timestamp>,
    filter: &ProxyFilter,
    report: Option<&str>,
) -> Result<Response, piggyback_httpwire::HttpError> {
    for attempt in 0..2 {
        if upstream.is_none() {
            *upstream = Some(connect_upstream(origin)?);
        }
        let conn = upstream.as_mut().expect("just connected");
        let mut req = Request::new("GET", path);
        req.headers.insert("Host", "origin");
        req.headers.insert("TE", "chunked");
        req.headers
            .insert(PIGGY_FILTER_HEADER, &filter.to_header_value());
        if let Some(r) = report {
            req.headers.insert(PIGGY_REPORT_HEADER, r);
        }
        if let Some(lm) = validate_lm {
            let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
            req.headers
                .insert("If-Modified-Since", &format_rfc1123(unix));
        }
        let io_result = req
            .write(&mut conn.writer)
            .map_err(piggyback_httpwire::HttpError::from)
            .and_then(|()| Response::read(&mut conn.reader, false));
        match io_result {
            Ok(resp) => return Ok(resp),
            Err(e) if attempt == 0 => {
                // Stale persistent connection: reconnect once.
                let _ = e;
                *upstream = None;
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on second attempt")
}

fn cached_response(body: &Arc<Vec<u8>>, lm: Timestamp, x_cache: &str) -> Response {
    let mut resp = Response::new(200);
    let unix = unix_from_timestamp(lm, DEFAULT_TRACE_EPOCH_UNIX);
    resp.headers.insert("Last-Modified", &format_rfc1123(unix));
    resp.headers.insert("X-Cache", x_cache);
    resp.body = body.as_ref().clone();
    resp
}

/// Build a `HeaderMap` holding the standard piggyback request headers —
/// handy for tests and the client driver.
pub fn piggyback_request_headers(filter: &ProxyFilter) -> HeaderMap {
    let mut h = HeaderMap::new();
    h.insert("TE", "chunked");
    h.insert(PIGGY_FILTER_HEADER, &filter.to_header_value());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{start_origin, OriginConfig};

    fn get(addr: SocketAddr, path: &str) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut req = Request::new("GET", path);
        req.headers.insert("Host", "proxy.test");
        req.headers.insert("Connection", "close");
        req.write(&mut writer).unwrap();
        Response::read(&mut reader, false).unwrap()
    }

    #[test]
    fn proxy_caches_and_validates() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let path = origin.paths[0].clone();

        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.status, 200);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));

        let r2 = get(proxy.addr(), &path);
        assert_eq!(r2.status, 200);
        assert_eq!(r2.headers.get("X-Cache"), Some("HIT"));
        assert_eq!(r1.body, r2.body);

        let stats = proxy.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.fresh_hits, 1);
        assert_eq!(stats.full_fetches, 1);

        proxy.stop();
        origin.stop();
    }

    #[test]
    fn proxy_receives_piggybacks() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        // Walk a handful of pages; volume-mates generate piggybacks.
        for p in origin.paths.iter().take(12) {
            let r = get(proxy.addr(), p);
            assert_eq!(r.status, 200);
        }
        let stats = proxy.stats();
        assert!(
            stats.piggyback_messages > 0,
            "expected piggybacks, stats: {stats:?}"
        );
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn proxy_passes_404_through_uncached() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let r = get(proxy.addr(), "/definitely/not/here.html");
        assert_eq!(r.status, 404);
        let r = get(proxy.addr(), "/definitely/not/here.html");
        assert_eq!(r.status, 404);
        assert_eq!(proxy.stats().fresh_hits, 0);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn expired_entries_validate_with_304_and_revive() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.freshness = DurationMs::from_millis(1); // everything expires at once
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();

        let r1 = get(proxy.addr(), &path);
        assert_eq!(r1.headers.get("X-Cache"), Some("MISS"));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r2 = get(proxy.addr(), &path);
        assert_eq!(
            r2.headers.get("X-Cache"),
            Some("VALIDATED"),
            "expired entry must be revalidated, not refetched"
        );
        assert_eq!(r1.body, r2.body, "304 revives the cached body");
        let stats = proxy.stats();
        assert_eq!(stats.validations, 1);
        assert_eq!(stats.not_modified, 1);
        assert_eq!(stats.full_fetches, 1);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn modified_resource_refetched_on_validation() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let mut cfg = ProxyConfig::new(origin.addr());
        cfg.freshness = DurationMs::from_millis(1);
        let proxy = start_proxy(cfg).unwrap();
        let path = origin.paths[0].clone();

        get(proxy.addr(), &path);
        // Bump the origin's Last-Modified.
        let r = get(proxy.addr(), &format!("/_pb/modify{path}"));
        assert_eq!(r.status, 204);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r2 = get(proxy.addr(), &path);
        assert_eq!(
            r2.headers.get("X-Cache"),
            Some("MISS"),
            "modified resource comes back as a fresh 200"
        );
        let stats = proxy.stats();
        assert_eq!(stats.not_modified, 0);
        assert!(stats.full_fetches >= 2);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn piggyback_request_headers_helper() {
        let f = ProxyFilter::builder().max_piggy(5).build();
        let h = piggyback_request_headers(&f);
        assert_eq!(h.get("TE"), Some("chunked"));
        assert_eq!(h.get(PIGGY_FILTER_HEADER), Some("maxpiggy=5"));
    }

    #[test]
    fn hit_reports_reach_the_origin() {
        let origin = start_origin(OriginConfig::default()).unwrap();
        let proxy = start_proxy(ProxyConfig::new(origin.addr())).unwrap();
        let hot = origin.paths[0].clone();
        let other = origin.paths[1].clone();

        // Warm the cache, then hit it repeatedly: hits accumulate in the
        // proxy's reporter.
        get(proxy.addr(), &hot);
        let origin_count_before = {
            // Access count at the origin after the single real fetch.
            origin.stats().requests
        };
        for _ in 0..5 {
            let r = get(proxy.addr(), &hot);
            assert_eq!(r.headers.get("X-Cache"), Some("HIT"));
        }
        // The next upstream request (a miss for `other`) drains the report.
        get(proxy.addr(), &other);

        // The origin saw only two real requests...
        assert_eq!(origin.stats().requests, origin_count_before + 1);
        // ...but its access count for `hot` includes the 5 reported cache
        // hits: 1 real fetch + 5 reported = 6.
        assert_eq!(origin.access_count(&hot), 6);
        proxy.stop();
        origin.stop();
    }

    #[test]
    fn unreachable_origin_yields_502() {
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let proxy = start_proxy(ProxyConfig::new(dead)).unwrap();
        let r = get(proxy.addr(), "/x");
        assert_eq!(r.status, 502);
        assert_eq!(proxy.stats().upstream_errors, 1);
        proxy.stop();
    }
}
